//! Cross-crate differential tests of the content-addressed artifact store
//! and the incremental campaign path built on it: warm and cold runs must
//! be bit-identical to each other and to the plain (store-free) pipeline,
//! an interrupted campaign must resume to exactly the uninterrupted
//! result, and run-level artifacts must be reused across kernel sweeps.

use anacin_core::prelude::*;
use anacin_event_graph::LabelPolicy;
use anacin_miniapps::Pattern;
use anacin_store::ArtifactStore;
use std::path::PathBuf;

fn temp_store(tag: &str) -> (PathBuf, ArtifactStore) {
    let dir = std::env::temp_dir().join(format!("anacin_ws_store_{}_{}", std::process::id(), tag));
    std::fs::remove_dir_all(&dir).ok();
    let store = ArtifactStore::open(&dir).expect("open temp store");
    (dir, store)
}

fn bits(m: &anacin_kernels::prelude::KernelMatrix) -> Vec<u64> {
    m.values().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn cold_and_warm_campaigns_are_bit_identical_to_the_plain_pipeline() {
    let cfg = CampaignConfig::new(Pattern::Amg2013, 6)
        .runs(5)
        .base_seed(11);
    let plain = run_campaign(&cfg).expect("plain campaign");

    let (dir, store) = temp_store("diff");
    let cold = run_campaign_incremental(&cfg, &store).expect("cold campaign");
    let after_cold = store.activity();
    assert!(after_cold.puts > 0, "cold run must publish artifacts");

    // Reopen (fresh handle, empty LRU) so the warm pass exercises the
    // on-disk read path, not just the in-memory front.
    let store = ArtifactStore::open(&dir).expect("reopen store");
    let warm = run_campaign_incremental(&cfg, &store).expect("warm campaign");
    let a = store.activity();
    assert_eq!(a.misses, 0, "warm run must hit on every artifact");
    assert_eq!(a.puts, 0, "warm run must publish nothing");

    // Bit-identical across all three paths: traces, graphs, Gram matrix.
    for (label, r) in [("cold", &cold), ("warm", &warm)] {
        assert_eq!(r.traces, plain.traces, "{label} traces differ");
        assert_eq!(r.graphs, plain.graphs, "{label} graphs differ");
        assert_eq!(bits(&r.matrix), bits(&plain.matrix), "{label} gram bits");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_campaign_resumes_to_the_uninterrupted_result() {
    let full = CampaignConfig::new(Pattern::MessageRace, 8)
        .runs(8)
        .base_seed(3);
    // "Interrupt" after three runs: a prefix campaign populates the store
    // with the first three traces/graphs, exactly the artifacts a killed
    // process would have published.
    let prefix = full.clone().runs(3);

    let (dir, store) = temp_store("resume");
    run_campaign_incremental(&prefix, &store).expect("prefix campaign");

    let store = ArtifactStore::open(&dir).expect("reopen store");
    let resumed = run_campaign_incremental(&full, &store).expect("resumed campaign");
    let a = store.activity();
    assert!(
        a.hits >= 6,
        "resume must reuse the 3 stored traces and graphs, got {} hits",
        a.hits
    );

    let uninterrupted = run_campaign(&full).expect("plain campaign");
    assert_eq!(resumed.traces, uninterrupted.traces);
    assert_eq!(resumed.graphs, uninterrupted.graphs);
    assert_eq!(bits(&resumed.matrix), bits(&uninterrupted.matrix));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kernel_sweep_reuses_run_artifacts_across_kernel_choices() {
    let wl = CampaignConfig::new(Pattern::Collectives, 6)
        .runs(4)
        .base_seed(7);
    let vh = wl.clone().kernel(KernelChoice::VertexHistogram {
        policy: LabelPolicy::default(),
    });

    let (dir, store) = temp_store("kernels");
    run_campaign_incremental(&wl, &store).expect("wl campaign");
    let after_wl = store.activity();

    let vh_result = run_campaign_incremental(&vh, &store).expect("vh campaign");
    let a = store.activity();
    // Traces and graphs are kernel-independent: the second campaign reads
    // all 8 of them back and republishes only its own features (4), Gram
    // matrix (1) and distance sample (1).
    assert_eq!(a.hits - after_wl.hits, 8, "trace+graph reuse");
    assert_eq!(a.puts - after_wl.puts, 6, "kernel-specific artifacts only");

    let vh_plain = run_campaign(&vh).expect("plain vh campaign");
    assert_eq!(bits(&vh_result.matrix), bits(&vh_plain.matrix));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_detects_and_heal_recovers_from_on_disk_corruption() {
    let cfg = CampaignConfig::new(Pattern::Stencil2d, 5)
        .runs(3)
        .base_seed(9);
    let (dir, store) = temp_store("corrupt");
    run_campaign_incremental(&cfg, &store).expect("cold campaign");

    // Flip one byte in the middle of a stored trace frame.
    let path = store.path_of(run_fingerprint(&cfg, 0), anacin_store::ArtifactKind::Trace);
    let mut bytes = std::fs::read(&path).expect("read stored trace");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("rewrite corrupted trace");

    let store = ArtifactStore::open(&dir).expect("reopen store");
    let report = store.verify().expect("verify walk");
    assert_eq!(report.corrupt.len(), 1, "verify must flag the damaged file");

    // A fresh incremental run self-heals: recomputes the damaged run and
    // republishes it, ending bit-identical to the plain pipeline.
    let healed = run_campaign_incremental(&cfg, &store).expect("healing campaign");
    assert!(store.activity().corrupt >= 1);
    let plain = run_campaign(&cfg).expect("plain campaign");
    assert_eq!(bits(&healed.matrix), bits(&plain.matrix));

    let store = ArtifactStore::open(&dir).expect("reopen again");
    assert!(store
        .verify()
        .expect("verify after heal")
        .corrupt
        .is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
