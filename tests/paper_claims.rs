//! The paper's qualitative claims, verified at laptop scale.
//!
//! Each test corresponds to a figure's caption-level claim; EXPERIMENTS.md
//! records the paper-scale numbers. These run at `Scale::quick()` so the
//! suite stays fast in debug builds.

use anacin_bench::{figures, Scale};

#[test]
fn tables_reproduce() {
    let f = figures::tables();
    assert!(f.passed(), "{:?}", f.checks);
    assert!(f.text.contains("Table I"));
    assert!(f.text.contains("Table II"));
}

#[test]
fn fig1_event_graph_model() {
    let f = figures::fig1();
    assert!(f.passed(), "{:?}", f.checks);
}

#[test]
fn fig2_message_race_shape() {
    let f = figures::fig2();
    assert!(f.passed(), "{:?}", f.checks);
    // Four rows, as in the paper.
    assert!(f.text.contains("rank 3"));
}

#[test]
fn fig3_amg_two_process_shape() {
    let f = figures::fig3();
    assert!(f.passed(), "{:?}", f.checks);
}

#[test]
fn fig4_same_code_different_runs() {
    let f = figures::fig4();
    assert!(f.passed(), "{:?}", f.checks);
    assert!(f.text.contains("match order (a)"));
}

#[test]
fn fig5_more_processes_more_nd() {
    let f = figures::fig5(&Scale::quick());
    assert!(f.passed(), "{:?}", f.checks);
}

#[test]
fn fig6_more_iterations_more_nd() {
    let f = figures::fig6(&Scale::quick());
    assert!(f.passed(), "{:?}", f.checks);
}

#[test]
fn fig7_nd_percentage_is_monotone_knob() {
    let f = figures::fig7(&Scale::quick());
    assert!(f.passed(), "{:?}", f.checks);
}

#[test]
fn fig8_root_sources_are_wildcard_receives() {
    let f = figures::fig8(&Scale::quick());
    assert!(f.passed(), "{:?}", f.checks);
    assert!(f.text.contains("hypre"), "AMG call paths expected");
}

#[test]
fn fig7_shape_is_robust_to_the_delay_distribution() {
    // DESIGN.md ablation #4: the monotone ND%→distance trend must not
    // depend on the congestion-delay distribution.
    use anacin_x::mpisim::network::DelayDistribution;
    use anacin_x::prelude::*;
    for delay in [
        DelayDistribution::Exponential { mean_ns: 100.0 },
        DelayDistribution::Uniform {
            lo_ns: 0.0,
            hi_ns: 200.0,
        },
        DelayDistribution::Pareto {
            xm_ns: 40.0,
            alpha: 2.0,
        },
    ] {
        let base = CampaignConfig::new(Pattern::MessageRace, 8)
            .runs(8)
            .delay(delay);
        let sweep = sweep_nd_percent(&base, &[0.0, 25.0, 50.0, 75.0, 100.0]).unwrap();
        let rho = sweep.spearman_monotonicity();
        assert!(rho > 0.8, "{delay:?}: rho = {rho}");
        assert_eq!(sweep.points[0].measurement.mean(), 0.0, "{delay:?}");
    }
}
