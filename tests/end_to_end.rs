//! Cross-crate integration: the full ANACIN-X pipeline from pattern to
//! ranked root cause, exercised through the public facade.

use anacin_x::prelude::*;

#[test]
fn full_pipeline_race_to_root_cause() {
    // 1. Pattern → programs (miniapps + mpisim).
    let cfg = CampaignConfig::new(Pattern::MessageRace, 8).runs(10);
    // 2. Campaign → traces, graphs, kernel matrix (core + event-graph + kernels).
    let result = run_campaign(&cfg).expect("campaign completes");
    assert_eq!(result.traces.len(), 10);
    for t in &result.traces {
        t.validate().expect("traces are internally consistent");
        assert_eq!(t.meta.unmatched_messages, 0);
    }
    // 3. Measurement (stats).
    let m = NdMeasurement::from_campaign("race", &result);
    assert!(m.mean() > 0.0);
    assert_eq!(m.distances.len(), 45);
    // 4. Root cause (core::root_cause) — the racy aggregation path tops
    //    the ranking.
    let ranking = analyze(&result, &RootCauseConfig::default());
    let top = ranking.top().expect("nonempty ranking");
    assert!(
        top.stack.contains("aggregate_results"),
        "top: {}",
        top.stack
    );
    // 5. Visualisation (viz) renders everything without panicking.
    let violin = m.violin().expect("nonempty violin");
    assert!(!ascii::violins(std::slice::from_ref(&violin), 40).is_empty());
    assert!(svg::violin_svg(&[violin], "t", "d").contains("<polygon"));
    let g = &result.graphs[0];
    assert!(svg::event_graph_svg(g, "t").contains("<circle"));
}

#[test]
fn deterministic_network_collapses_everything() {
    let cfg = CampaignConfig::new(Pattern::Amg2013, 6)
        .nd_percent(0.0)
        .runs(6);
    let result = run_campaign(&cfg).expect("campaign completes");
    assert_eq!(result.mean_distance(), 0.0);
    let ranking = analyze(&result, &RootCauseConfig::default());
    assert!(ranking.slice_divergence.iter().all(|&d| d == 0.0));
}

#[test]
fn replay_suppresses_nondeterminism_end_to_end() {
    let app = MiniAppConfig::with_procs(8);
    let program = Pattern::UnstructuredMesh.build(&app);
    let reference =
        simulate(&program, &SimConfig::with_nd_percent(100.0, 7)).expect("reference run");
    let record = MatchRecord::from_trace(&reference);
    let g_ref = EventGraph::from_trace(&reference);
    let kernel = WlKernel::default();
    for seed in 50..55 {
        let sim = SimConfig::with_nd_percent(100.0, seed);
        let replayed = simulate_replay(&program, &sim, &record).expect("replayed run");
        let d = distance(&kernel, &g_ref, &EventGraph::from_trace(&replayed));
        assert_eq!(d, 0.0, "seed {seed}: replay must pin the communication");
    }
}

#[test]
fn collectives_app_full_pipeline() {
    let cfg = CampaignConfig::new(Pattern::Collectives, 6).runs(8);
    let result = run_campaign(&cfg).expect("campaign completes");
    // The only wildcard is the submission race, so ND is positive but the
    // top-ranked path must be the gather, not the collective traffic.
    assert!(result.mean_distance() > 0.0);
    let ranking = analyze(&result, &RootCauseConfig::default());
    let top = ranking.top().expect("nonempty");
    assert!(
        top.stack.contains("gather_partials"),
        "top path: {}",
        top.stack
    );
}

#[test]
fn exports_round_trip_through_facade() {
    use anacin_x::event_graph::export;
    let program = Pattern::Amg2013.build(&MiniAppConfig::with_procs(4));
    let t = simulate(&program, &SimConfig::with_nd_percent(100.0, 3)).unwrap();
    let g = EventGraph::from_trace(&t);
    let json = export::to_json(&g).unwrap();
    let g2 = export::from_json(&json).unwrap();
    assert_eq!(g2.node_count(), g.node_count());
    assert!(export::to_dot(&g).contains("digraph"));
    assert!(export::to_graphml(&g).contains("graphml"));
}

#[test]
fn kernel_choices_agree_on_identity() {
    // All kernels must report distance 0 between identical runs.
    let program = Pattern::UnstructuredMesh.build(&MiniAppConfig::with_procs(6));
    let t = simulate(&program, &SimConfig::with_nd_percent(100.0, 1)).unwrap();
    let g = EventGraph::from_trace(&t);
    let kernels: Vec<Box<dyn GraphKernel>> = vec![
        Box::new(WlKernel::default()),
        Box::new(VertexHistogramKernel::default()),
        Box::new(EdgeHistogramKernel::default()),
        Box::new(ShortestPathKernel::default()),
        Box::new(GraphletKernel::default()),
    ];
    for k in &kernels {
        assert_eq!(distance(k.as_ref(), &g, &g), 0.0, "{}", k.name());
    }
}

#[test]
fn seed_is_the_only_source_of_run_variation() {
    // Identical CampaignConfig (same base seed) → bit-identical sample;
    // different base seed → (almost surely) different sample.
    let cfg = CampaignConfig::new(Pattern::Amg2013, 6).runs(6);
    let a = run_campaign(&cfg).unwrap().distance_sample();
    let b = run_campaign(&cfg).unwrap().distance_sample();
    assert_eq!(a, b);
    let c = run_campaign(&cfg.clone().base_seed(999))
        .unwrap()
        .distance_sample();
    assert_ne!(a, c);
}

#[test]
fn stencil_is_the_negative_control() {
    // Fully specified matching: zero kernel distance at 100% ND, through
    // the complete pipeline.
    let cfg = CampaignConfig::new(Pattern::Stencil2d, 9).runs(6);
    let result = run_campaign(&cfg).expect("campaign completes");
    assert_eq!(result.mean_distance(), 0.0);
    // And the root-cause analysis reports no divergence anywhere.
    let ranking = analyze(&result, &RootCauseConfig::default());
    assert!(ranking.slice_divergence.iter().all(|&d| d == 0.0));
    // Contrast with the mesh (randomised wildcard matching) at identical
    // settings.
    let racy = run_campaign(&CampaignConfig::new(Pattern::UnstructuredMesh, 9).runs(6))
        .expect("campaign completes");
    assert!(racy.mean_distance() > 0.0);
}
