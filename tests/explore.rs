//! Integration tests for the schedule-space explorer: the acceptance
//! criteria of the explore feature, end to end through the facade.
//!
//! * the message race's enumeration is verified against brute force;
//! * the explored worst-case kernel distance bounds the empirical maximum
//!   over 1000 random samples;
//! * scheduled replay is bit-identical across repeated calls, across
//!   worker thread counts, and through the artifact store.

use anacin_store::{Artifact, ArtifactStore};
use anacin_x::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;

fn race_cfg() -> CampaignConfig {
    CampaignConfig::new(Pattern::MessageRace, 5).runs(20)
}

fn tmp_store(tag: &str) -> (PathBuf, ArtifactStore) {
    let dir = std::env::temp_dir().join(format!("anacin-explore-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).unwrap();
    (dir, store)
}

/// With 4 senders racing into rank 0's wildcard receives, the schedule
/// space is exactly the 4! = 24 arrival permutations — and the
/// partial-order-reduced walk must find the same set brute force does,
/// with no more work.
#[test]
fn message_race_enumeration_matches_brute_force() {
    let cfg = race_cfg();
    let program = cfg.pattern.build(&cfg.app);
    let por = explore(&program, &ExploreConfig::default());
    let brute = explore(&program, &ExploreConfig::default().brute_force());
    assert!(por.is_complete(), "POR walk truncated");
    assert!(brute.is_complete(), "brute-force walk truncated");
    let a: HashSet<u64> = por.schedules.iter().map(|s| s.id().0).collect();
    let b: HashSet<u64> = brute.schedules.iter().map(|s| s.id().0).collect();
    assert_eq!(a, b, "pruning changed the schedule set");
    assert_eq!(a.len(), 24, "expected all 4! arrival permutations");
    assert!(por.stats.branches <= brute.stats.branches);
}

/// The explored maximum really is a worst case: 1000 random samples stay
/// inside the enumerated set and never beat the explored max distance.
#[test]
fn explored_worst_case_bounds_a_thousand_samples() {
    let cfg = race_cfg();
    let r = explore_campaign(&cfg, &ExploreConfig::default()).unwrap();
    assert!(r.report.is_complete());
    let explored_ids: HashSet<u64> = r.report.schedules.iter().map(|s| s.id().0).collect();
    let explored_max = r.max_distance();
    assert!(explored_max > 0.0);

    // Sample 1000 seeds; distances depend only on the realised schedule,
    // so one representative graph per distinct schedule suffices.
    let program = cfg.pattern.build(&cfg.app);
    let mut reps: Vec<EventGraph> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for run in 0..1000u32 {
        let t = simulate(&program, &cfg.sim_config(run)).unwrap();
        let id = Schedule::from_trace(&t).id().0;
        assert!(
            explored_ids.contains(&id),
            "run {run} realised a schedule outside the complete enumeration"
        );
        if seen.insert(id) {
            reps.push(EventGraph::from_trace(&t));
        }
    }
    let kernel = cfg.kernel.instantiate();
    let mut sampled_max = 0.0f64;
    for i in 0..reps.len() {
        for j in (i + 1)..reps.len() {
            sampled_max = sampled_max.max(distance(kernel.as_ref(), &reps[i], &reps[j]));
        }
    }
    assert!(
        explored_max >= sampled_max - 1e-9,
        "1000 samples found distance {sampled_max} above the explored max {explored_max}"
    );
}

/// `simulate_scheduled` is a pure function of `(program, config,
/// schedule)`: repeated calls give byte-identical traces.
#[test]
fn scheduled_replay_is_bit_identical_across_repeats() {
    let cfg = race_cfg();
    let program = cfg.pattern.build(&cfg.app);
    let report = explore(&program, &ExploreConfig::default());
    let sc = cfg.sim_config(0);
    for s in report.schedules.iter().take(6) {
        let a = simulate_scheduled(&program, &sc, s).unwrap();
        let b = simulate_scheduled(&program, &sc, s).unwrap();
        assert_eq!(
            a.to_wire(),
            b.to_wire(),
            "schedule {} not bit-stable",
            s.id()
        );
        assert_eq!(Schedule::from_trace(&a).id(), s.id());
    }
}

/// The whole explore campaign — enumeration order, replayed traces, and
/// the kernel matrix — is invariant under the worker thread count.
#[test]
fn explore_campaign_is_thread_invariant() {
    let base = {
        let mut c = race_cfg();
        c.threads = 1;
        explore_campaign(&c, &ExploreConfig::default()).unwrap()
    };
    for threads in [2usize, 8] {
        let mut c = race_cfg();
        c.threads = threads;
        let r = explore_campaign(&c, &ExploreConfig::default()).unwrap();
        assert_eq!(r.report.ids(), base.report.ids(), "{threads} threads");
        assert_eq!(r.traces.len(), base.traces.len());
        for (a, b) in r.traces.iter().zip(base.traces.iter()) {
            assert_eq!(a.to_wire(), b.to_wire(), "{threads} threads");
        }
        assert_eq!(r.matrix, base.matrix, "{threads} threads");
    }
}

/// Explored traces round-trip through the artifact store: a warm
/// re-exploration serves every replay from the store, byte-identical.
#[test]
fn explored_traces_round_trip_through_the_store() {
    let cfg = race_cfg();
    let (dir, store) = tmp_store("roundtrip");
    let cold = explore_campaign_incremental(&cfg, &ExploreConfig::default(), &store).unwrap();
    let hits_before = store.activity().hits;
    let warm = explore_campaign_incremental(&cfg, &ExploreConfig::default(), &store).unwrap();
    assert!(
        store.activity().hits >= hits_before + cold.traces.len() as u64,
        "warm exploration did not hit the store for every replay"
    );
    for (w, c) in warm.traces.iter().zip(cold.traces.iter()) {
        assert_eq!(w.to_wire(), c.to_wire(), "stored replay not byte-identical");
    }
    assert_eq!(warm.matrix, cold.matrix);
    let _ = std::fs::remove_dir_all(dir);
}
