//! Tier-1 integration tests of the streaming-telemetry layer (PR 8).
//!
//! Two load-bearing properties. First, the incremental trace sink is a
//! faithful exporter: a streamed Chrome/folded file and the snapshot
//! export of the same campaign must contain exactly the same event
//! lines (streaming may only reorder metadata, never change or lose an
//! event). Second, the latency histograms behind every span timer are
//! self-consistent: quantiles are ordered, bounded by the observed
//! maximum, and conserve the span count exactly.

use anacin_obs::{hist, ChromeJsonSink, FoldedSink, MetricsRegistry, SharedBuffer, Tracer};
use anacin_x::prelude::*;

/// A canonical multiset of a Chrome export's lines: trailing commas
/// stripped (position in the array is formatting, not content), then
/// sorted. Streamed and snapshot exports emit metadata at different
/// points, so only this order-free form is comparable.
fn canonical_lines(doc: &str) -> Vec<String> {
    let mut lines: Vec<String> = doc
        .lines()
        .map(|l| l.trim_end_matches(',').to_string())
        .filter(|l| !l.is_empty())
        .collect();
    lines.sort();
    lines
}

/// Run one streaming campaign with a Chrome sink attached; return the
/// streamed document and the tracer (whose ring still holds every
/// record — draining never removes, so the snapshot export remains the
/// independent reference).
fn streamed_campaign(pattern: Pattern, procs: u32, runs: u32) -> (String, Tracer) {
    let cfg = CampaignConfig::new(pattern, procs).runs(runs);
    let tracer = Tracer::with_capacity(1 << 16);
    let reg = MetricsRegistry::new();
    reg.attach_tracer(&tracer);
    let buf = SharedBuffer::new();
    let sink = ChromeJsonSink::new(buf.clone(), true).expect("sink header");
    tracer.attach_sink(Box::new(sink));
    run_campaign_streaming_observed(&cfg, Some(&reg), Some(&tracer), 0).expect("campaign");
    let stats = tracer.finish_sink().expect("finish sink");
    assert_eq!(stats.lost, 0, "{pattern}: ring overflowed during test");
    assert_eq!(stats.pending, 0, "{pattern}: finish left records behind");
    (buf.contents(), tracer)
}

#[test]
fn streamed_chrome_export_matches_snapshot_on_every_tier1_pattern() {
    for pattern in Pattern::ALL {
        let (streamed, tracer) = streamed_campaign(pattern, 8, 4);
        let snapshot = tracer.snapshot().chrome_trace(true);
        assert_eq!(
            canonical_lines(&streamed),
            canonical_lines(&snapshot),
            "{pattern}: streamed and snapshot Chrome exports diverged"
        );
    }
}

#[test]
fn streamed_folded_export_is_byte_identical_to_snapshot() {
    let cfg = CampaignConfig::new(Pattern::MessageRace, 8).runs(4);
    let tracer = Tracer::with_capacity(1 << 16);
    let reg = MetricsRegistry::new();
    reg.attach_tracer(&tracer);
    let buf = SharedBuffer::new();
    tracer.attach_sink(Box::new(FoldedSink::new(buf.clone())));
    run_campaign_streaming_observed(&cfg, Some(&reg), Some(&tracer), 0).expect("campaign");
    tracer.finish_sink().expect("finish sink");
    // Folded output is derived entirely from span marks at finish time,
    // so it is byte-identical, not merely canonically equal.
    assert_eq!(buf.contents(), tracer.snapshot().folded_stacks());
}

#[test]
fn streamed_export_conserves_sim_event_count() {
    let (streamed, tracer) = streamed_campaign(Pattern::Amg2013, 8, 3);
    let snap = tracer.snapshot();
    let streamed_sim = streamed
        .lines()
        .filter(|l| l.contains("\"cat\":\"sim\""))
        .count();
    assert_eq!(snap.dropped, 0);
    assert_eq!(streamed_sim, snap.sim.len());
    assert_eq!(snap.recorded, (snap.sim.len() + snap.spans.len()) as u64);
}

#[test]
fn span_histograms_are_ordered_bounded_and_conserve_counts() {
    let cfg = CampaignConfig::new(Pattern::MessageRace, 8).runs(6);
    let reg = MetricsRegistry::new();
    run_campaign_streaming_observed(&cfg, Some(&reg), None, 0).expect("campaign");
    let report = reg.report();
    assert!(!report.spans.is_empty(), "campaign produced no spans");
    for span in &report.spans {
        assert!(
            span.p50_ns <= span.p95_ns && span.p95_ns <= span.p99_ns,
            "{}: quantiles out of order ({} / {} / {})",
            span.name,
            span.p50_ns,
            span.p95_ns,
            span.p99_ns
        );
        assert!(
            span.p99_ns <= span.max_ns,
            "{}: p99 {} above max {}",
            span.name,
            span.p99_ns,
            span.max_ns
        );
        assert!(
            span.p50_ns >= hist::bucket_lower_bound(hist::bucket_index(span.min_ns)),
            "{}: p50 {} below min bucket of {}",
            span.name,
            span.p50_ns,
            span.min_ns
        );
        let bucket_total: u64 = span.hist.iter().map(|b| b.n).sum();
        assert_eq!(
            bucket_total, span.count,
            "{}: histogram lost observations",
            span.name
        );
    }
}

#[test]
fn merged_report_percentiles_come_from_merged_histograms() {
    let cfg = CampaignConfig::new(Pattern::MessageRace, 8).runs(4);
    let (a, b) = (MetricsRegistry::new(), MetricsRegistry::new());
    run_campaign_streaming_observed(&cfg, Some(&a), None, 0).expect("campaign a");
    run_campaign_streaming_observed(&cfg, Some(&b), None, 0).expect("campaign b");
    let (ra, rb) = (a.report(), b.report());
    let mut merged = ra.clone();
    merged.merge(&rb);
    for span in &merged.spans {
        let (ca, cb) = (
            ra.span(&span.name).map(|s| s.count).unwrap_or(0),
            rb.span(&span.name).map(|s| s.count).unwrap_or(0),
        );
        assert_eq!(span.count, ca + cb, "{}: merge lost intervals", span.name);
        let bucket_total: u64 = span.hist.iter().map(|b| b.n).sum();
        assert_eq!(
            bucket_total, span.count,
            "{}: merged histogram lost observations",
            span.name
        );
        assert!(span.p50_ns <= span.p95_ns && span.p95_ns <= span.p99_ns);
        assert!(span.p99_ns <= span.max_ns);
    }
}
