//! Scale tests: the simulator and analysis at sizes beyond the paper's
//! 32-process maximum. The moderate case always runs; the large cases are
//! `#[ignore]`d (run with `cargo test --release -- --ignored`).

use anacin_x::prelude::*;

#[test]
fn moderate_scale_end_to_end() {
    // 48 processes, ~4.5k messages/run — comfortably past the paper's
    // largest setting, still sub-second in debug builds.
    let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 48).runs(4);
    let result = run_campaign(&cfg).expect("campaign completes");
    assert!(result.mean_distance() > 0.0);
    for t in &result.traces {
        assert_eq!(t.meta.unmatched_messages, 0);
    }
    let ranking = analyze(&result, &RootCauseConfig::default());
    assert!(!ranking.entries.is_empty());
}

#[test]
fn moderate_scale_amg_graph_properties() {
    let program = Pattern::Amg2013.build(&MiniAppConfig::with_procs(40));
    let t = simulate(&program, &SimConfig::with_nd_percent(100.0, 1)).expect("run completes");
    t.validate().unwrap();
    let g = EventGraph::from_trace(&t);
    // 2 phases × 40×39 messages.
    assert_eq!(g.message_edge_count(), 2 * 40 * 39);
    assert!(anacin_x::event_graph::algo::is_dag(&g));
}

#[test]
#[ignore = "large: ~128 processes, run with --ignored"]
fn large_scale_simulation() {
    let program = Pattern::Amg2013.build(&MiniAppConfig::with_procs(128).iterations(2));
    let t = simulate(&program, &SimConfig::with_nd_percent(100.0, 1)).expect("run completes");
    assert_eq!(t.meta.unmatched_messages, 0);
    assert_eq!(t.meta.messages, 2 * 2 * 128 * 127);
    t.validate().unwrap();
}

#[test]
#[ignore = "large: full campaign at 64 processes, run with --ignored"]
fn large_scale_campaign_and_kernels() {
    let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 64).runs(10);
    let result = run_campaign(&cfg).expect("campaign completes");
    assert!(result.mean_distance() > 0.0);
    assert_eq!(result.matrix.len(), 10);
    // Replay still pins everything at this scale.
    let record = MatchRecord::from_trace(&result.traces[0]);
    let replayed = simulate_replay(
        &Pattern::UnstructuredMesh.build(&cfg.app),
        &cfg.sim_config(99),
        &record,
    )
    .expect("replay completes");
    for r in 0..64 {
        assert_eq!(
            replayed.match_order(Rank(r)),
            result.traces[0].match_order(Rank(r))
        );
    }
}
