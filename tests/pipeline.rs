//! Differential tests for the fused feature→Gram pipeline: the pipelined
//! schedule must be bit-identical to the barrier schedule for every kernel
//! at every thread count, warm-store reads must be bit-identical to cold
//! pipelined computes, and the interned WL relabelling must reproduce the
//! pre-interner label stream exactly.

use anacin_store::ArtifactStore;
use anacin_testkit::prelude::{generate, GenConfig};
use anacin_x::event_graph::label::{fnv1a_words, initial_labels};
use anacin_x::event_graph::EdgeKind;
use anacin_x::prelude::*;
use std::path::PathBuf;

fn temp_store(tag: &str) -> (PathBuf, ArtifactStore) {
    let dir =
        std::env::temp_dir().join(format!("anacin_ws_pipeline_{}_{}", std::process::id(), tag));
    std::fs::remove_dir_all(&dir).ok();
    let store = ArtifactStore::open(&dir).expect("open temp store");
    (dir, store)
}

fn bits(m: &KernelMatrix) -> Vec<u64> {
    m.values().iter().map(|v| v.to_bits()).collect()
}

/// A spread of testkit-generated programs (collectives, exchanges,
/// wildcards, chaotic ranks), each simulated under full nondeterminism.
fn generated_graphs() -> Vec<EventGraph> {
    let mut graphs = Vec::new();
    for gen_seed in [1u64, 7, 19, 42] {
        let gp = generate(&GenConfig::from_seed(gen_seed));
        for sim_seed in [0u64, 3] {
            let t = simulate(&gp.program, &SimConfig::with_nd_percent(100.0, sim_seed))
                .expect("generated program simulates");
            graphs.push(EventGraph::from_trace(&t));
        }
    }
    graphs
}

fn all_kernels() -> Vec<Box<dyn GraphKernel>> {
    vec![
        Box::new(WlKernel::default()),
        Box::new(VertexHistogramKernel::default()),
        Box::new(EdgeHistogramKernel::default()),
        Box::new(ShortestPathKernel::default()),
        Box::new(GraphletKernel::default()),
    ]
}

/// The tentpole invariant: for every kernel, the pipelined scheduler
/// produces a Gram matrix bit-identical to the barrier scheduler at any
/// thread count — each cell is computed exactly once by the same
/// expression, so the schedule can never leak into the numbers.
#[test]
fn pipelined_gram_is_bit_identical_to_barrier_for_every_kernel() {
    let graphs = generated_graphs();
    for kernel in all_kernels() {
        let barrier = gram_matrix(kernel.as_ref(), &graphs, 1);
        for threads in [1usize, 2, 8] {
            let pipelined = gram_pipelined(kernel.as_ref(), &graphs, threads);
            assert_eq!(
                bits(&pipelined),
                bits(&barrier),
                "kernel {} at {threads} threads diverged from barrier",
                kernel.name()
            );
        }
    }
}

/// The barrier schedule stays reachable through the campaign config, and
/// both schedules agree bit-for-bit end to end (simulate → graph →
/// features → Gram), at several thread counts.
#[test]
fn campaign_schedules_agree_bit_for_bit() {
    let base = CampaignConfig::new(Pattern::UnstructuredMesh, 6)
        .runs(6)
        .base_seed(23);
    let mut barrier_cfg = base.clone().schedule(GramSchedule::Barrier);
    barrier_cfg.threads = 1;
    let reference = run_campaign(&barrier_cfg).expect("barrier campaign");
    for threads in [1usize, 2, 8] {
        let mut cfg = base.clone().schedule(GramSchedule::Pipelined);
        cfg.threads = threads;
        let pipelined = run_campaign(&cfg).expect("pipelined campaign");
        assert_eq!(
            bits(&pipelined.matrix),
            bits(&reference.matrix),
            "pipelined({threads} threads) vs barrier(1 thread)"
        );
    }
}

/// Warm store reads, cold pipelined computes, and the store-free barrier
/// pipeline all agree bit-for-bit: the schedule is excluded from store
/// fingerprints precisely because it cannot change the artifact.
#[test]
fn warm_store_matches_cold_pipelined_and_plain_barrier() {
    let cfg = CampaignConfig::new(Pattern::Amg2013, 6)
        .runs(5)
        .base_seed(31);
    assert_eq!(cfg.schedule, GramSchedule::Pipelined, "pipelined default");
    let plain_barrier =
        run_campaign(&cfg.clone().schedule(GramSchedule::Barrier)).expect("barrier campaign");

    let (dir, store) = temp_store("cold_warm");
    let cold = run_campaign_incremental(&cfg, &store).expect("cold pipelined campaign");
    assert!(store.activity().puts > 0, "cold run publishes artifacts");

    let store = ArtifactStore::open(&dir).expect("reopen store");
    let warm = run_campaign_incremental(&cfg, &store).expect("warm campaign");
    let a = store.activity();
    assert_eq!(a.misses, 0, "warm run must hit on every artifact");
    assert_eq!(a.puts, 0, "warm run must publish nothing");

    for (label, r) in [("cold", &cold), ("warm", &warm)] {
        assert_eq!(r.traces, plain_barrier.traces, "{label} traces differ");
        assert_eq!(r.graphs, plain_barrier.graphs, "{label} graphs differ");
        assert_eq!(
            bits(&r.matrix),
            bits(&plain_barrier.matrix),
            "{label} gram bits differ from plain barrier pipeline"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A resumed campaign drives the *seeded* pipeline (warm features feed the
/// dot queue directly, only missing runs are extracted) and still lands on
/// the uninterrupted result bit-for-bit.
#[test]
fn resumed_campaign_seeds_pipeline_and_matches_uninterrupted_result() {
    let full = CampaignConfig::new(Pattern::MessageRace, 8)
        .runs(8)
        .base_seed(5);
    let prefix = full.clone().runs(3);

    let (dir, store) = temp_store("resume");
    run_campaign_incremental(&prefix, &store).expect("interrupted prefix campaign");
    let resumed = run_campaign_incremental(&full, &store).expect("resumed campaign");
    let uninterrupted = run_campaign(&full).expect("uninterrupted campaign");
    assert_eq!(resumed.traces, uninterrupted.traces);
    assert_eq!(bits(&resumed.matrix), bits(&uninterrupted.matrix));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// WL interner oracle: the pre-interner relabelling, reimplemented from the
// published definition (initial labels per policy; each round hashes
// [label, MAX, sorted in-contribs, MAX-1, sorted out-contribs]; features
// count (round, label) pairs), checked against the arena/interner path.

fn relabel_reference(g: &EventGraph, labels: &[u64], edge_sensitive: bool) -> Vec<u64> {
    let contrib = |label: u64, kind: EdgeKind| -> u64 {
        if edge_sensitive {
            let k = match kind {
                EdgeKind::Program => 1u64,
                EdgeKind::Message => 2u64,
            };
            fnv1a_words(&[label, k])
        } else {
            label
        }
    };
    let mut next = Vec::with_capacity(labels.len());
    for id in g.node_ids() {
        let mut ins: Vec<u64> = g
            .in_edges(id)
            .iter()
            .map(|&(n, k)| contrib(labels[n.index()], k))
            .collect();
        let mut outs: Vec<u64> = g
            .out_edges(id)
            .iter()
            .map(|&(n, k)| contrib(labels[n.index()], k))
            .collect();
        ins.sort_unstable();
        outs.sort_unstable();
        let mut words = Vec::with_capacity(ins.len() + outs.len() + 3);
        words.push(labels[id.index()]);
        words.push(u64::MAX);
        words.extend_from_slice(&ins);
        words.push(u64::MAX - 1);
        words.extend_from_slice(&outs);
        next.push(fnv1a_words(&words));
    }
    next
}

fn features_reference(k: &WlKernel, g: &EventGraph) -> SparseFeatures {
    let mut rounds = vec![initial_labels(g, k.policy)];
    for _ in 0..k.iterations {
        let next = relabel_reference(g, rounds.last().expect("nonempty"), k.edge_sensitive);
        rounds.push(next);
    }
    let mut f = SparseFeatures::new();
    for (round, labels) in rounds.into_iter().enumerate() {
        for l in labels {
            f.add(fnv1a_words(&[round as u64, l]), 1.0);
        }
    }
    f
}

/// The interned WL implementation (dense ids + reused arena) emits feature
/// maps and label streams identical to the direct u64 relabelling it
/// replaced, across policies, edge sensitivity, and depths.
#[test]
fn interned_wl_features_match_reference_relabelling() {
    let graphs = generated_graphs();
    let policies = [
        LabelPolicy::EventType,
        LabelPolicy::TypeAndPeer,
        LabelPolicy::RankTypePeer,
    ];
    for g in &graphs {
        for policy in policies {
            for edge_sensitive in [false, true] {
                for iterations in [0u32, 2, 4] {
                    let k = WlKernel {
                        iterations,
                        policy,
                        edge_sensitive,
                    };
                    assert_eq!(
                        k.features(g),
                        features_reference(&k, g),
                        "policy={policy:?} edges={edge_sensitive} h={iterations}"
                    );
                    let rounds = k.label_rounds(g);
                    let mut expect = vec![initial_labels(g, policy)];
                    for _ in 0..iterations {
                        expect.push(relabel_reference(
                            g,
                            expect.last().expect("nonempty"),
                            edge_sensitive,
                        ));
                    }
                    assert_eq!(rounds, expect, "label rounds diverge");
                }
            }
        }
    }
}
