//! Property-based tests spanning the whole pipeline.
//!
//! Two input sources: the five packaged mini-app patterns, and — much
//! broader — `anacin-testkit`'s random program generator, which feeds
//! hundreds of arbitrary deadlock-free MPI programs through the validator
//! and the full differential/metamorphic oracle battery.

use anacin_testkit::prelude::*;
use anacin_x::prelude::*;
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::MessageRace),
        Just(Pattern::Amg2013),
        Just(Pattern::UnstructuredMesh),
        Just(Pattern::Collectives),
        Just(Pattern::Stencil2d),
    ]
}

/// Arbitrary generator configurations: explicit knob draws, not just
/// seed-derived ones, so the corners (all-wildcard, all-blocking, maximum
/// fan-out) are reachable directly.
fn arb_gen_config() -> impl Strategy<Value = GenConfig> {
    (
        (2u32..=16, 1u32..=6, 1u32..=3, 0u64..1 << 48),
        (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
    )
        .prop_map(
            |((world_size, rounds, max_sends, seed), (wild, nonblk, mix))| {
                // A third of configurations are pure point-to-point, the only
                // shape where chaotic (ANY/ANY) ranks are sound.
                let pure_p2p = mix < 1.0 / 3.0;
                GenConfig {
                    world_size,
                    rounds,
                    max_sends,
                    wildcard_prob: wild,
                    nonblocking_prob: nonblk,
                    collective_prob: if pure_p2p { 0.0 } else { 0.25 },
                    exchange_prob: if pure_p2p { 0.0 } else { 0.2 },
                    chaos_prob: if pure_p2p { mix } else { 0.0 },
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every packaged pattern, at any (procs, nd, iterations, seed) in
    /// range, completes with all messages delivered and a valid trace.
    #[test]
    fn patterns_always_complete(
        pattern in arb_pattern(),
        procs in 2u32..10,
        nd in 0.0f64..=100.0,
        iterations in 1u32..3,
        seed in 0u64..500,
    ) {
        let app = MiniAppConfig::with_procs(procs).iterations(iterations);
        let program = pattern.build(&app);
        prop_assert!(program.check_balance().is_ok());
        let t = simulate(&program, &SimConfig::with_nd_percent(nd, seed)).unwrap();
        prop_assert_eq!(t.meta.unmatched_messages, 0);
        t.validate().unwrap();
    }

    /// The event graph of any run is a DAG whose Lamport clocks verify,
    /// and the kernel self-distance is zero.
    #[test]
    fn graphs_are_dags_with_zero_self_distance(
        pattern in arb_pattern(),
        procs in 2u32..8,
        seed in 0u64..200,
    ) {
        let program = pattern.build(&MiniAppConfig::with_procs(procs));
        let t = simulate(&program, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
        let g = EventGraph::from_trace(&t);
        prop_assert!(anacin_x::event_graph::algo::is_dag(&g));
        let ts = anacin_x::event_graph::lamport::lamport_times(&g);
        anacin_x::event_graph::lamport::verify_lamport(&g, &ts).unwrap();
        let k = WlKernel::default();
        prop_assert_eq!(distance(&k, &g, &g), 0.0);
    }

    /// Kernel distances between runs are symmetric and non-negative for
    /// every kernel, and zero at nd=0.
    #[test]
    fn distances_symmetric_nonnegative(
        pattern in arb_pattern(),
        procs in 2u32..8,
        seed_a in 0u64..50,
        seed_b in 50u64..100,
    ) {
        let program = pattern.build(&MiniAppConfig::with_procs(procs));
        let ga = EventGraph::from_trace(
            &simulate(&program, &SimConfig::with_nd_percent(100.0, seed_a)).unwrap());
        let gb = EventGraph::from_trace(
            &simulate(&program, &SimConfig::with_nd_percent(100.0, seed_b)).unwrap());
        let kernels: Vec<Box<dyn GraphKernel>> = vec![
            Box::new(WlKernel::default()),
            Box::new(VertexHistogramKernel::default()),
            Box::new(EdgeHistogramKernel::default()),
        ];
        for k in &kernels {
            let dab = distance(k.as_ref(), &ga, &gb);
            let dba = distance(k.as_ref(), &gb, &ga);
            prop_assert!(dab >= 0.0);
            prop_assert!((dab - dba).abs() < 1e-9);
        }
    }

    /// Record/replay reproduces the recorded match orders for every
    /// pattern (the extension integrates with all of them).
    #[test]
    fn replay_is_universal(
        pattern in arb_pattern(),
        procs in 2u32..8,
        record_seed in 0u64..20,
        replay_seed in 20u64..40,
    ) {
        let program = pattern.build(&MiniAppConfig::with_procs(procs));
        let recorded =
            simulate(&program, &SimConfig::with_nd_percent(100.0, record_seed)).unwrap();
        let record = MatchRecord::from_trace(&recorded);
        let replayed = simulate_replay(
            &program,
            &SimConfig::with_nd_percent(100.0, replay_seed),
            &record,
        ).unwrap();
        for r in 0..procs {
            prop_assert_eq!(
                recorded.match_order(Rank(r)),
                replayed.match_order(Rank(r)),
                "rank {} diverged", r
            );
        }
    }
}

// 224 random programs per run (112 seed-derived + 112 explicit-knob), each
// one simulated at 0/50/100% ND, structurally validated, and checked
// against every oracle: bit reproducibility, nd=0 seed invariance, replay
// zero-distance, kernel-distance axioms for all five kernels, and Gram
// thread invariance.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(112))]

    /// The whole battery holds for seed-derived generator configurations.
    #[test]
    fn generated_programs_pass_validator_and_all_oracles(seed in 0u64..1 << 48) {
        let summary = check_seed(seed)
            .unwrap_or_else(|e| panic!("testkit seed {seed}: {e}"));
        prop_assert!(summary.validation.messages > 0 || summary.validation.events > 0);
        prop_assert!(summary.kernel_pairs > 0);
    }

    /// …and for explicitly drawn knob combinations, including the corners
    /// seed derivation rarely visits.
    #[test]
    fn generated_corner_configs_pass_validator_and_all_oracles(cfg in arb_gen_config()) {
        let gp = generate(&cfg);
        check_generated(&gp)
            .unwrap_or_else(|e| panic!("testkit config {:?}: {e}", gp.config));
    }
}

/// Small pure point-to-point generator configurations: the schedule space
/// stays enumerable under the default explore budgets, which is what the
/// coverage differential needs.
fn arb_small_p2p_config() -> impl Strategy<Value = GenConfig> {
    (
        (2u32..=4, 1u32..=2, 1u32..=2),
        (0.0f64..=1.0, 0.0f64..=1.0, 0u64..1 << 48),
    )
        .prop_map(
            |((world_size, rounds, max_sends), (wild, nonblk, seed))| GenConfig {
                world_size,
                rounds,
                max_sends,
                wildcard_prob: wild,
                nonblocking_prob: nonblk,
                collective_prob: 0.0,
                exchange_prob: 0.0,
                chaos_prob: 0.0,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Schedule-coverage differential: whenever `mpisim::explore`
    /// completes on a small generated program, its enumeration contains
    /// the schedule of every sampled run, and explored schedules replay
    /// through the real engine to their own fingerprints (the testkit
    /// exhaustiveness oracle). Truncated walks assert nothing and are
    /// skipped.
    #[test]
    fn exploration_covers_sampling_on_generated_programs(cfg in arb_small_p2p_config()) {
        let gp = generate(&cfg);
        let sample: Vec<u64> = (0..16u64)
            .map(|i| cfg.seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let checked =
            oracle_schedule_exhaustiveness(&gp.program, &sample, &ExploreConfig::default())
                .unwrap_or_else(|e| panic!("testkit config {:?}: {e}", gp.config));
        if let Some(n) = checked {
            prop_assert!(n >= 1, "a complete enumeration cannot be empty");
        }
    }
}
