//! Tier-1 integration tests of the structured tracing layer (PR 3).
//!
//! The load-bearing property is the observability invariant: attaching a
//! tracer must never change what is measured. Everything else — export
//! determinism, ring-buffer bounds, event-count cross-checks — builds on
//! that foundation.

use anacin_obs::{MetricsRegistry, SimEventKind, Tracer};
use anacin_x::prelude::*;

fn campaign(pattern: Pattern, procs: u32, runs: u32) -> CampaignConfig {
    CampaignConfig::new(pattern, procs).runs(runs)
}

/// Serialise traces for bit-identity comparison (Trace has no PartialEq;
/// the JSON form covers every field including match linkage and times).
fn trace_bytes(traces: &[Trace]) -> Vec<String> {
    traces
        .iter()
        .map(|t| serde_json::to_string(t).expect("trace serialises"))
        .collect()
}

#[test]
fn traced_campaign_is_bit_identical_to_untraced() {
    for pattern in [
        Pattern::MessageRace,
        Pattern::Amg2013,
        Pattern::UnstructuredMesh,
    ] {
        let cfg = campaign(pattern, 8, 6);
        let plain = run_campaign(&cfg).expect("plain campaign");
        let reg = MetricsRegistry::new();
        let tracer = Tracer::new();
        reg.attach_tracer(&tracer);
        let traced =
            run_campaign_observed(&cfg, Some(&reg), Some(&tracer), 0).expect("traced campaign");
        // Bit-identical artifacts: every trace byte-for-byte, every kernel
        // distance exactly equal.
        assert_eq!(
            trace_bytes(&plain.traces),
            trace_bytes(&traced.traces),
            "{pattern}: traces must not change under tracing"
        );
        assert_eq!(
            plain.distance_sample(),
            traced.distance_sample(),
            "{pattern}: kernel distances must not change under tracing"
        );
        // And the tracer did actually observe the campaign.
        let snap = tracer.snapshot();
        assert!(!snap.sim.is_empty(), "{pattern}: tracer saw no events");
    }
}

#[test]
fn sim_trace_export_is_byte_identical_across_worker_thread_counts() {
    let mut cfg = campaign(Pattern::MessageRace, 8, 8);
    let mut exports = Vec::new();
    for threads in [1usize, 2, 8] {
        cfg.threads = threads;
        let tracer = Tracer::new();
        run_campaign_observed(&cfg, None, Some(&tracer), 0).expect("campaign");
        // Wall-clock spans depend on real time; the simulated-time export
        // must not.
        exports.push(tracer.snapshot().chrome_trace(false));
    }
    assert_eq!(exports[0], exports[1], "1 vs 2 worker threads");
    assert_eq!(exports[0], exports[2], "1 vs 8 worker threads");
}

#[test]
fn traced_event_counts_match_event_graph_node_counts() {
    // The tracer and the event-graph builder both consume the same finished
    // traces, so their event/node counts must agree exactly — for all three
    // paper patterns.
    for pattern in [
        Pattern::MessageRace,
        Pattern::Amg2013,
        Pattern::UnstructuredMesh,
    ] {
        let cfg = campaign(pattern, 6, 5);
        let tracer = Tracer::new();
        let result = run_campaign_observed(&cfg, None, Some(&tracer), 0).expect("campaign");
        let per_run = tracer.snapshot().sim_events_per_run();
        assert_eq!(per_run.len(), result.graphs.len(), "{pattern}");
        for (run, count) in per_run {
            let graph_nodes = result.graphs[run as usize].node_count();
            assert_eq!(
                count, graph_nodes,
                "{pattern} run {run}: traced events vs graph nodes"
            );
            assert_eq!(
                count,
                result.traces[run as usize].total_events(),
                "{pattern} run {run}: traced events vs trace events"
            );
        }
    }
}

#[test]
fn chrome_export_has_one_track_per_rank_with_monotone_timestamps() {
    let procs = 6u32;
    let cfg = campaign(Pattern::MessageRace, procs, 3);
    let tracer = Tracer::new();
    run_campaign_observed(&cfg, None, Some(&tracer), 0).expect("campaign");
    let snap = tracer.snapshot();
    for run in 0..3u32 {
        let mut ranks: Vec<u32> = snap
            .sim
            .iter()
            .filter(|e| e.run == run)
            .map(|e| e.rank)
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(
            ranks,
            (0..procs).collect::<Vec<u32>>(),
            "run {run}: exactly one track per rank"
        );
        // Per-rank simulated times are monotone (the engine clamps
        // wait-completed receives to the rank's last event time).
        for r in 0..procs {
            let times: Vec<u64> = snap
                .sim
                .iter()
                .filter(|e| e.run == run && e.rank == r)
                .map(|e| e.t_ns)
                .collect();
            assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "run {run} rank {r}: non-monotone sim times {times:?}"
            );
        }
    }
    // The JSON itself mentions each rank's track metadata.
    let json = snap.chrome_trace(false);
    for r in 0..procs {
        assert!(json.contains(&format!("\"name\":\"rank {r}\"")), "rank {r}");
    }
}

#[test]
fn matched_messages_share_flow_ids_between_send_and_recv() {
    let cfg = campaign(Pattern::MessageRace, 6, 2);
    let tracer = Tracer::new();
    let result = run_campaign_observed(&cfg, None, Some(&tracer), 0).expect("campaign");
    let snap = tracer.snapshot();
    for run in 0..2u32 {
        let mut sends: Vec<u64> = snap
            .sim
            .iter()
            .filter(|e| e.run == run)
            .filter_map(|e| match e.kind {
                SimEventKind::Send { msg_id } => Some(msg_id),
                _ => None,
            })
            .collect();
        let mut recvs: Vec<u64> = snap
            .sim
            .iter()
            .filter(|e| e.run == run)
            .filter_map(|e| match e.kind {
                SimEventKind::Recv { msg_id, .. } => Some(msg_id),
                _ => None,
            })
            .collect();
        sends.sort_unstable();
        recvs.sort_unstable();
        // Every delivered message was received exactly once in these
        // patterns, so the multisets of flow ids coincide.
        assert_eq!(sends, recvs, "run {run}");
        assert_eq!(
            sends.len() as u64,
            result.traces[run as usize].meta.messages,
            "run {run}"
        );
    }
}

#[test]
fn ring_overflow_on_a_real_campaign_keeps_newest_and_counts_drops() {
    let cfg = campaign(Pattern::Amg2013, 8, 4);
    let tracer = Tracer::with_capacity(64);
    run_campaign_observed(&cfg, None, Some(&tracer), 0).expect("campaign");
    let snap = tracer.snapshot();
    assert!(snap.recorded > 64, "campaign must overflow the tiny ring");
    assert!(snap.dropped > 0);
    assert_eq!(snap.recorded - snap.dropped, snap.sim.len() as u64);
    assert!(snap.sim.len() <= 64);
    // Oldest-first: the surviving records are from the end of the stream,
    // so the earliest runs' earliest events are gone while the final run's
    // final events survive.
    let last_run = snap.sim.iter().map(|e| e.run).max().expect("non-empty");
    assert_eq!(last_run, 3, "newest run survives the wrap");
}

#[test]
fn folded_stacks_cover_the_pipeline_stages() {
    let cfg = campaign(Pattern::MessageRace, 6, 4);
    let reg = MetricsRegistry::new();
    let tracer = Tracer::new();
    reg.attach_tracer(&tracer);
    run_campaign_observed(&cfg, Some(&reg), Some(&tracer), 0).expect("campaign");
    let folded = tracer.snapshot().folded_stacks();
    assert!(folded.contains("campaign"), "{folded}");
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        assert!(weight.parse::<u64>().is_ok(), "{line}");
    }
}

#[test]
fn per_point_sweep_metrics_are_bit_exact_and_cover_every_point() {
    let base = campaign(Pattern::MessageRace, 6, 4);
    let percents = [0.0, 50.0, 100.0];
    let plain = sweep_nd_percent(&base, &percents).expect("plain sweep");
    let (instrumented, metrics) =
        sweep_nd_percent_instrumented(&base, &percents, None).expect("instrumented sweep");
    assert_eq!(plain.mean_series(), instrumented.mean_series());
    assert_eq!(metrics.points.len(), percents.len());
    for pm in &metrics.points {
        assert_eq!(pm.report.counter("campaign/runs"), Some(4), "{}", pm.label);
    }
    assert_eq!(
        metrics.aggregate.counter("campaign/runs"),
        Some(4 * percents.len() as u64)
    );
}
