//! Quickstart: measure the non-determinism of a message race.
//!
//! Mirrors the first contact a student has with the toolkit (Use Case 1 →
//! Use Case 2 in miniature): build a pattern, look at its event graph, run
//! it many times at 0% and 100% non-determinism, and compare the kernel
//! distances.
//!
//! Run with: `cargo run --release --example quickstart`

use anacin_x::prelude::*;

fn main() {
    // 1. Build the simplest racy pattern: 7 workers send a result to rank
    //    0, which posts wildcard receives (MPI_ANY_SOURCE).
    let app = MiniAppConfig::with_procs(8);
    let program = Pattern::MessageRace.build(&app);
    println!(
        "message race on {} processes: {} sends, {} receives\n",
        app.procs,
        program.total_sends(),
        program.total_receives()
    );

    // 2. One deterministic run, and its event graph.
    let trace = simulate(&program, &SimConfig::deterministic()).expect("run completes");
    let graph = EventGraph::from_trace(&trace);
    println!("event graph of a deterministic run:");
    println!("{}", ascii::event_graph_lanes(&graph));

    // 3. A measurement campaign at 0% and at 100% non-determinism.
    for nd in [0.0, 100.0] {
        let cfg = CampaignConfig::new(Pattern::MessageRace, 8)
            .nd_percent(nd)
            .runs(20);
        let result = run_campaign(&cfg).expect("campaign completes");
        let m = NdMeasurement::from_campaign(format!("nd={nd}%"), &result);
        println!(
            "nd={nd:>5}%  mean kernel distance over {} run pairs: {:.4}",
            m.distances.len(),
            m.mean()
        );
        if let Some(v) = m.violin() {
            print!("{}", ascii::violins(&[v], 48));
        }
    }

    println!(
        "\nAt 0% every run is identical (distance 0); at 100% the wildcard receives race\n\
         and the kernel distance — the paper's proxy for non-determinism — is positive."
    );
}
