//! Record-and-replay (the ReMPI technique from the paper's related work).
//!
//! Demonstrates both halves of the non-determinism story:
//!
//! 1. *measure* — free runs of an unstructured-mesh app at 100% ND have
//!    positive kernel distance to a recorded reference run;
//! 2. *suppress* — replaying the recorded matching decisions pins every
//!    wildcard receive, and the distance collapses to exactly zero even
//!    though the network still injects delays.
//!
//! Run with: `cargo run --release --example record_replay`

use anacin_x::prelude::*;

fn main() {
    let app = MiniAppConfig::with_procs(10).iterations(2);
    let program = Pattern::UnstructuredMesh.build(&app);
    let kernel = WlKernel::default();

    // Record a reference run.
    let reference = simulate(&program, &SimConfig::with_nd_percent(100.0, 42))
        .expect("reference run completes");
    let record = MatchRecord::from_trace(&reference);
    let g_ref = EventGraph::from_trace(&reference);
    println!(
        "recorded reference run: {} receive decisions captured",
        record.total()
    );

    println!(
        "\n{:>6} {:>20} {:>20}",
        "seed", "free-run distance", "replayed distance"
    );
    let mut free_distances = Vec::new();
    for seed in 100..110 {
        let sim = SimConfig::with_nd_percent(100.0, seed);
        let free = simulate(&program, &sim).expect("free run completes");
        let replayed = simulate_replay(&program, &sim, &record).expect("replayed run completes");
        let d_free = distance(&kernel, &g_ref, &EventGraph::from_trace(&free));
        let d_rep = distance(&kernel, &g_ref, &EventGraph::from_trace(&replayed));
        println!("{seed:>6} {d_free:>20.4} {d_rep:>20.4}");
        assert_eq!(d_rep, 0.0, "replay must reproduce the recorded matching");
        free_distances.push(d_free);
    }

    let s = Summary::of(&free_distances).expect("nonempty");
    println!(
        "\nfree runs diverge from the reference (mean distance {:.3});\n\
         replayed runs are bit-identical in communication structure (distance 0.0).\n\
         This is how record-and-replay tools like ReMPI temporarily restore\n\
         reproducibility for debugging.",
        s.mean
    );
}
