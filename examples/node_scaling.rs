//! Compute-node scaling: why the paper tells students to run "across
//! multiple compute nodes to increase the likelihood that runs are
//! non-deterministic" (§III-A2).
//!
//! At a *low* non-determinism percentage (a lightly loaded network), many
//! run pairs come out identical on a single node. Spanning compute nodes
//! routes traffic over the slower, more congested interconnect (inter-node
//! congestion delays are larger), so more run pairs actually differ — the
//! "likelihood" of observing non-determinism grows, which is the paper's
//! point: if your bug won't reproduce, spread the job across nodes.
//!
//! Run with: `cargo run --release --example node_scaling`

use anacin_x::prelude::*;

fn main() {
    let nd = 5.0;
    println!("unstructured mesh, 16 processes, nd={nd}%, 12 runs per setting\n");
    println!(
        "{:>6}  {:>22}  {:>20}",
        "nodes", "differing run pairs", "mean kernel distance"
    );
    let mut likelihoods = Vec::new();
    for nodes in [1u32, 2, 4] {
        let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 16)
            .nd_percent(nd)
            .nodes(nodes)
            .runs(12);
        let result = run_campaign(&cfg).expect("campaign completes");
        let distances = result.distance_sample();
        let differing = distances.iter().filter(|&&d| d > 0.0).count();
        println!(
            "{nodes:>6}  {:>18}/{:<3}  {:>20.3}",
            differing,
            distances.len(),
            result.mean_distance()
        );
        likelihoods.push(differing);
    }

    println!(
        "\nwith more compute nodes, more of the run pairs differ: {:?}",
        likelihoods
    );
    assert!(
        likelihoods.last().unwrap() >= likelihoods.first().unwrap(),
        "spanning nodes should not make runs *more* reproducible"
    );
    println!(
        "→ when non-determinism is hard to reproduce, span more compute nodes\n\
         (and/or raise the process count, as Use Case 2 shows)."
    );
}
