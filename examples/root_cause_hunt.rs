//! Root-cause hunting in an AMG-style application (Use Case 3 / Fig. 8).
//!
//! Scenario: a scientist's multigrid solver gives slightly different
//! answers run to run, and they want to know *which code path* to look
//! at. We run the AMG 2013 pattern (whose call paths mimic hypre's),
//! measure where in logical time the runs diverge, and rank the call
//! paths active there — the wildcard `MPI_Irecv`s inside the hypre-style
//! communication handles come out on top.
//!
//! Run with: `cargo run --release --example root_cause_hunt`

use anacin_x::prelude::*;

fn main() {
    // 1. Collect a sample of runs at full non-determinism.
    let cfg = CampaignConfig::new(Pattern::Amg2013, 8).runs(12);
    let result = run_campaign(&cfg).expect("campaign completes");
    println!(
        "ran {} executions of {} on {} processes; mean kernel distance {:.3}\n",
        cfg.runs,
        cfg.pattern,
        cfg.app.procs,
        result.mean_distance()
    );

    // 2. Localise the divergence along logical time.
    let rc = RootCauseConfig::default();
    let ranking = analyze(&result, &rc);
    println!(
        "windows with the most run-to-run disagreement: {:?} (of {})",
        ranking.high_slices, rc.slices
    );
    let series: Vec<(f64, f64)> = ranking
        .slice_divergence
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as f64, d))
        .collect();
    println!("{}", ascii::series_table(&series, "window", "divergence"));

    // 3. Rank the call paths active in those windows.
    println!("call paths in high-non-determinism windows (normalized frequency):");
    let items: Vec<(String, f64)> = ranking
        .entries
        .iter()
        .take(6)
        .map(|e| (e.stack.clone(), e.frequency))
        .collect();
    print!("{}", ascii::bar_chart(&items, 44));

    let top = ranking.top().expect("nonempty ranking");
    println!(
        "\nroot source of non-determinism: {}\n(the wildcard receive inside the hypre-style \
         communication handle — exactly where a developer should add ordering or switch to \
         deterministic reductions)",
        top.stack
    );
    assert!(
        top.leaf.to_ascii_lowercase().contains("recv"),
        "expected a receive on top"
    );
}
