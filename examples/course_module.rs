//! The full course module, end to end: Tables I–II, the comprehension
//! questions, and all three use cases executed with machine-checked
//! observations.
//!
//! This is what an instructor runs before a tutorial to confirm every
//! lesson reproduces on their machine.
//!
//! Run with: `cargo run --release --example course_module`
//! (add `-- --paper-scale` for the paper's 16/32-process, 20-run scale)

use anacin_x::prelude::*;

fn main() {
    println!("{}", table_i());
    println!("{}", table_ii());

    for level in Level::ALL {
        println!("Questions — {level}:");
        for q in questions_of(level) {
            println!("  ({}) {}", q.goal, q.prompt);
        }
    }
    println!();

    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let cfg = if paper_scale {
        LessonConfig::paper_scale()
    } else {
        LessonConfig::default()
    };
    println!(
        "running lessons at {} scale: {} / {} processes, {} runs per setting\n",
        if paper_scale { "paper" } else { "demo" },
        cfg.procs_small,
        cfg.procs_large,
        cfg.runs
    );

    let mut all_passed = true;
    for report in run_all(&cfg) {
        println!("=== {} ===", report.title);
        println!("{}", report.narrative);
        for c in &report.checks {
            println!(
                "[{}] {} — {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
            all_passed &= c.passed;
        }
        println!();
    }
    if all_passed {
        println!("all lesson observations reproduced ✔");
    } else {
        println!("some lesson observations FAILED ✘");
        std::process::exit(1);
    }
}
