//! Why non-determinism changes *science*, not just timing — the Enzo
//! story from the paper's introduction, reproduced in miniature.
//!
//! Workers contribute floating-point partial results; the root accumulates
//! them in message-arrival order. Because f32 addition is not associative,
//! runs of the *same program on the same inputs* produce different sums —
//! and a downstream threshold decision (here: "is the halo bound?") can
//! flip between runs, exactly like Enzo's galactic-halo counts.
//!
//! Run with: `cargo run --release --example numerical_reproducibility`

use anacin_numerics::prelude::*;

fn main() {
    let exp = ReductionExperiment {
        procs: 16,
        nd_percent: 100.0,
        runs: 20,
        ..Default::default()
    };
    let report = anacin_numerics::run(&exp);
    println!(
        "16-rank message race, 20 runs, {} distinct arrival orders at the root\n",
        report.distinct_orders
    );

    println!(
        "{:>14} {:>10} {:>14}   note",
        "reduction", "distinct", "spread"
    );
    for o in &report.outcomes {
        let note = match o.algorithm.as_str() {
            "sequential" => "naive wildcard-receive accumulation",
            "kahan" => "compensated; tighter but still order-sensitive",
            "pairwise" => "tree sum over arrival order",
            "sorted" => "canonical order -> bitwise reproducible",
            "promoted-f64" => "widen the accumulator",
            _ => "",
        };
        println!(
            "{:>14} {:>10} {:>14.6e}   {note}",
            o.algorithm, o.distinct, o.spread
        );
    }

    // The science-flipping decision: a threshold right inside the spread.
    let seq = report.outcome(Reduction::Sequential);
    let mid = {
        let lo = seq.results.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = seq
            .results
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        0.5 * (lo + hi)
    };
    let decisions: Vec<bool> = seq.results.iter().map(|&s| s > mid).collect();
    let yes = decisions.iter().filter(|&&d| d).count();
    println!(
        "\ndownstream decision `sum > {mid:.6}`: {yes} of {} runs say yes, {} say no",
        decisions.len(),
        decisions.len() - yes
    );
    if yes > 0 && yes < decisions.len() {
        println!(
            "→ the same simulation reaches different conclusions on different runs.\n\
             Fixes, in increasing cost: sorted/canonical reduction (bitwise reproducible),\n\
             f64 accumulation, or record-and-replay while debugging (see the\n\
             record_replay example)."
        );
    } else {
        println!("→ with this seed the threshold did not flip; the spread is still nonzero.");
    }

    // Connect back to the toolkit's metric: kernel distance correlates
    // with the numerical spread across the same runs.
    let quickcheck = anacin_numerics::run(&ReductionExperiment {
        nd_percent: 0.0,
        ..exp
    });
    assert_eq!(
        quickcheck.outcome(Reduction::Sequential).distinct,
        1,
        "at 0% ND every reduction is reproducible"
    );
    println!("\nat 0% injected non-determinism the sequential reduction is bitwise reproducible.");
}
