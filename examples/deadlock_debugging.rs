//! Deadlock pedagogy: the classic head-to-head synchronous exchange,
//! diagnosed and fixed.
//!
//! `MPI_Ssend` only completes when the receiver has matched the message.
//! Two ranks that both ssend before receiving therefore block forever —
//! on a real cluster this burns an allocation until the scheduler kills
//! it (the paper's related work cites a 10,000-compute-hour hunt for a
//! non-deterministic hang); in the simulator it is detected instantly and
//! reported with per-rank diagnostics.
//!
//! Run with: `cargo run --release --example deadlock_debugging`

use anacin_x::mpisim::engine::SimError;
use anacin_x::mpisim::timeline::Timeline;
use anacin_x::prelude::*;
use anacin_x::viz::gantt;

fn broken_exchange() -> Program {
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0))
        .ssend(Rank(1), Tag(0), 1 << 20)
        .recv(Rank(1), Tag(0).into());
    b.rank(Rank(1))
        .ssend(Rank(0), Tag(0), 1 << 20)
        .recv(Rank(0), Tag(0).into());
    b.build()
}

fn fixed_with_sendrecv() -> Program {
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0)).sendrecv(Rank(1), Rank(1), Tag(0), 1 << 20);
    b.rank(Rank(1)).sendrecv(Rank(0), Rank(0), Tag(0), 1 << 20);
    b.build()
}

fn fixed_with_ordering() -> Program {
    // Odd/even ordering: rank 0 sends first, rank 1 receives first.
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0))
        .ssend(Rank(1), Tag(0), 1 << 20)
        .recv(Rank(1), Tag(0).into());
    b.rank(Rank(1))
        .recv(Rank(0), Tag(0).into())
        .ssend(Rank(0), Tag(0), 1 << 20);
    b.build()
}

fn main() {
    println!("1. the broken exchange: both ranks MPI_Ssend before receiving\n");
    match simulate(&broken_exchange(), &SimConfig::deterministic()) {
        Err(SimError::Deadlock(report)) => {
            println!("   simulator verdict: DEADLOCK");
            println!("   {report}\n");
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }

    for (name, program) in [
        (
            "MPI_Sendrecv (nonblocking pair + waitall)",
            fixed_with_sendrecv(),
        ),
        (
            "call ordering (one rank receives first)",
            fixed_with_ordering(),
        ),
    ] {
        println!("2. fix via {name}:");
        let trace =
            simulate(&program, &SimConfig::deterministic()).expect("fixed version completes");
        assert_eq!(trace.meta.unmatched_messages, 0);
        println!(
            "   completes in {} simulated ns, {} messages exchanged",
            trace.meta.makespan.nanos(),
            trace.meta.messages
        );
        let tl = Timeline::of(&trace);
        print!("{}", gantt::gantt_ascii(&tl, 48));
        println!();
    }

    println!(
        "The simulator's deadlock report names each blocked rank and the exact\n\
         operation it is stuck on — try `anacin exercise fix-the-deadlock --solve`."
    );
}
