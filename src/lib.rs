//! # anacin-x
//!
//! A Rust reproduction of **ANACIN-X** — the toolkit behind *"A
//! Research-Based Course Module to Study Non-determinism in High
//! Performance Applications"* (Bell et al., IPPS 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`mpisim`] — discrete-event MPI point-to-point simulator with a
//!   non-determinism injection knob (the execution substrate);
//! * [`event_graph`] — event-graph models of executions;
//! * [`kernels`] — graph kernels and kernel distances (the ND proxy
//!   metric);
//! * [`miniapps`] — the packaged communication patterns (message race,
//!   AMG 2013, unstructured mesh, collectives);
//! * [`stats`] — violins, KDE, bootstrap, rank tests;
//! * [`core`] — campaigns, sweeps, and root-cause analysis;
//! * [`viz`] — ASCII and SVG figure renderers;
//! * [`course`] — the course module itself (Tables I–II, executable Use
//!   Cases 1–3).
//!
//! ## Quickstart
//!
//! ```
//! use anacin_x::core::prelude::*;
//! use anacin_x::miniapps::Pattern;
//!
//! // "Run the same application many times to collect a sample of
//! //  non-deterministic executions" (paper §III-B), then measure it.
//! let cfg = CampaignConfig::new(Pattern::MessageRace, 8).runs(10);
//! let result = run_campaign(&cfg).unwrap();
//! println!("measured non-determinism: {:.3}", result.mean_distance());
//! assert!(result.mean_distance() > 0.0);
//! ```

#![warn(missing_docs)]

pub use anacin_core as core;
pub use anacin_course as course;
pub use anacin_event_graph as event_graph;
pub use anacin_kernels as kernels;
pub use anacin_miniapps as miniapps;
pub use anacin_mpisim as mpisim;
pub use anacin_stats as stats;
pub use anacin_viz as viz;

/// One-stop prelude for examples and downstream experiments.
pub mod prelude {
    pub use anacin_core::prelude::*;
    pub use anacin_course::prelude::*;
    pub use anacin_event_graph::{EventGraph, LabelPolicy};
    pub use anacin_kernels::prelude::*;
    pub use anacin_miniapps::prelude::*;
    pub use anacin_mpisim::prelude::*;
    pub use anacin_stats::prelude::*;
    pub use anacin_viz::{ascii, svg};
}
