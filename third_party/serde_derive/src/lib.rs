//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! local `serde` stand-in's JSON [`Value`] data model, without pulling in
//! `syn`/`quote`: the item is parsed directly from its `TokenStream` (only
//! field and variant *names* are needed — concrete types are recovered by
//! inference at the use site) and the impl is emitted as a source string.
//!
//! Supported shapes — exactly what this workspace uses:
//! * named-field structs (including `#[serde(skip)]` fields, which are
//!   omitted on serialize and `Default`-filled on deserialize);
//! * tuple / newtype structs;
//! * unit structs;
//! * enums with unit variants, tuple variants and struct variants, encoded
//!   with serde's default externally-tagged convention
//!   (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`).
//!
//! Generics are intentionally unsupported and panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stand-in: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stand-in: generated invalid Deserialize impl")
}

// ------------------------------------------------------------------ model

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    UnitStruct {
        name: String,
    },
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ----------------------------------------------------------------- parser

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive stand-in: expected `struct` or `enum`, got {t:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive stand-in: expected item name, got {t:?}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde_derive stand-in: generic or lifetime parameters are not supported (`{name}`)"
        );
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: split_top_level(g.stream().into_iter().collect())
                    .iter()
                    .map(|c| parse_named_field(c))
                    .collect(),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: split_top_level(g.stream().into_iter().collect()).len(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            t => panic!("serde_derive stand-in: unexpected struct body for `{name}`: {t:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: split_top_level(g.stream().into_iter().collect())
                    .iter()
                    .map(|c| parse_variant(c))
                    .collect(),
            },
            t => panic!("serde_derive stand-in: expected enum body for `{name}`, got {t:?}"),
        },
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    }
}

/// Skip `#[...]` attributes (doc comments included) starting at `*i`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 2; // `#` + bracketed group
    }
}

/// Skip `pub` / `pub(...)` starting at `*i`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Split a field/variant list on top-level commas. Commas inside delimited
/// groups are invisible (groups are single tokens); commas inside generic
/// argument lists are masked by tracking `<`/`>` punct depth.
fn split_top_level(toks: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Consume field attributes at `*i`, reporting whether `#[serde(skip)]` was
/// among them. Any other `#[serde(...)]` content is rejected loudly rather
/// than silently ignored.
fn take_field_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                let args = match inner.get(1) {
                    Some(TokenTree::Group(a)) => a.stream().to_string(),
                    _ => String::new(),
                };
                if args.trim() == "skip" {
                    skip = true;
                } else {
                    panic!("serde_derive stand-in: unsupported attribute #[serde({args})]");
                }
            }
        }
        *i += 2;
    }
    skip
}

fn parse_named_field(chunk: &[TokenTree]) -> Field {
    let mut i = 0;
    let skip = take_field_attrs(chunk, &mut i);
    skip_vis(chunk, &mut i);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive stand-in: expected field name, got {t:?}"),
    };
    Field { name, skip }
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let mut i = 0;
    take_field_attrs(chunk, &mut i);
    skip_vis(chunk, &mut i);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive stand-in: expected variant name, got {t:?}"),
    };
    i += 1;
    let kind = match chunk.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantKind::Tuple(split_top_level(g.stream().into_iter().collect()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => VariantKind::Named(
            split_top_level(g.stream().into_iter().collect())
                .iter()
                .map(|c| parse_named_field(c))
                .collect(),
        ),
        _ => VariantKind::Unit,
    };
    Variant { name, kind }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{ \
               fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }} }}"
        ),
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "m.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ \
                     let mut m: ::serde::Map = ::std::vec::Vec::new(); \
                     {pushes} \
                     ::serde::Value::Object(m) }} }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{ \
               fn to_value(&self) -> ::serde::Value {{ \
                 ::serde::Serialize::to_value(&self.0) }} }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ \
                     ::serde::Value::Array(::std::vec![{elems}]) }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(v0) => ::serde::Value::Object(::std::vec![\
                           (\"{vn}\".to_string(), ::serde::Serialize::to_value(v0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds = (0..*n)
                            .map(|i| format!("v{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let elems = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(v{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                               (\"{vn}\".to_string(), \
                                ::serde::Value::Array(::std::vec![{elems}]))]),"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let pat = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "fm.push((\"{0}\".to_string(), \
                                   ::serde::Serialize::to_value({0})));",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{ \
                               let mut fm: ::serde::Map = ::std::vec::Vec::new(); \
                               {pushes} \
                               ::serde::Value::Object(::std::vec![\
                                 (\"{vn}\".to_string(), ::serde::Value::Object(fm))]) }},"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::UnitStruct { name } => format!("::std::result::Result::Ok({name})"),
        Item::NamedStruct { name, fields } => {
            let inits = named_field_inits(name, fields, "m");
            format!(
                "let m = match v.as_object() {{ \
                   ::std::option::Option::Some(m) => m, \
                   _ => return ::std::result::Result::Err(::serde::Error::custom(\
                          \"expected object for {name}\")) }}; \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Item::TupleStruct { name, arity } => {
            let elems = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let a = match v.as_array() {{ \
                   ::std::option::Option::Some(a) if a.len() == {arity} => a, \
                   _ => return ::std::result::Result::Err(::serde::Error::custom(\
                          \"expected {arity}-element array for {name}\")) }}; \
                 ::std::result::Result::Ok({name}({elems}))"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                           ::serde::Deserialize::from_value(inner)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match inner.as_array() {{ \
                               ::std::option::Option::Some(a) if a.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vn}({elems})), \
                               _ => ::std::result::Result::Err(::serde::Error::custom(\
                                      \"expected {n}-element array for {name}::{vn}\")) }},"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits = named_field_inits(&format!("{name}::{vn}"), fields, "fm");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match inner.as_object() {{ \
                               ::std::option::Option::Some(fm) => \
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }}), \
                               _ => ::std::result::Result::Err(::serde::Error::custom(\
                                      \"expected object for {name}::{vn}\")) }},"
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{ \
                   return match s {{ {unit_arms} \
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                       ::std::format!(\"unknown unit variant {{other}} for {name}\"))) }}; }} \
                 let m = match v.as_object() {{ \
                   ::std::option::Option::Some(m) if m.len() == 1 => m, \
                   _ => return ::std::result::Result::Err(::serde::Error::custom(\
                          \"expected variant object for {name}\")) }}; \
                 let inner = &m[0].1; \
                 let _ = inner; \
                 match m[0].0.as_str() {{ {tagged_arms} \
                   other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant {{other}} for {name}\"))) }}"
            )
        }
    };
    let name = match item {
        Item::UnitStruct { name }
        | Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
             {body} }} }}"
    )
}

/// Field initializers for a braced constructor: skip fields come from
/// `Default`, the rest from `map_get` lookups on `map_var`.
fn named_field_inits(ctor: &str, fields: &[Field], map_var: &str) -> String {
    let _ = ctor;
    fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default()", f.name)
            } else {
                format!(
                    "{0}: ::serde::Deserialize::from_value(::serde::map_get({map_var}, \"{0}\"))?",
                    f.name
                )
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}
