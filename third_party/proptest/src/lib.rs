//! Offline stand-in for `proptest`.
//!
//! Re-implements the slice of proptest this workspace uses: range/`Just`/
//! tuple/`prop_oneof!`/`prop::collection::vec` strategies with
//! `prop_filter`/`prop_map`, the [`proptest!`] macro, `prop_assert*!`, and a
//! deterministic runner. Unlike upstream, input generation is seeded purely
//! from the test name and case index, so a failure reproduces exactly on
//! re-run with no environment dependence.
//!
//! Failure persistence is kept: failing case seeds are appended as
//! `cc <seed-hex>` lines to `proptest-regressions/<file-stem>.txt` next to
//! the owning crate's `Cargo.toml`, and persisted seeds are replayed before
//! fresh cases on every run — commit those files to pin regressions.
//!
//! `PROPTEST_CASES` overrides the per-test case count.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    ///
    /// Upstream proptest separates value *trees* (for shrinking) from
    /// strategies; this stand-in drops shrinking and a strategy is just a
    /// seeded generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Keep only values satisfying `pred`; `reason` is reported if the
        /// filter rejects too many consecutive draws.
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut SmallRng) -> V>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            (self.0)(rng)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
    );

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "proptest stand-in: filter rejected 10000 consecutive values ({})",
                self.reason
            );
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V: Debug> Union<V> {
        /// Build from at least one alternative.
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
            Union(alternatives)
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            let i = rng.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length band for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Fresh cases to run per test (after replaying persisted seeds).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` fresh cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod runner {
    use super::ProptestConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::{Path, PathBuf};

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
        let stem = Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown");
        Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{stem}.txt"))
    }

    fn load_seeds(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                u64::from_str_radix(rest.trim().trim_start_matches("0x"), 16).ok()
            })
            .collect()
    }

    fn persist_seed(path: &Path, seed: u64) {
        if load_seeds(path).contains(&seed) {
            return;
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut text = std::fs::read_to_string(path).unwrap_or_else(|_| {
            "# Seeds for failing proptest cases, replayed before fresh cases on \
             every run.\n# Managed by the proptest stand-in; commit this file. \
             Lines: `cc <seed-hex>`.\n"
                .to_string()
        });
        if !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&format!("cc {seed:016x}\n"));
        let _ = std::fs::write(path, text);
    }

    fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// Drive one property test: replay persisted regression seeds, then run
    /// fresh cases with seeds derived from the test name and case index.
    ///
    /// `case` maps an RNG to `(input description, runnable body)` so the
    /// inputs can be reported when the body fails.
    pub fn run<C, G>(
        cfg: &ProptestConfig,
        manifest_dir: &str,
        source_file: &str,
        test_name: &str,
        mut case: G,
    ) where
        C: FnOnce(),
        G: FnMut(&mut SmallRng) -> (String, C),
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(cfg.cases);
        let reg_path = regression_path(manifest_dir, source_file);
        let base = fnv1a(test_name.as_bytes());
        let persisted = load_seeds(&reg_path)
            .into_iter()
            .map(|s| (true, s))
            .collect::<Vec<_>>();
        let fresh = (0..cases as u64).map(|i| {
            (
                false,
                base ^ i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
        });
        for (replayed, seed) in persisted.into_iter().chain(fresh) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (desc, body) = case(&mut rng);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                if !replayed {
                    persist_seed(&reg_path, seed);
                }
                let origin = if replayed {
                    "persisted regression seed"
                } else {
                    "seed now persisted"
                };
                panic!(
                    "proptest: {test_name} failed (seed {seed:016x}, {origin}, file {})\n  \
                     inputs: {desc}\n  cause: {}",
                    reg_path.display(),
                    payload_to_string(payload),
                );
            }
        }
    }
}

/// Assert inside a proptest body; the runner reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::runner::run(
                &__cfg,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__rng| {
                    let __vals = ($($crate::strategy::Strategy::generate(&$strat, __rng),)+);
                    let __desc = format!(
                        concat!("(", $(stringify!($arg), ", ",)+ ") = {:?}"),
                        &__vals,
                    );
                    let ($($arg,)+) = __vals;
                    (__desc, move || $body)
                },
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prop::` module tree.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = prop::collection::vec((0u32..6, 0u32..6).prop_filter("ne", |(a, b)| a != b), 0..30);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 30);
            assert!(v.iter().all(|&(a, b)| a < 6 && b < 6 && a != b));
        }
    }

    #[test]
    fn oneof_covers_alternatives() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn map_transforms() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generated args are in range and deterministic.
        #[test]
        fn macro_generates_in_range(x in 5u64..50, y in 0.0f64..=1.0, v in prop::collection::vec(0i32..4, 1..8)) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 4).count(), 0);
        }
    }
}
