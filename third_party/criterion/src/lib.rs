//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking API surface this workspace's `[[bench]]`
//! targets use — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`criterion_group!`]/[`criterion_main!`] — with a simple
//! mean-of-samples timer instead of upstream's statistical machinery. One
//! warm-up call, then `sample_size` timed calls; the mean per iteration is
//! printed per benchmark. Good enough to keep the bench binaries compiling
//! and runnable offline; absolute numbers are indicative only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measured quantity used to report throughput alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the body.
pub struct Bencher {
    samples: usize,
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Run `body` once for warm-up, then `samples` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(body());
        }
        self.last_mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples: samples.max(1),
        last_mean: None,
    };
    f(&mut b);
    match b.last_mean {
        Some(mean) => {
            let rate = throughput.and_then(|t| {
                let (n, unit) = match t {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                let secs = mean.as_secs_f64();
                (secs > 0.0).then(|| format!(" ({:.3e} {unit}/s)", n as f64 / secs))
            });
            println!(
                "bench {label}: {mean:?}/iter over {} samples{}",
                samples.max(1),
                rate.unwrap_or_default()
            );
        }
        None => println!("bench {label}: no measurement (iter was not called)"),
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, None, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Record the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I, ID: Into<BenchmarkId>, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function("direct", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
