//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` APIs it uses are re-implemented here: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`]
//! and [`rngs::SmallRng`] (xoshiro256++, seeded via SplitMix64 exactly like
//! upstream `rand` 0.8's `SmallRng` on 64-bit targets).
//!
//! Determinism is the whole point: for a given seed the stream is fixed
//! forever, which is what the simulator's bit-reproducibility tests and the
//! record/replay machinery rely on.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly over their full domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` without modulo bias (Lemire-style widening
/// multiply with rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected draw: retry to keep the distribution exactly uniform.
        if n.is_power_of_two() {
            return x & (n - 1);
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_range_impl!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        // Scale a 53-bit draw onto the closed interval.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over `T`'s full domain (`f64` is `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ seeded through
    /// SplitMix64 — the same construction upstream `rand` 0.8 uses for
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64_pub()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64_pub()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let z = r.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SmallRng::seed_from_u64(11);
        let sum: f64 = (0..50_000).map(|_| r.gen::<f64>()).sum();
        let mean = sum / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "got {mean}");
    }
}
