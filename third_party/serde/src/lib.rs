//! Offline stand-in for `serde`.
//!
//! The real `serde` is a generic data-model framework; the only format this
//! workspace ever serializes to is JSON (via `serde_json`). This stand-in
//! therefore collapses the data model to a JSON [`Value`] tree:
//!
//! * [`Serialize`] turns a value into a [`Value`];
//! * [`Deserialize`] reconstructs a value from a [`Value`];
//! * the `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//!   macros from the local `serde_derive` crate, which generate impls that
//!   follow serde's default (externally tagged) conventions, including
//!   `#[serde(skip)]`.
//!
//! `serde_json` (the sibling stand-in) supplies the text parser/printer.

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An ordered JSON object: insertion order is preserved so serialized
/// output is deterministic.
pub type Map = Vec<(String, Value)>;

/// A JSON value tree — the stand-in's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number with no fractional part, kept exact (covers all of
    /// `u64`/`i64` without float rounding).
    Int(i128),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered).
    Object(Map),
}

impl Value {
    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an `i128`, if an exact integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2e38 => Some(*f as i128),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b).copied(),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Look up `key` in an object map, yielding `Null` when absent (missing
/// optional fields deserialize as `None`).
pub fn map_get<'a>(map: &'a Map, key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the JSON [`Value`] model.
pub trait Serialize {
    /// This value as a JSON tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the JSON [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstruct a value from a JSON tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- numbers

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_int().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.fract() == 0.0 && self.is_finite() && self.abs() < 1e15 {
            // Keep integral floats exact; they round-trip via as_f64.
            Value::Float(*self)
        } else {
            Value::Float(*self)
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

// ------------------------------------------------------- other primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Upstream serde deserializes `&str` zero-copy from borrowed input;
    /// this stand-in has no borrowed path, so the string is leaked to get
    /// `'static`. Only static-config types (e.g. course goal tables) carry
    /// `&'static str` fields, so the leak is tiny and one-off.
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, got {v:?}"))
                })?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if a.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected {LEN}-tuple, got array of {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )+};
}

tuple_impls!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl<K: Serialize + ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::from_value(&some.to_value()).unwrap(),
            Some(5)
        );
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn nested_vectors() {
        let v: Vec<Vec<Option<(u32, u64)>>> = vec![vec![Some((1, 2)), None], vec![]];
        let back = Vec::<Vec<Option<(u32, u64)>>>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::String("x".into())).is_err());
    }

    #[test]
    fn map_get_missing_is_null() {
        let m: Map = vec![("a".to_string(), Value::Int(1))];
        assert!(map_get(&m, "b").is_null());
        assert_eq!(map_get(&m, "a").as_int(), Some(1));
    }
}
