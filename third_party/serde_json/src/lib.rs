//! Offline stand-in for `serde_json`.
//!
//! Provides the JSON text layer over the local `serde` stand-in's [`Value`]
//! model: [`to_string`], [`to_string_pretty`], [`from_str`], and the
//! [`Result`]/[`Error`] types the workspace's call sites expect. Output
//! follows `serde_json` conventions (compact `{"k":v}`, pretty with
//! two-space indent), floats print via Rust's shortest-round-trip `Display`,
//! and non-finite floats serialize as `null` like upstream.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON error (serialization never fails here; parsing can).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse(s)?;
    T::from_value(&v).map_err(Error::from)
}

/// Parse JSON text into a [`Value`] tree.
pub fn from_str_value(s: &str) -> Result<Value> {
    parse(s)
}

// ---------------------------------------------------------------- printer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep integral floats recognizable as floats, as upstream does.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries: serde::Map = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        _ => {
                            return Err(Error::new(format!("invalid escape at byte {}", self.pos)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u16::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u32);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Pair(u32, String);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        One(Wrapper),
        Two(u32, u32),
        Shaped { label: String, weight: f64 },
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Record {
        name: String,
        id: Wrapper,
        kinds: Vec<Kind>,
        maybe: Option<(u32, u64)>,
        #[serde(skip)]
        cache: Vec<u32>,
    }

    fn sample() -> Record {
        Record {
            name: "hello \"world\"\n".to_string(),
            id: Wrapper(7),
            kinds: vec![
                Kind::Plain,
                Kind::One(Wrapper(3)),
                Kind::Two(1, 2),
                Kind::Shaped {
                    label: "s".to_string(),
                    weight: 2.5,
                },
            ],
            maybe: Some((1, u64::MAX)),
            cache: vec![9, 9, 9],
        }
    }

    #[test]
    fn compact_roundtrip() {
        let r = sample();
        let json = to_string(&r).unwrap();
        let back: Record = from_str(&json).unwrap();
        // `cache` is #[serde(skip)]: dropped on the wire, Default on return.
        assert_eq!(back.cache, Vec::<u32>::new());
        let mut expect = r.clone();
        expect.cache.clear();
        assert_eq!(back, expect);
    }

    #[test]
    fn pretty_roundtrip() {
        let r = sample();
        let json = to_string_pretty(&r).unwrap();
        assert!(json.contains('\n'));
        let back: Record = from_str(&json).unwrap();
        assert_eq!(back.name, r.name);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Wrapper(5)).unwrap(), "5");
        assert_eq!(from_str::<Wrapper>("5").unwrap(), Wrapper(5));
    }

    #[test]
    fn tuple_struct_is_array() {
        let json = to_string(&Pair(1, "x".to_string())).unwrap();
        assert_eq!(json, "[1,\"x\"]");
        assert_eq!(from_str::<Pair>(&json).unwrap(), Pair(1, "x".to_string()));
    }

    #[test]
    fn enum_encodings_match_serde_conventions() {
        assert_eq!(to_string(&Kind::Plain).unwrap(), "\"Plain\"");
        assert_eq!(to_string(&Kind::One(Wrapper(3))).unwrap(), "{\"One\":3}");
        assert_eq!(to_string(&Kind::Two(1, 2)).unwrap(), "{\"Two\":[1,2]}");
        let shaped = to_string(&Kind::Shaped {
            label: "a".to_string(),
            weight: 1.0,
        })
        .unwrap();
        assert_eq!(shaped, "{\"Shaped\":{\"label\":\"a\",\"weight\":1.0}}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "tab\t quote\" back\\ newline\n unicode \u{1F600} ctl\u{01}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_parses() {
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn large_integers_are_exact() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(json, u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&json).unwrap(), u64::MAX);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("[1,").is_err());
        assert!(from_str::<u32>("1 garbage").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n\t3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
