//! Structural statistics of an event graph: node/edge composition, the
//! rank-to-rank traffic matrix, and wildcard exposure — the quick
//! profile an instructor shows before any kernel mathematics.

use crate::graph::{EventGraph, NodeKind};
use anacin_mpisim::types::Rank;
use serde::{Deserialize, Serialize};

/// Sparse rank-to-rank traffic: one `(src, dst, messages)` entry per
/// channel that carried at least one message, sorted by `(src, dst)`.
///
/// The former dense `Vec<Vec<u64>>` cost O(ranks²) memory regardless of
/// how many channels were actually used — 128 MiB of mostly-zero counters
/// at 4096 ranks. Real patterns touch a sparse subset (stencils: ~4·n
/// channels; even all-to-all costs only one entry per *used* channel), so
/// the sparse form is never larger and usually orders of magnitude
/// smaller. [`TrafficMatrix::to_dense`] recovers the dense form for
/// small-scale rendering and equality tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    world_size: u32,
    /// Sorted by `(src, dst)`; every count is nonzero.
    entries: Vec<(u32, u32, u64)>,
}

impl TrafficMatrix {
    /// Count matched messages per channel. Nodes are rank-major, so each
    /// destination's sources are gathered into one reused buffer — peak
    /// transient memory is one rank's receive count, not the whole graph.
    fn of(g: &EventGraph) -> TrafficMatrix {
        let mut entries: Vec<(u32, u32, u64)> = Vec::new();
        let mut srcs: Vec<u32> = Vec::new();
        for d in 0..g.world_size() {
            srcs.clear();
            for id in g.rank_nodes(Rank(d)) {
                if let NodeKind::Recv { src, .. } = g.node(id).kind {
                    srcs.push(src.0);
                }
            }
            srcs.sort_unstable();
            let mut i = 0;
            while i < srcs.len() {
                let s = srcs[i];
                let j = srcs[i..].partition_point(|&x| x == s) + i;
                entries.push((s, d, (j - i) as u64));
                i = j;
            }
        }
        // Entries were appended grouped by destination; re-sort the (far
        // smaller) aggregated list into (src, dst) order.
        entries.sort_unstable();
        TrafficMatrix {
            world_size: g.world_size(),
            entries,
        }
    }

    /// Ranks in the job.
    pub fn world_size(&self) -> u32 {
        self.world_size
    }

    /// Messages matched from `src` to `dst`.
    pub fn get(&self, src: Rank, dst: Rank) -> u64 {
        self.entries
            .binary_search_by_key(&(src.0, dst.0), |&(s, d, _)| (s, d))
            .map(|i| self.entries[i].2)
            .unwrap_or(0)
    }

    /// Iterate nonzero channels as `(src, dst, messages)`, in
    /// `(src, dst)` order.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, Rank, u64)> + '_ {
        self.entries.iter().map(|&(s, d, m)| (Rank(s), Rank(d), m))
    }

    /// Number of channels that carried at least one message.
    pub fn nonzero_channels(&self) -> usize {
        self.entries.len()
    }

    /// Total matched messages.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, _, m)| m).sum()
    }

    /// Materialise the dense `traffic[src][dst]` form (small worlds only —
    /// this is the representation the sparse form replaced).
    pub fn to_dense(&self) -> Vec<Vec<u64>> {
        let n = self.world_size as usize;
        let mut dense = vec![vec![0u64; n]; n];
        for &(s, d, m) in &self.entries {
            dense[s as usize][d as usize] = m;
        }
        dense
    }
}

/// A structural profile of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Ranks in the job.
    pub world_size: u32,
    /// Total nodes.
    pub nodes: usize,
    /// Send events.
    pub sends: usize,
    /// Receive events.
    pub recvs: usize,
    /// Receives posted with a wildcard.
    pub wildcard_recvs: usize,
    /// Program-order edges.
    pub program_edges: usize,
    /// Message edges.
    pub message_edges: usize,
    /// Messages matched per `(src, dst)` channel, sparse.
    pub traffic: TrafficMatrix,
}

impl GraphStats {
    /// Compute the profile of a graph.
    pub fn of(g: &EventGraph) -> GraphStats {
        let mut sends = 0;
        let mut recvs = 0;
        let mut wildcard_recvs = 0;
        for id in g.node_ids() {
            match g.node(id).kind {
                NodeKind::Send { .. } => sends += 1,
                NodeKind::Recv { wildcard, .. } => {
                    recvs += 1;
                    if wildcard {
                        wildcard_recvs += 1;
                    }
                }
                _ => {}
            }
        }
        let (program_edges, message_edges) = crate::algo::edge_kind_counts(g);
        GraphStats {
            world_size: g.world_size(),
            nodes: g.node_count(),
            sends,
            recvs,
            wildcard_recvs,
            program_edges,
            message_edges,
            traffic: TrafficMatrix::of(g),
        }
    }

    /// Fraction of receives that are wildcards — the program's *race
    /// exposure* (1.0 = every receive can race).
    pub fn wildcard_fraction(&self) -> f64 {
        if self.recvs == 0 {
            0.0
        } else {
            self.wildcard_recvs as f64 / self.recvs as f64
        }
    }

    /// Messages received by `rank` (column sum of the traffic matrix).
    pub fn inbound(&self, rank: Rank) -> u64 {
        self.traffic
            .iter()
            .filter(|&(_, d, _)| d == rank)
            .map(|(_, _, m)| m)
            .sum()
    }

    /// Messages sent by `rank` (row sum of the traffic matrix).
    pub fn outbound(&self, rank: Rank) -> u64 {
        self.traffic
            .iter()
            .filter(|&(s, _, _)| s == rank)
            .map(|(_, _, m)| m)
            .sum()
    }

    /// The busiest channel `(src, dst, messages)`. Ties resolve to the
    /// lowest `(src, dst)`, as in the dense row-major scan this replaced.
    pub fn hottest_channel(&self) -> Option<(Rank, Rank, u64)> {
        let mut best: Option<(Rank, Rank, u64)> = None;
        for (s, d, m) in self.traffic.iter() {
            if best.map(|(_, _, bm)| m > bm).unwrap_or(true) {
                best = Some((s, d, m));
            }
        }
        best
    }

    /// Render a compact text profile. Small worlds get the full dense
    /// matrix; past 64 ranks (where a dense table would be unreadable and
    /// quadratic in size) the nonzero channels are summarised instead.
    pub fn render(&self) -> String {
        let mut s = format!(
            "ranks={} nodes={} sends={} recvs={} (wildcard {:.0}%) edges: {} program + {} message\n",
            self.world_size,
            self.nodes,
            self.sends,
            self.recvs,
            self.wildcard_fraction() * 100.0,
            self.program_edges,
            self.message_edges
        );
        if self.world_size <= 64 {
            s.push_str("traffic (rows = sender, cols = receiver):\n");
            s.push_str("     ");
            for d in 0..self.world_size {
                s.push_str(&format!("{d:>5}"));
            }
            s.push('\n');
            for (r, row) in self.traffic.to_dense().iter().enumerate() {
                s.push_str(&format!("{r:>5}"));
                for &m in row {
                    s.push_str(&format!("{m:>5}"));
                }
                s.push('\n');
            }
        } else {
            s.push_str(&format!(
                "traffic: {} message(s) over {} active channel(s)\n",
                self.traffic.total(),
                self.traffic.nonzero_channels()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn race_stats() -> GraphStats {
        let mut b = ProgramBuilder::new(4);
        for r in 1..4 {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..4 {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        GraphStats::of(&EventGraph::from_trace(&t))
    }

    #[test]
    fn counts_are_consistent() {
        let s = race_stats();
        assert_eq!(s.world_size, 4);
        assert_eq!(s.sends, 3);
        assert_eq!(s.recvs, 3);
        assert_eq!(s.wildcard_recvs, 3);
        assert_eq!(s.wildcard_fraction(), 1.0);
        assert_eq!(s.message_edges, 3);
        assert_eq!(s.nodes, 14);
    }

    #[test]
    fn traffic_matrix_rows_and_columns() {
        let s = race_stats();
        assert_eq!(s.inbound(Rank(0)), 3);
        assert_eq!(s.outbound(Rank(0)), 0);
        for r in 1..4 {
            assert_eq!(s.outbound(Rank(r)), 1);
            assert_eq!(s.inbound(Rank(r)), 0);
        }
        let (_, dst, m) = s.hottest_channel().unwrap();
        assert_eq!(dst, Rank(0));
        assert_eq!(m, 1);
    }

    #[test]
    fn render_contains_matrix() {
        let s = race_stats();
        let text = s.render();
        assert!(text.contains("wildcard 100%"));
        assert!(text.contains("traffic"));
        assert_eq!(text.lines().count(), 2 + 1 + 4);
    }

    #[test]
    fn sparse_traffic_equals_dense_accumulation() {
        // Equality oracle: accumulate the dense matrix the way the old
        // code did (one cell increment per receive node) and compare to
        // the sparse form, cell for cell, plus the derived row/column
        // sums.
        let n = 6u32;
        let mut b = ProgramBuilder::new(n);
        for r in 0..n {
            let mut rb = b.rank(Rank(r));
            let mut reqs = Vec::new();
            for _ in 0..n - 1 {
                reqs.push(rb.irecv_any(TagSpec::Any));
            }
            for peer in 0..n {
                if peer != r {
                    reqs.push(rb.isend(Rank(peer), Tag(0), 1));
                }
            }
            rb.waitall(reqs);
        }
        let p = b.build();
        for seed in 0..4 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            let g = EventGraph::from_trace(&t);
            let s = GraphStats::of(&g);
            let mut dense = vec![vec![0u64; n as usize]; n as usize];
            for id in g.node_ids() {
                if let NodeKind::Recv { src, .. } = g.node(id).kind {
                    dense[src.index()][g.node(id).rank.index()] += 1;
                }
            }
            assert_eq!(s.traffic.to_dense(), dense, "seed {seed}");
            for r in 0..n {
                let row: u64 = dense[r as usize].iter().sum();
                let col: u64 = dense.iter().map(|row| row[r as usize]).sum();
                assert_eq!(s.outbound(Rank(r)), row, "seed {seed} rank {r}");
                assert_eq!(s.inbound(Rank(r)), col, "seed {seed} rank {r}");
                for d in 0..n {
                    assert_eq!(
                        s.traffic.get(Rank(r), Rank(d)),
                        dense[r as usize][d as usize]
                    );
                }
            }
            assert_eq!(s.traffic.total(), s.message_edges as u64);
        }
    }

    #[test]
    fn large_world_render_is_sparse_and_small() {
        // 128 ranks in a ring: the dense table would be 128 rows; the
        // sparse summary is one line.
        let n = 128u32;
        let mut b = ProgramBuilder::new(n);
        for r in 0..n {
            let next = Rank((r + 1) % n);
            let mut rb = b.rank(Rank(r));
            let recv = rb.irecv_any(TagSpec::Any);
            let send = rb.isend(next, Tag(0), 1);
            rb.waitall(vec![recv, send]);
        }
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        let s = GraphStats::of(&EventGraph::from_trace(&t));
        assert_eq!(s.traffic.nonzero_channels(), n as usize);
        assert_eq!(s.traffic.total(), n as u64);
        let text = s.render();
        assert!(text.contains("128 active channel(s)"));
        assert!(text.lines().count() <= 3);
    }

    #[test]
    fn no_communication_graph() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).compute(5);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        let s = GraphStats::of(&EventGraph::from_trace(&t));
        assert_eq!(s.wildcard_fraction(), 0.0);
        assert!(s.hottest_channel().is_none());
        assert_eq!(s.message_edges, 0);
    }
}
