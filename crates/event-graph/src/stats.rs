//! Structural statistics of an event graph: node/edge composition, the
//! rank-to-rank traffic matrix, and wildcard exposure — the quick
//! profile an instructor shows before any kernel mathematics.

use crate::graph::{EventGraph, NodeKind};
use anacin_mpisim::types::Rank;
use serde::{Deserialize, Serialize};

/// A structural profile of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Ranks in the job.
    pub world_size: u32,
    /// Total nodes.
    pub nodes: usize,
    /// Send events.
    pub sends: usize,
    /// Receive events.
    pub recvs: usize,
    /// Receives posted with a wildcard.
    pub wildcard_recvs: usize,
    /// Program-order edges.
    pub program_edges: usize,
    /// Message edges.
    pub message_edges: usize,
    /// `traffic[src][dst]` = messages matched from src to dst.
    pub traffic: Vec<Vec<u64>>,
}

impl GraphStats {
    /// Compute the profile of a graph.
    pub fn of(g: &EventGraph) -> GraphStats {
        let n = g.world_size() as usize;
        let mut sends = 0;
        let mut recvs = 0;
        let mut wildcard_recvs = 0;
        let mut traffic = vec![vec![0u64; n]; n];
        for id in g.node_ids() {
            match g.node(id).kind {
                NodeKind::Send { .. } => sends += 1,
                NodeKind::Recv { src, wildcard } => {
                    recvs += 1;
                    if wildcard {
                        wildcard_recvs += 1;
                    }
                    traffic[src.index()][g.node(id).rank.index()] += 1;
                }
                _ => {}
            }
        }
        let (program_edges, message_edges) = crate::algo::edge_kind_counts(g);
        GraphStats {
            world_size: g.world_size(),
            nodes: g.node_count(),
            sends,
            recvs,
            wildcard_recvs,
            program_edges,
            message_edges,
            traffic,
        }
    }

    /// Fraction of receives that are wildcards — the program's *race
    /// exposure* (1.0 = every receive can race).
    pub fn wildcard_fraction(&self) -> f64 {
        if self.recvs == 0 {
            0.0
        } else {
            self.wildcard_recvs as f64 / self.recvs as f64
        }
    }

    /// Messages received by `rank` (column sum of the traffic matrix).
    pub fn inbound(&self, rank: Rank) -> u64 {
        self.traffic.iter().map(|row| row[rank.index()]).sum()
    }

    /// Messages sent by `rank` (row sum of the traffic matrix).
    pub fn outbound(&self, rank: Rank) -> u64 {
        self.traffic[rank.index()].iter().sum()
    }

    /// The busiest channel `(src, dst, messages)`.
    pub fn hottest_channel(&self) -> Option<(Rank, Rank, u64)> {
        let mut best = None;
        for (s, row) in self.traffic.iter().enumerate() {
            for (d, &m) in row.iter().enumerate() {
                if m > 0 && best.map(|(_, _, bm)| m > bm).unwrap_or(true) {
                    best = Some((Rank(s as u32), Rank(d as u32), m));
                }
            }
        }
        best
    }

    /// Render a compact text profile.
    pub fn render(&self) -> String {
        let mut s = format!(
            "ranks={} nodes={} sends={} recvs={} (wildcard {:.0}%) edges: {} program + {} message\n",
            self.world_size,
            self.nodes,
            self.sends,
            self.recvs,
            self.wildcard_fraction() * 100.0,
            self.program_edges,
            self.message_edges
        );
        s.push_str("traffic (rows = sender, cols = receiver):\n");
        s.push_str("     ");
        for d in 0..self.world_size {
            s.push_str(&format!("{d:>5}"));
        }
        s.push('\n');
        for (r, row) in self.traffic.iter().enumerate() {
            s.push_str(&format!("{r:>5}"));
            for &m in row {
                s.push_str(&format!("{m:>5}"));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn race_stats() -> GraphStats {
        let mut b = ProgramBuilder::new(4);
        for r in 1..4 {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..4 {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        GraphStats::of(&EventGraph::from_trace(&t))
    }

    #[test]
    fn counts_are_consistent() {
        let s = race_stats();
        assert_eq!(s.world_size, 4);
        assert_eq!(s.sends, 3);
        assert_eq!(s.recvs, 3);
        assert_eq!(s.wildcard_recvs, 3);
        assert_eq!(s.wildcard_fraction(), 1.0);
        assert_eq!(s.message_edges, 3);
        assert_eq!(s.nodes, 14);
    }

    #[test]
    fn traffic_matrix_rows_and_columns() {
        let s = race_stats();
        assert_eq!(s.inbound(Rank(0)), 3);
        assert_eq!(s.outbound(Rank(0)), 0);
        for r in 1..4 {
            assert_eq!(s.outbound(Rank(r)), 1);
            assert_eq!(s.inbound(Rank(r)), 0);
        }
        let (_, dst, m) = s.hottest_channel().unwrap();
        assert_eq!(dst, Rank(0));
        assert_eq!(m, 1);
    }

    #[test]
    fn render_contains_matrix() {
        let s = race_stats();
        let text = s.render();
        assert!(text.contains("wildcard 100%"));
        assert!(text.contains("traffic"));
        assert_eq!(text.lines().count(), 2 + 1 + 4);
    }

    #[test]
    fn no_communication_graph() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).compute(5);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        let s = GraphStats::of(&EventGraph::from_trace(&t));
        assert_eq!(s.wildcard_fraction(), 0.0);
        assert!(s.hottest_channel().is_none());
        assert_eq!(s.message_edges, 0);
    }
}
