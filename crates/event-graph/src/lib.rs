//! # anacin-event-graph
//!
//! Event-graph models of message-passing executions, following the paper's
//! definition (§II-A): "nodes of an event graph correspond to MPI function
//! calls and edges correspond to on-process or inter-process
//! communication", with time encoded logically.
//!
//! The crate provides:
//!
//! * [`graph::EventGraph`] — the graph itself, built from an
//!   `anacin_mpisim::Trace`;
//! * [`lamport`] — logical clocks, `slice` — logical-time windows used by
//!   root-cause analysis;
//! * [`label`] — node-label policies consumed by `anacin-kernels`;
//! * [`algo`] — topological order, happens-before, critical path;
//! * [`export`] — DOT / GraphML / JSON.
//!
//! ```
//! use anacin_mpisim::prelude::*;
//! use anacin_event_graph::graph::EventGraph;
//!
//! let mut b = ProgramBuilder::new(2);
//! b.rank(Rank(0)).send(Rank(1), Tag(0), 8);
//! b.rank(Rank(1)).recv_any(TagSpec::Any);
//! let trace = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
//! let g = EventGraph::from_trace(&trace);
//! assert_eq!(g.node_count(), 6);
//! assert_eq!(g.message_edge_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod artifact;
pub mod diff;
pub mod explain;
pub mod export;
pub mod graph;
pub mod label;
pub mod lamport;
pub mod slice;
pub mod stats;

pub use graph::{EdgeKind, EventGraph, Node, NodeId, NodeKind};
pub use label::LabelPolicy;
