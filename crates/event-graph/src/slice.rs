//! Logical-time slicing of event graphs.
//!
//! Root-cause analysis (paper §III-C2) compares *regions* of executions:
//! the event graph is cut into windows of logical time, each window of two
//! runs is compared, and the call paths active in the most-divergent
//! windows are ranked as likely root sources of non-determinism. This
//! module produces those windows.

use crate::graph::{EventGraph, NodeId};
use crate::lamport::lamport_times;

/// One logical-time window of an event graph.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Index of the slice along logical time.
    pub index: usize,
    /// Inclusive lower Lamport bound.
    pub start: u64,
    /// Exclusive upper Lamport bound.
    pub end: u64,
    /// Nodes whose Lamport timestamp falls in `[start, end)`.
    pub nodes: Vec<NodeId>,
}

impl Slice {
    /// Number of nodes in the slice.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the slice holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Partition a graph into `k`-wide logical-time slices.
///
/// Every node appears in exactly one slice; slice boundaries depend only
/// on Lamport times, so the same program position lands in the same slice
/// across runs — which is what makes per-slice comparison meaningful.
///
/// # Panics
/// Panics when `width == 0`.
pub fn slice_by_lamport(g: &EventGraph, width: u64) -> Vec<Slice> {
    assert!(width > 0, "slice width must be positive");
    let ts = lamport_times(g);
    let max = ts.iter().copied().max().unwrap_or(0);
    let n_slices = (max / width + 1) as usize;
    let mut slices: Vec<Slice> = (0..n_slices)
        .map(|i| Slice {
            index: i,
            start: i as u64 * width,
            end: (i as u64 + 1) * width,
            nodes: Vec::new(),
        })
        .collect();
    for id in g.node_ids() {
        let s = (ts[id.index()] / width) as usize;
        slices[s].nodes.push(id);
    }
    slices
}

/// Partition a graph into exactly `count` slices of equal logical width
/// (the last absorbs any remainder).
///
/// # Panics
/// Panics when `count == 0`.
pub fn slice_into(g: &EventGraph, count: usize) -> Vec<Slice> {
    assert!(count > 0, "slice count must be positive");
    let ts = lamport_times(g);
    let max = ts.iter().copied().max().unwrap_or(0);
    let width = (max / count as u64 + 1).max(1);
    let mut slices: Vec<Slice> = (0..count)
        .map(|i| Slice {
            index: i,
            start: i as u64 * width,
            end: if i + 1 == count {
                u64::MAX
            } else {
                (i as u64 + 1) * width
            },
            nodes: Vec::new(),
        })
        .collect();
    for id in g.node_ids() {
        let s = ((ts[id.index()] / width) as usize).min(count - 1);
        slices[s].nodes.push(id);
    }
    slices
}

/// Partition a graph into exactly `count` windows by *relative program
/// position*: rank `r`'s `i`-th event lands in window
/// `⌊i · count / len(r)⌋`.
///
/// Unlike [`slice_into`], window membership depends only on the program,
/// not on message timing, so two runs of the same program put every node
/// in the same window. Root-cause analysis uses this: per-window
/// differences between runs are then exactly the label differences
/// (which receive matched which sender), with no boundary-jitter noise.
///
/// # Panics
/// Panics when `count == 0`.
pub fn slice_by_position(g: &EventGraph, count: usize) -> Vec<Slice> {
    assert!(count > 0, "slice count must be positive");
    let mut slices: Vec<Slice> = (0..count)
        .map(|i| Slice {
            index: i,
            start: i as u64,
            end: i as u64 + 1,
            nodes: Vec::new(),
        })
        .collect();
    for r in 0..g.world_size() {
        let ids: Vec<NodeId> = g.rank_nodes(anacin_mpisim::types::Rank(r)).collect();
        let len = ids.len().max(1);
        for (i, id) in ids.into_iter().enumerate() {
            let w = (i * count / len).min(count - 1);
            slices[w].nodes.push(id);
        }
    }
    slices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EventGraph;
    use anacin_mpisim::prelude::*;

    fn chain_graph(iters: u32) -> EventGraph {
        // Two ranks ping-ponging `iters` times: a long logical chain.
        let mut b = ProgramBuilder::new(2);
        for _ in 0..iters {
            b.rank(Rank(0))
                .send(Rank(1), Tag(0), 1)
                .recv(Rank(1), Tag(1).into());
            b.rank(Rank(1))
                .recv(Rank(0), Tag(0).into())
                .send(Rank(0), Tag(1), 1);
        }
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn slices_partition_all_nodes() {
        let g = chain_graph(10);
        for width in [1, 2, 5, 100] {
            let slices = slice_by_lamport(&g, width);
            let total: usize = slices.iter().map(Slice::len).sum();
            assert_eq!(total, g.node_count(), "width {width}");
            // Nodes appear exactly once.
            let mut seen = vec![false; g.node_count()];
            for s in &slices {
                for id in &s.nodes {
                    assert!(!seen[id.index()]);
                    seen[id.index()] = true;
                }
            }
        }
    }

    #[test]
    fn slice_bounds_respected() {
        let g = chain_graph(8);
        let ts = crate::lamport::lamport_times(&g);
        for s in slice_by_lamport(&g, 3) {
            for id in &s.nodes {
                let t = ts[id.index()];
                assert!(t >= s.start && t < s.end);
            }
        }
    }

    #[test]
    fn slice_into_gives_requested_count() {
        let g = chain_graph(12);
        for count in [1, 2, 4, 7] {
            let slices = slice_into(&g, count);
            assert_eq!(slices.len(), count);
            let total: usize = slices.iter().map(Slice::len).sum();
            assert_eq!(total, g.node_count());
        }
    }

    #[test]
    fn more_iterations_mean_more_nonempty_slices() {
        let short = chain_graph(2);
        let long = chain_graph(20);
        let ne = |g: &EventGraph| {
            slice_by_lamport(g, 4)
                .iter()
                .filter(|s| !s.is_empty())
                .count()
        };
        assert!(ne(&long) > ne(&short));
    }

    #[test]
    fn width_one_slices_group_by_exact_lamport_time() {
        let g = chain_graph(3);
        let ts = crate::lamport::lamport_times(&g);
        for s in slice_by_lamport(&g, 1) {
            for id in &s.nodes {
                assert_eq!(ts[id.index()], s.start);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let g = chain_graph(1);
        slice_by_lamport(&g, 0);
    }

    #[test]
    fn position_slices_partition_and_are_run_invariant() {
        use anacin_mpisim::prelude::*;
        let build = |seed: u64| {
            let mut b = ProgramBuilder::new(4);
            for r in 1..4 {
                b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
            }
            for _ in 1..4 {
                b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
            }
            let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            EventGraph::from_trace(&t)
        };
        let g1 = build(1);
        let g2 = build(2);
        for count in [1usize, 3, 8] {
            let s1 = slice_by_position(&g1, count);
            let s2 = slice_by_position(&g2, count);
            let total: usize = s1.iter().map(Slice::len).sum();
            assert_eq!(total, g1.node_count());
            // Identical membership across runs.
            for (a, b) in s1.iter().zip(&s2) {
                assert_eq!(a.nodes, b.nodes, "count={count}");
            }
        }
    }

    #[test]
    fn position_slices_keep_program_order() {
        let g = chain_graph(6);
        let slices = slice_by_position(&g, 4);
        // Within each rank, earlier windows hold earlier events.
        use std::collections::HashMap;
        let mut window_of: HashMap<u32, usize> = HashMap::new();
        for s in &slices {
            for id in &s.nodes {
                window_of.insert(id.0, s.index);
            }
        }
        for r in 0..2u32 {
            let ids: Vec<_> = g.rank_nodes(anacin_mpisim::types::Rank(r)).collect();
            for w in ids.windows(2) {
                assert!(window_of[&w[0].0] <= window_of[&w[1].0]);
            }
        }
    }
}
