//! Lamport logical clocks over event graphs.
//!
//! The paper's event graphs "encode time by treating on-process
//! communication as logically ordered (i.e., logical time)". The Lamport
//! timestamp of a node is `1 + max(timestamps of its predecessors)`; it is
//! the canonical logical time used by the slicing machinery
//! ([`crate::slice`]) that localises *where* in an execution runs diverge.

use crate::algo::topo_sort;
use crate::graph::{EventGraph, NodeId};

/// Lamport timestamps for every node, indexable by `NodeId::index`.
///
/// Sources (each rank's `Init`) have timestamp 0.
pub fn lamport_times(g: &EventGraph) -> Vec<u64> {
    let order = topo_sort(g).expect("event graphs are DAGs");
    let mut ts = vec![0u64; g.node_count()];
    for &u in &order {
        for &(v, _) in g.out_edges(u) {
            ts[v.index()] = ts[v.index()].max(ts[u.index()] + 1);
        }
    }
    ts
}

/// The maximum Lamport timestamp (the logical makespan).
pub fn logical_makespan(g: &EventGraph) -> u64 {
    lamport_times(g).into_iter().max().unwrap_or(0)
}

/// Check the defining Lamport property: every edge strictly increases the
/// timestamp. Returns the number of edges checked.
pub fn verify_lamport(g: &EventGraph, ts: &[u64]) -> Result<usize, (NodeId, NodeId)> {
    let mut checked = 0;
    for (a, b, _) in g.edges() {
        if ts[a.index()] >= ts[b.index()] {
            return Err((a, b));
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EventGraph;
    use anacin_mpisim::prelude::*;

    fn race(n: u32, nd: f64, seed: u64) -> EventGraph {
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn inits_are_sources_with_time_zero() {
        let g = race(4, 0.0, 0);
        let ts = lamport_times(&g);
        for r in 0..4 {
            assert_eq!(ts[g.id_at(Rank(r), 0).index()], 0);
        }
    }

    #[test]
    fn edges_strictly_increase() {
        for seed in 0..5 {
            let g = race(6, 100.0, seed);
            let ts = lamport_times(&g);
            let checked = verify_lamport(&g, &ts).unwrap();
            assert_eq!(checked, g.edge_count());
        }
    }

    #[test]
    fn recv_after_send_in_logical_time() {
        let g = race(4, 0.0, 0);
        let ts = lamport_times(&g);
        for (a, b, k) in g.edges() {
            if k == crate::graph::EdgeKind::Message {
                assert!(ts[a.index()] < ts[b.index()]);
            }
        }
    }

    #[test]
    fn logical_makespan_reflects_chain_length() {
        // Rank 0's chain is init + (n-1) recvs + finalize, and each recv
        // depends on a send with timestamp >= 1, so the makespan is at
        // least the chain length.
        let n = 5;
        let g = race(n, 0.0, 0);
        let m = logical_makespan(&g);
        assert!(m >= n as u64, "makespan {m} too small");
    }

    #[test]
    fn verify_detects_violations() {
        let g = race(3, 0.0, 0);
        let mut ts = lamport_times(&g);
        // Corrupt one timestamp.
        let victim = g.id_at(Rank(0), 1);
        ts[victim.index()] = 0;
        assert!(verify_lamport(&g, &ts).is_err());
    }
}
