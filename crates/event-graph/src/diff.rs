//! Structural diff between two runs of the same program.
//!
//! The kernel distance is a *scalar* proxy; sometimes a student (or a
//! debugger) wants the concrete answer: *which receives matched a
//! different sender?* Two event graphs built from the same program share
//! their node set, so the diff is a positional comparison of receive
//! nodes — effectively a textual "race report" complementing Figure 4.

use crate::graph::{EventGraph, NodeId, NodeKind};
use anacin_mpisim::types::Rank;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One receive that matched differently in the two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecvDiff {
    /// The receiving rank.
    pub rank: Rank,
    /// The receive's index within its rank (program position).
    pub rank_idx: u32,
    /// Matched sender in run A.
    pub src_a: Rank,
    /// Matched sender in run B.
    pub src_b: Rank,
}

/// The diff between two runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunDiff {
    /// Receives that matched different senders, in (rank, position) order.
    pub differing: Vec<RecvDiff>,
    /// Total receives compared.
    pub total_receives: usize,
}

impl RunDiff {
    /// True when the two runs matched every message identically.
    pub fn identical(&self) -> bool {
        self.differing.is_empty()
    }

    /// Fraction of receives that diverged, in `[0, 1]`.
    pub fn divergence_fraction(&self) -> f64 {
        if self.total_receives == 0 {
            0.0
        } else {
            self.differing.len() as f64 / self.total_receives as f64
        }
    }

    /// Ranks that observed at least one divergent receive.
    pub fn affected_ranks(&self) -> Vec<Rank> {
        let mut ranks: Vec<Rank> = self.differing.iter().map(|d| d.rank).collect();
        ranks.sort();
        ranks.dedup();
        ranks
    }
}

impl fmt::Display for RunDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} of {} receives matched different senders ({:.1}%)",
            self.differing.len(),
            self.total_receives,
            self.divergence_fraction() * 100.0
        )?;
        for d in &self.differing {
            writeln!(
                f,
                "  {} recv#{}: run A matched {}, run B matched {}",
                d.rank, d.rank_idx, d.src_a, d.src_b
            )?;
        }
        Ok(())
    }
}

/// Error when diffing graphs of different programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureMismatch(pub String);

impl fmt::Display for StructureMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graphs are not runs of the same program: {}", self.0)
    }
}

impl std::error::Error for StructureMismatch {}

/// Diff two runs of the same program.
///
/// Fails with [`StructureMismatch`] when the graphs do not share their
/// node skeleton (different programs or different configurations).
pub fn diff(a: &EventGraph, b: &EventGraph) -> Result<RunDiff, StructureMismatch> {
    if a.world_size() != b.world_size() {
        return Err(StructureMismatch(format!(
            "world sizes differ: {} vs {}",
            a.world_size(),
            b.world_size()
        )));
    }
    if a.node_count() != b.node_count() {
        return Err(StructureMismatch(format!(
            "node counts differ: {} vs {}",
            a.node_count(),
            b.node_count()
        )));
    }
    let mut differing = Vec::new();
    let mut total = 0usize;
    for i in 0..a.node_count() {
        let id = NodeId(i as u32);
        let na = a.node(id);
        let nb = b.node(id);
        match (&na.kind, &nb.kind) {
            (NodeKind::Recv { src: sa, .. }, NodeKind::Recv { src: sb, .. }) => {
                total += 1;
                if sa != sb {
                    differing.push(RecvDiff {
                        rank: na.rank,
                        rank_idx: na.rank_idx,
                        src_a: *sa,
                        src_b: *sb,
                    });
                }
            }
            (ka, kb) if ka.mnemonic() != kb.mnemonic() => {
                return Err(StructureMismatch(format!(
                    "node {i} is {} in A but {} in B",
                    ka.mnemonic(),
                    kb.mnemonic()
                )));
            }
            _ => {}
        }
    }
    Ok(RunDiff {
        differing,
        total_receives: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn race(seed: u64) -> EventGraph {
        let mut b = ProgramBuilder::new(5);
        for r in 1..5 {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..5 {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn identical_runs_diff_empty() {
        let a = race(3);
        let b = race(3);
        let d = diff(&a, &b).unwrap();
        assert!(d.identical());
        assert_eq!(d.divergence_fraction(), 0.0);
        assert_eq!(d.total_receives, 4);
        assert!(d.affected_ranks().is_empty());
    }

    #[test]
    fn reordered_runs_report_the_racy_receives() {
        let a = race(0);
        let mut other = None;
        for seed in 1..60 {
            let g = race(seed);
            if g.match_order(Rank(0)) != a.match_order(Rank(0)) {
                other = Some(g);
                break;
            }
        }
        let b = other.expect("a reordering seed exists");
        let d = diff(&a, &b).unwrap();
        assert!(!d.identical());
        // All divergent receives are on the racing root.
        assert_eq!(d.affected_ranks(), vec![Rank(0)]);
        // A permutation differs in at least two positions.
        assert!(d.differing.len() >= 2);
        assert!(d.divergence_fraction() > 0.0);
        let text = d.to_string();
        assert!(text.contains("matched different senders"));
        assert!(text.contains("rank 0 recv#"));
    }

    #[test]
    fn different_programs_are_rejected() {
        let a = race(0);
        let mut b = ProgramBuilder::new(5);
        b.rank(Rank(1)).send(Rank(0), Tag(0), 1);
        b.rank(Rank(0)).recv_any(TagSpec::Any);
        let g = EventGraph::from_trace(&simulate(&b.build(), &SimConfig::deterministic()).unwrap());
        let err = diff(&a, &g).unwrap_err();
        assert!(err.to_string().contains("not runs of the same program"));
        // Different world size.
        let mut b2 = ProgramBuilder::new(3);
        b2.rank(Rank(1)).send(Rank(0), Tag(0), 1);
        b2.rank(Rank(0)).recv_any(TagSpec::Any);
        let g2 =
            EventGraph::from_trace(&simulate(&b2.build(), &SimConfig::deterministic()).unwrap());
        assert!(diff(&a, &g2).is_err());
    }
}
