//! Causal-chain explanation: *why* does one event happen before another?
//!
//! `explain(g, a, b)` returns a concrete happens-before chain from `a` to
//! `b` — the alternation of program steps and messages that carries the
//! causality. The debugging question it answers is the one students ask
//! in Use Case 3: "this receive completed late; show me the chain of
//! messages that forced it".

use crate::graph::{EdgeKind, EventGraph, NodeId};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One hop in a causal chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Edge origin.
    pub from: NodeId,
    /// Edge target.
    pub to: NodeId,
    /// Program-order step or message.
    pub kind: EdgeKind,
}

/// A causal chain from one event to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalChain {
    /// The hops, in order from source to target.
    pub hops: Vec<Hop>,
}

impl CausalChain {
    /// Number of message edges in the chain (the "communication depth" of
    /// the dependency).
    pub fn message_hops(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| h.kind == EdgeKind::Message)
            .count()
    }

    /// Render the chain as readable lines.
    pub fn render(&self, g: &EventGraph) -> String {
        let mut s = String::new();
        if self.hops.is_empty() {
            return "the two events are the same\n".to_string();
        }
        let first = self.hops[0].from;
        let n = g.node(first);
        let _ = writeln!(
            s,
            "start: rank {} event #{} ({})",
            n.rank.0,
            n.rank_idx,
            n.kind.mnemonic()
        );
        for h in &self.hops {
            let to = g.node(h.to);
            let verb = match h.kind {
                EdgeKind::Program => "then, on the same rank",
                EdgeKind::Message => "which sends a message received by",
            };
            let _ = writeln!(
                s,
                "  {verb}: rank {} event #{} ({})",
                to.rank.0,
                to.rank_idx,
                to.kind.mnemonic()
            );
        }
        s
    }
}

/// Find the causal chain from `a` to `b` with the fewest hops (BFS over
/// directed edges). Returns `None` when `b` does not causally depend on
/// `a` — itself a useful answer: the two events are concurrent.
pub fn explain(g: &EventGraph, a: NodeId, b: NodeId) -> Option<CausalChain> {
    if a == b {
        return Some(CausalChain { hops: Vec::new() });
    }
    let n = g.node_count();
    let mut pred: Vec<Option<(NodeId, EdgeKind)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[a.index()] = true;
    queue.push_back(a);
    'search: while let Some(u) = queue.pop_front() {
        for &(v, kind) in g.out_edges(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                pred[v.index()] = Some((u, kind));
                if v == b {
                    break 'search;
                }
                queue.push_back(v);
            }
        }
    }
    if !seen[b.index()] {
        return None;
    }
    let mut hops = Vec::new();
    let mut cur = b;
    while cur != a {
        let (p, kind) = pred[cur.index()].expect("path reconstructed");
        hops.push(Hop {
            from: p,
            to: cur,
            kind,
        });
        cur = p;
    }
    hops.reverse();
    Some(CausalChain { hops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn relay_graph() -> EventGraph {
        // 0 sends to 1, 1 relays to 2.
        let mut b = ProgramBuilder::new(3);
        b.rank(Rank(0)).send(Rank(1), Tag(0), 1);
        b.rank(Rank(1))
            .recv(Rank(0), Tag(0).into())
            .send(Rank(2), Tag(1), 1);
        b.rank(Rank(2)).recv(Rank(1), Tag(1).into());
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn chain_through_a_relay() {
        let g = relay_graph();
        let send0 = g.id_at(Rank(0), 1);
        let recv2 = g.id_at(Rank(2), 1);
        let chain = explain(&g, send0, recv2).expect("causally related");
        assert_eq!(chain.message_hops(), 2, "{:?}", chain.hops);
        let text = chain.render(&g);
        assert!(text.contains("start: rank 0"));
        assert!(text.contains("received by: rank 2"));
        // Chain is connected and directed.
        for w in chain.hops.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(chain.hops.first().unwrap().from, send0);
        assert_eq!(chain.hops.last().unwrap().to, recv2);
    }

    #[test]
    fn concurrent_events_have_no_chain() {
        let g = relay_graph();
        // rank 0's init and rank 2's init are concurrent.
        assert!(explain(&g, g.id_at(Rank(0), 0), g.id_at(Rank(2), 0)).is_none());
        // Reverse direction of a real dependency is also None.
        assert!(explain(&g, g.id_at(Rank(2), 1), g.id_at(Rank(0), 1)).is_none());
    }

    #[test]
    fn same_event_is_the_empty_chain() {
        let g = relay_graph();
        let id = g.id_at(Rank(1), 1);
        let chain = explain(&g, id, id).unwrap();
        assert!(chain.hops.is_empty());
        assert!(chain.render(&g).contains("same"));
    }

    #[test]
    fn bfs_finds_a_minimal_hop_chain() {
        // On one rank, the chain along program order from init to
        // finalize has exactly len-1 hops.
        let mut b = ProgramBuilder::new(1);
        b.rank(Rank(0)).compute(1).compute(1);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        let g = EventGraph::from_trace(&t);
        let chain = explain(&g, g.id_at(Rank(0), 0), g.id_at(Rank(0), 1)).unwrap();
        assert_eq!(chain.hops.len(), 1);
        assert_eq!(chain.message_hops(), 0);
    }
}
