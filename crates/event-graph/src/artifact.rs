//! Store codec for [`EventGraph`]: the `anacin_store::Artifact`
//! implementation.
//!
//! Edges are written in the graph's canonical construction order — every
//! program edge (by source node, ascending), then every message edge (in
//! trace order, i.e. by receive node, ascending) — and decoding replays
//! that list through the same CSR builder the constructor uses, so a
//! decoded graph is field-for-field identical to the one built from the
//! trace, per-node adjacency order included.

use crate::graph::{build_csr_pair, EdgeKind, EventGraph, Node, NodeKind};
use anacin_mpisim::stack::CallStackId;
use anacin_mpisim::types::{Rank, SimTime};
use anacin_store::{Artifact, ArtifactKind, ByteReader, ByteWriter, WireError};

const TAG_INIT: u8 = 0;
const TAG_FINALIZE: u8 = 1;
const TAG_SEND: u8 = 2;
const TAG_RECV: u8 = 3;

fn encode_node(n: &Node, w: &mut ByteWriter) {
    w.u32(n.rank.0);
    w.u32(n.rank_idx);
    match n.kind {
        NodeKind::Init => w.u8(TAG_INIT),
        NodeKind::Finalize => w.u8(TAG_FINALIZE),
        NodeKind::Send { dst } => {
            w.u8(TAG_SEND);
            w.u32(dst.0);
        }
        NodeKind::Recv { src, wildcard } => {
            w.u8(TAG_RECV);
            w.u32(src.0);
            w.bool(wildcard);
        }
    }
    w.u64(n.time.0);
    w.u32(n.stack.0);
}

fn decode_node(r: &mut ByteReader<'_>) -> Result<Node, WireError> {
    let rank = Rank(r.u32()?);
    let rank_idx = r.u32()?;
    let kind = match r.u8()? {
        TAG_INIT => NodeKind::Init,
        TAG_FINALIZE => NodeKind::Finalize,
        TAG_SEND => NodeKind::Send {
            dst: Rank(r.u32()?),
        },
        TAG_RECV => NodeKind::Recv {
            src: Rank(r.u32()?),
            wildcard: r.bool()?,
        },
        t => return Err(WireError::BadTag(t)),
    };
    Ok(Node {
        rank,
        rank_idx,
        kind,
        time: SimTime(r.u64()?),
        stack: CallStackId(r.u32()?),
    })
}

impl Artifact for EventGraph {
    const KIND: ArtifactKind = ArtifactKind::Graph;

    fn encode_into(&self, w: &mut ByteWriter) {
        w.u32(self.world_size);
        w.seq_len(self.nodes.len());
        for n in &self.nodes {
            encode_node(n, w);
        }
        w.seq_len(self.rank_base.len());
        for &b in &self.rank_base {
            w.u32(b);
        }
        // Canonical edge order (see module docs): program edges by source
        // node, then message edges by receive node — exactly the order the
        // graph builder emitted them in.
        let program: Vec<(u32, u32)> = self
            .node_ids()
            .flat_map(|id| {
                self.out_edges(id)
                    .iter()
                    .filter(|(_, k)| *k == EdgeKind::Program)
                    .map(move |&(to, _)| (id.0, to.0))
            })
            .collect();
        let message: Vec<(u32, u32)> = self
            .node_ids()
            .flat_map(|id| {
                self.in_edges(id)
                    .iter()
                    .filter(|(_, k)| *k == EdgeKind::Message)
                    .map(move |&(from, _)| (from.0, id.0))
            })
            .collect();
        w.seq_len(program.len());
        for (f, t) in program {
            w.u32(f);
            w.u32(t);
        }
        w.seq_len(message.len());
        for (f, t) in message {
            w.u32(f);
            w.u32(t);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let world_size = r.u32()?;
        let n_nodes = r.seq_len(17)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            nodes.push(decode_node(r)?);
        }
        let n_base = r.seq_len(4)?;
        let mut rank_base = Vec::with_capacity(n_base);
        for _ in 0..n_base {
            rank_base.push(r.u32()?);
        }
        let n_program = r.seq_len(8)?;
        let mut edges = Vec::with_capacity(n_program);
        for _ in 0..n_program {
            edges.push((r.u32()?, r.u32()?, EdgeKind::Program));
        }
        let n_message = r.seq_len(8)?;
        edges.reserve(n_message);
        for _ in 0..n_message {
            edges.push((r.u32()?, r.u32()?, EdgeKind::Message));
        }
        // Reject out-of-range endpoints before the CSR builder indexes
        // degree arrays with them.
        for &(f, t, _) in &edges {
            if f as usize >= n_nodes || t as usize >= n_nodes {
                return Err(WireError::BadLength(f.max(t) as u64));
            }
        }
        let (out, incoming) = build_csr_pair(n_nodes, &edges);
        Ok(EventGraph {
            world_size,
            nodes,
            rank_base,
            out,
            incoming,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn graph(seed: u64) -> EventGraph {
        let n = 4u32;
        let mut b = ProgramBuilder::new(n);
        for r in 0..n {
            let mut rb = b.rank(Rank(r));
            let mut reqs = Vec::new();
            for _ in 0..n - 1 {
                reqs.push(rb.irecv_any(TagSpec::Any));
            }
            for peer in 0..n {
                if peer != r {
                    reqs.push(rb.isend(Rank(peer), Tag(0), 1));
                }
            }
            rb.waitall(reqs);
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn graph_round_trips_bit_exactly() {
        for seed in 0..5 {
            let g = graph(seed);
            let bytes = g.to_wire();
            let back = EventGraph::from_wire(&bytes).unwrap();
            assert_eq!(back, g, "seed {seed}");
            assert_eq!(back.to_wire(), bytes, "seed {seed}");
        }
    }

    #[test]
    fn adjacency_order_survives_round_trip() {
        let g = graph(2);
        let back = EventGraph::from_wire(&g.to_wire()).unwrap();
        for id in g.node_ids() {
            assert_eq!(g.out_edges(id), back.out_edges(id));
            assert_eq!(g.in_edges(id), back.in_edges(id));
        }
    }

    #[test]
    fn truncated_graph_fails_to_decode() {
        let bytes = graph(0).to_wire();
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(EventGraph::from_wire(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let g = graph(0);
        let mut bytes = g.to_wire();
        // The last 8 bytes are the final message edge's (from, to); point
        // `to` far out of range.
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(EventGraph::from_wire(&bytes).is_err());
    }
}
