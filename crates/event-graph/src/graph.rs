//! The event-graph data structure.
//!
//! An *event graph* (paper §II-A) is a graph model of an execution's
//! communication: nodes are MPI events, intra-process edges encode logical
//! (program) order, and inter-process edges encode matched point-to-point
//! messages. Event graphs encode time logically, so two runs of the same
//! program produce structurally comparable graphs whose differences are
//! exactly the communication differences between the runs.

use anacin_mpisim::stack::CallStackId;
use anacin_mpisim::trace::{EventId, EventKind, Trace};
use anacin_mpisim::types::{Rank, SimTime};
use serde::{Deserialize, Serialize};

/// Dense node identifier within one [`EventGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The modelled event classes (the paper's node colours: green =
/// start/end, blue = send, red = receive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Process start (`MPI_Init`).
    Init,
    /// Process end (`MPI_Finalize`).
    Finalize,
    /// Message injection.
    Send {
        /// Destination rank.
        dst: Rank,
    },
    /// Message receipt.
    Recv {
        /// Matched source rank.
        src: Rank,
        /// Whether the receive was posted with a wildcard.
        wildcard: bool,
    },
}

impl NodeKind {
    /// Short mnemonic: "init" / "finalize" / "send" / "recv".
    pub fn mnemonic(&self) -> &'static str {
        match self {
            NodeKind::Init => "init",
            NodeKind::Finalize => "finalize",
            NodeKind::Send { .. } => "send",
            NodeKind::Recv { .. } => "recv",
        }
    }

    /// True for receive nodes.
    pub fn is_recv(&self) -> bool {
        matches!(self, NodeKind::Recv { .. })
    }

    /// True for send nodes.
    pub fn is_send(&self) -> bool {
        matches!(self, NodeKind::Send { .. })
    }
}

/// One node of the event graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Rank the event occurred on.
    pub rank: Rank,
    /// Index of the event within its rank (program order).
    pub rank_idx: u32,
    /// Event class.
    pub kind: NodeKind,
    /// Simulated completion time.
    pub time: SimTime,
    /// Call path that issued the event.
    pub stack: CallStackId,
}

/// Edge classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Logical precedence between consecutive events on one rank.
    Program,
    /// A matched point-to-point message (send → recv).
    Message,
}

/// One adjacency direction in CSR (compressed sparse row) form:
/// `targets[offsets[i]..offsets[i+1]]` are node `i`'s edges, in insertion
/// order. Two flat allocations total, where the previous
/// `Vec<Vec<(NodeId, EdgeKind)>>` layout paid one per node — and the flat
/// buffers are what the artifact store serializes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct CsrEdges {
    pub(crate) offsets: Vec<u32>,
    pub(crate) targets: Vec<(NodeId, EdgeKind)>,
}

impl CsrEdges {
    #[inline]
    fn row(&self, i: usize) -> &[(NodeId, EdgeKind)] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Build the out/in CSR pair from an edge list. Per-node edge order is the
/// edge-list order restricted to that node — callers control ordering by
/// ordering the list (the graph builder emits all program edges, then
/// message edges in trace order, matching the historical nested-`Vec`
/// layout exactly).
pub(crate) fn build_csr_pair(n: usize, edges: &[(u32, u32, EdgeKind)]) -> (CsrEdges, CsrEdges) {
    let mut out_offsets = vec![0u32; n + 1];
    let mut in_offsets = vec![0u32; n + 1];
    for &(f, t, _) in edges {
        out_offsets[f as usize + 1] += 1;
        in_offsets[t as usize + 1] += 1;
    }
    for i in 0..n {
        out_offsets[i + 1] += out_offsets[i];
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut out_cursor: Vec<u32> = out_offsets[..n].to_vec();
    let mut in_cursor: Vec<u32> = in_offsets[..n].to_vec();
    let filler = (NodeId(0), EdgeKind::Program);
    let mut out_targets = vec![filler; edges.len()];
    let mut in_targets = vec![filler; edges.len()];
    for &(f, t, k) in edges {
        let oc = &mut out_cursor[f as usize];
        out_targets[*oc as usize] = (NodeId(t), k);
        *oc += 1;
        let ic = &mut in_cursor[t as usize];
        in_targets[*ic as usize] = (NodeId(f), k);
        *ic += 1;
    }
    (
        CsrEdges {
            offsets: out_offsets,
            targets: out_targets,
        },
        CsrEdges {
            offsets: in_offsets,
            targets: in_targets,
        },
    )
}

/// The event graph of one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventGraph {
    pub(crate) world_size: u32,
    pub(crate) nodes: Vec<Node>,
    /// `rank_base[r]` is the NodeId offset of rank r's first event.
    pub(crate) rank_base: Vec<u32>,
    pub(crate) out: CsrEdges,
    pub(crate) incoming: CsrEdges,
}

impl EventGraph {
    /// Build the event graph of a trace.
    ///
    /// Nodes are created for every traced event, rank-major, so node ids
    /// are stable across runs of the same program: two runs differ only in
    /// their *message edges* (and in which receives matched which sources),
    /// which is precisely the communication non-determinism the kernel
    /// distance measures.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_trace_with_metrics(trace, None)
    }

    /// [`EventGraph::from_trace`], additionally flushing node/edge counts
    /// into `metrics` (`graph/nodes`, `graph/edges`, `graph/message_edges`)
    /// when a registry is supplied. Construction is unaffected.
    pub fn from_trace_with_metrics(
        trace: &Trace,
        metrics: Option<&anacin_obs::MetricsRegistry>,
    ) -> Self {
        // Per-graph wall time (nests as `campaign/graph/build` inside the
        // campaign runner), so traced timelines show each run's build cost
        // rather than one opaque stage total.
        let _span = metrics.map(|m| m.span("build"));
        let world = trace.world_size();
        let mut nodes = Vec::with_capacity(trace.total_events());
        let mut rank_base = Vec::with_capacity(world as usize);
        for r in 0..world {
            rank_base
                .push(u32::try_from(nodes.len()).expect("event graph exceeds u32 node-id space"));
            for (i, ev) in trace.rank_events(Rank(r)).iter().enumerate() {
                let kind = match ev.kind {
                    EventKind::Init => NodeKind::Init,
                    EventKind::Finalize => NodeKind::Finalize,
                    EventKind::Send { dst, .. } => NodeKind::Send { dst },
                    EventKind::Recv { src, wildcard, .. } => NodeKind::Recv { src, wildcard },
                };
                nodes.push(Node {
                    rank: Rank(r),
                    rank_idx: i as u32,
                    kind,
                    time: ev.time,
                    stack: ev.stack,
                });
            }
        }
        let n = nodes.len();
        let _ = u32::try_from(n).expect("event graph exceeds u32 node-id space");
        let id_of = |eid: EventId| NodeId(rank_base[eid.rank.index()] + eid.idx);
        // Streaming two-pass CSR construction: the trace itself is the
        // edge list. Pass 1 counts per-node degrees, pass 2 fills targets
        // through cursors — emitting edges in the canonical order (every
        // program edge first, rank by rank, then message edges in
        // trace-iteration order), so per-node adjacency is bit-identical
        // to materialising the ordered edge list and feeding it through
        // `build_csr_pair`, without ever allocating that list (a third of
        // the build's former peak memory at tens of millions of events).
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for r in 0..world {
            let base = rank_base[r as usize] as usize;
            let len = trace.rank_events(Rank(r)).len();
            for i in 0..len.saturating_sub(1) {
                out_offsets[base + i + 1] += 1;
                in_offsets[base + i + 2] += 1;
            }
        }
        for (id, ev) in trace.iter() {
            if let EventKind::Recv { send_event, .. } = ev.kind {
                out_offsets[id_of(send_event).index() + 1] += 1;
                in_offsets[id_of(id).index() + 1] += 1;
            }
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let edge_count = out_offsets[n] as usize;
        let mut out_cursor: Vec<u32> = out_offsets[..n].to_vec();
        let mut in_cursor: Vec<u32> = in_offsets[..n].to_vec();
        let filler = (NodeId(0), EdgeKind::Program);
        let mut out_targets = vec![filler; edge_count];
        let mut in_targets = vec![filler; edge_count];
        let mut push = |f: u32, t: u32, k: EdgeKind| {
            let oc = &mut out_cursor[f as usize];
            out_targets[*oc as usize] = (NodeId(t), k);
            *oc += 1;
            let ic = &mut in_cursor[t as usize];
            in_targets[*ic as usize] = (NodeId(f), k);
            *ic += 1;
        };
        for r in 0..world {
            let base = rank_base[r as usize];
            let len = trace.rank_events(Rank(r)).len() as u32;
            for i in 0..len.saturating_sub(1) {
                push(base + i, base + i + 1, EdgeKind::Program);
            }
        }
        for (id, ev) in trace.iter() {
            if let EventKind::Recv { send_event, .. } = ev.kind {
                push(id_of(send_event).0, id_of(id).0, EdgeKind::Message);
            }
        }
        let (out, incoming) = (
            CsrEdges {
                offsets: out_offsets,
                targets: out_targets,
            },
            CsrEdges {
                offsets: in_offsets,
                targets: in_targets,
            },
        );
        let graph = EventGraph {
            world_size: world,
            nodes,
            rank_base,
            out,
            incoming,
        };
        if let Some(m) = metrics {
            m.counter("graph/nodes").add(graph.node_count() as u64);
            m.counter("graph/edges").add(graph.edge_count() as u64);
            m.counter("graph/message_edges")
                .add(graph.message_edge_count() as u64);
        }
        graph
    }

    /// Number of ranks in the traced job.
    pub fn world_size(&self) -> u32 {
        self.world_size
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (program + message).
    pub fn edge_count(&self) -> usize {
        self.out.targets.len()
    }

    /// Number of message edges.
    pub fn message_edge_count(&self) -> usize {
        self.out
            .targets
            .iter()
            .filter(|(_, k)| *k == EdgeKind::Message)
            .count()
    }

    /// A node by id.
    ///
    /// # Panics
    /// Panics on a foreign id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes, indexable by `NodeId::index`.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterate node ids `0..n`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        self.out.row(id.index())
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        self.incoming.row(id.index())
    }

    /// All edges as `(from, to, kind)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeKind)> + '_ {
        (0..self.nodes.len()).flat_map(move |i| {
            self.out
                .row(i)
                .iter()
                .map(move |&(to, kind)| (NodeId(i as u32), to, kind))
        })
    }

    /// The node id of rank `r`'s `i`-th event.
    pub fn id_at(&self, rank: Rank, idx: u32) -> NodeId {
        NodeId(self.rank_base[rank.index()] + idx)
    }

    /// Node ids of one rank, in program order.
    pub fn rank_nodes(&self, rank: Rank) -> impl Iterator<Item = NodeId> + '_ {
        let base = self.rank_base[rank.index()];
        let end = self
            .rank_base
            .get(rank.index() + 1)
            .copied()
            .unwrap_or(self.nodes.len() as u32);
        (base..end).map(NodeId)
    }

    /// The sequence of matched sources observed by `rank`'s receives — the
    /// graph-side view of [`Trace::match_order`].
    pub fn match_order(&self, rank: Rank) -> Vec<Rank> {
        self.rank_nodes(rank)
            .filter_map(|id| match self.node(id).kind {
                NodeKind::Recv { src, .. } => Some(src),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn race_graph(n: u32, nd: f64, seed: u64) -> EventGraph {
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn structure_of_message_race() {
        let g = race_graph(4, 0.0, 0);
        // rank 0: init + 3 recvs + finalize = 5; ranks 1..3: init+send+finalize = 3 each.
        assert_eq!(g.node_count(), 5 + 3 * 3);
        assert_eq!(g.world_size(), 4);
        assert_eq!(g.message_edge_count(), 3);
        // Program edges: (5-1) + 3*(3-1) = 10.
        assert_eq!(g.edge_count(), 10 + 3);
    }

    #[test]
    fn node_ids_stable_across_runs() {
        let g1 = race_graph(6, 100.0, 1);
        let g2 = race_graph(6, 100.0, 2);
        assert_eq!(g1.node_count(), g2.node_count());
        for (a, b) in g1.nodes().iter().zip(g2.nodes().iter()) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.rank_idx, b.rank_idx);
            assert_eq!(a.kind.mnemonic(), b.kind.mnemonic());
        }
    }

    #[test]
    fn message_edges_reflect_matching() {
        let g = race_graph(4, 0.0, 0);
        for (from, to, kind) in g.edges() {
            if kind == EdgeKind::Message {
                assert!(g.node(from).kind.is_send());
                match g.node(to).kind {
                    NodeKind::Recv { src, .. } => assert_eq!(src, g.node(from).rank),
                    ref k => panic!("message edge into {k:?}"),
                }
            }
        }
    }

    #[test]
    fn rank_nodes_cover_graph() {
        let g = race_graph(5, 0.0, 0);
        let total: usize = (0..5).map(|r| g.rank_nodes(Rank(r)).count()).sum();
        assert_eq!(total, g.node_count());
        // Last rank's range ends at node_count.
        let last: Vec<_> = g.rank_nodes(Rank(4)).collect();
        assert_eq!(last.last().unwrap().index(), g.node_count() - 1);
    }

    #[test]
    fn match_order_matches_trace() {
        let mut b = ProgramBuilder::new(4);
        for r in 1..4 {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..4 {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, 9)).unwrap();
        let g = EventGraph::from_trace(&t);
        assert_eq!(g.match_order(Rank(0)), t.match_order(Rank(0)));
    }

    #[test]
    fn in_and_out_edges_are_consistent() {
        let g = race_graph(6, 100.0, 3);
        let mut out_pairs: Vec<_> = g.edges().collect();
        let mut in_pairs: Vec<_> = g
            .node_ids()
            .flat_map(|to| {
                g.in_edges(to)
                    .iter()
                    .map(move |&(from, kind)| (from, to, kind))
            })
            .collect();
        out_pairs.sort();
        in_pairs.sort();
        assert_eq!(out_pairs, in_pairs);
    }

    /// One adjacency row per node in the pre-CSR layout.
    type NaiveAdjacency = Vec<Vec<(NodeId, EdgeKind)>>;

    /// The pre-CSR adjacency layout, rebuilt independently: one `Vec` per
    /// node, program edges pushed first (rank by rank), then message edges
    /// in trace-iteration order.
    fn naive_layout(t: &Trace) -> (NaiveAdjacency, NaiveAdjacency) {
        let world = t.world_size();
        let mut rank_base = Vec::new();
        let mut n = 0u32;
        for r in 0..world {
            rank_base.push(n);
            n += t.rank_events(Rank(r)).len() as u32;
        }
        let id_of =
            |eid: anacin_mpisim::trace::EventId| NodeId(rank_base[eid.rank.index()] + eid.idx);
        let mut out = vec![Vec::new(); n as usize];
        let mut inc = vec![Vec::new(); n as usize];
        for r in 0..world {
            let base = rank_base[r as usize];
            let len = t.rank_events(Rank(r)).len() as u32;
            for i in 0..len.saturating_sub(1) {
                out[(base + i) as usize].push((NodeId(base + i + 1), EdgeKind::Program));
                inc[(base + i + 1) as usize].push((NodeId(base + i), EdgeKind::Program));
            }
        }
        for (id, ev) in t.iter() {
            if let anacin_mpisim::trace::EventKind::Recv { send_event, .. } = ev.kind {
                let s = id_of(send_event);
                let d = id_of(id);
                out[s.index()].push((d, EdgeKind::Message));
                inc[d.index()].push((s, EdgeKind::Message));
            }
        }
        (out, inc)
    }

    #[test]
    fn csr_layout_equals_naive_layout_including_order() {
        // All-to-all under heavy ND stresses mixed program/message
        // adjacency; the CSR rows must match the old nested-Vec layout
        // element for element, order included.
        let n = 4u32;
        let mut b = ProgramBuilder::new(n);
        for r in 0..n {
            let mut rb = b.rank(Rank(r));
            let mut reqs = Vec::new();
            for _ in 0..n - 1 {
                reqs.push(rb.irecv_any(TagSpec::Any));
            }
            for peer in 0..n {
                if peer != r {
                    reqs.push(rb.isend(Rank(peer), Tag(0), 1));
                }
            }
            rb.waitall(reqs);
        }
        let p = b.build();
        for seed in 0..5 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            let g = EventGraph::from_trace(&t);
            let (out, inc) = naive_layout(&t);
            assert_eq!(g.node_count(), out.len());
            for id in g.node_ids() {
                assert_eq!(g.out_edges(id), &out[id.index()][..], "out {id:?}");
                assert_eq!(g.in_edges(id), &inc[id.index()][..], "in {id:?}");
            }
        }
    }

    #[test]
    fn streaming_csr_equals_legacy_edge_list_path() {
        // The legacy builder materialised the full ordered edge list and
        // fed it through `build_csr_pair`; the streaming builder counts
        // and fills directly from the trace. The two must agree byte for
        // byte — offsets and targets both.
        let n = 5u32;
        let mut b = ProgramBuilder::new(n);
        for r in 0..n {
            let mut rb = b.rank(Rank(r));
            let mut reqs = Vec::new();
            for _ in 0..n - 1 {
                reqs.push(rb.irecv_any(TagSpec::Any));
            }
            for peer in 0..n {
                if peer != r {
                    reqs.push(rb.isend(Rank(peer), Tag(0), 1));
                }
            }
            rb.waitall(reqs);
        }
        let p = b.build();
        for seed in 0..5 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            let g = EventGraph::from_trace(&t);
            // Legacy path, reproduced: materialise the ordered edge list.
            let world = t.world_size();
            let mut rank_base = Vec::new();
            let mut count = 0u32;
            for r in 0..world {
                rank_base.push(count);
                count += t.rank_events(Rank(r)).len() as u32;
            }
            let id_of =
                |eid: anacin_mpisim::trace::EventId| NodeId(rank_base[eid.rank.index()] + eid.idx);
            let mut edges: Vec<(u32, u32, EdgeKind)> = Vec::new();
            for r in 0..world {
                let base = rank_base[r as usize];
                let len = t.rank_events(Rank(r)).len() as u32;
                for i in 0..len.saturating_sub(1) {
                    edges.push((base + i, base + i + 1, EdgeKind::Program));
                }
            }
            for (id, ev) in t.iter() {
                if let anacin_mpisim::trace::EventKind::Recv { send_event, .. } = ev.kind {
                    edges.push((id_of(send_event).0, id_of(id).0, EdgeKind::Message));
                }
            }
            let (out, inc) = build_csr_pair(count as usize, &edges);
            assert_eq!(g.out, out, "seed {seed}: out CSR diverged");
            assert_eq!(g.incoming, inc, "seed {seed}: in CSR diverged");
        }
    }

    #[test]
    fn id_at_round_trips() {
        let g = race_graph(4, 0.0, 0);
        for id in g.node_ids() {
            let n = g.node(id);
            assert_eq!(g.id_at(n.rank, n.rank_idx), id);
        }
    }
}
