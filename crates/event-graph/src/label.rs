//! Node-labelling policies for graph kernels.
//!
//! A graph kernel consumes *labelled* graphs; the choice of initial label
//! decides what "similarity" means. Because kernel distances always
//! compare runs of the **same program**, labels may legitimately encode
//! program identity (rank, call path): two runs share the node set and
//! differ only in matching, so rank-aware labels are consistent across the
//! pair while still exposing match-order differences to the kernel.
//!
//! Labels are stable 64-bit hashes (FNV-1a), so feature spaces computed
//! from different graphs are directly comparable without a shared
//! dictionary.

use crate::graph::{EventGraph, NodeKind};
use serde::{Deserialize, Serialize};

/// Stable 64-bit FNV-1a hash used for label construction and WL
/// relabelling. Deterministic across processes and platforms.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash a sequence of u64 words (used to combine labels).
#[inline]
pub fn fnv1a_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// What the initial node label encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LabelPolicy {
    /// Only the event class (init/send/recv/finalize). Fully
    /// permutation-invariant; cannot see match-order changes that amount
    /// to a rank relabelling (see the kernel-ablation bench).
    EventType,
    /// Event class plus the communication peer (matched source for
    /// receives, destination for sends). The ANACIN-X default: receives
    /// that matched a different sender get a different label.
    #[default]
    TypeAndPeer,
    /// Event class plus the owning rank (position-aware, peer-blind).
    RankAndType,
    /// Event class, owning rank, and peer — the most discriminating
    /// structural policy.
    RankTypePeer,
    /// The interned call-path id. Only meaningful when the graphs being
    /// compared came from the same program (shared call-path table).
    Callstack,
}

/// Compute initial labels for every node under `policy`.
pub fn initial_labels(g: &EventGraph, policy: LabelPolicy) -> Vec<u64> {
    g.nodes()
        .iter()
        .map(|n| {
            let class: u64 = match n.kind {
                NodeKind::Init => 1,
                NodeKind::Finalize => 2,
                NodeKind::Send { .. } => 3,
                NodeKind::Recv { .. } => 4,
            };
            let peer: u64 = match n.kind {
                NodeKind::Send { dst } => dst.0 as u64 + 1,
                NodeKind::Recv { src, .. } => src.0 as u64 + 1,
                _ => 0,
            };
            match policy {
                LabelPolicy::EventType => fnv1a_words(&[class]),
                LabelPolicy::TypeAndPeer => fnv1a_words(&[class, peer]),
                LabelPolicy::RankAndType => fnv1a_words(&[class, n.rank.0 as u64 + 1]),
                LabelPolicy::RankTypePeer => fnv1a_words(&[class, n.rank.0 as u64 + 1, peer]),
                LabelPolicy::Callstack => fnv1a_words(&[5, n.stack.0 as u64]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EventGraph;
    use anacin_mpisim::prelude::*;

    fn race(seed: u64) -> EventGraph {
        let mut b = ProgramBuilder::new(4);
        for r in 1..4 {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..4 {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn fnv1a_is_deterministic_and_spread() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a_words(&[1, 2]), fnv1a_words(&[1, 2]));
        assert_ne!(fnv1a_words(&[1, 2]), fnv1a_words(&[2, 1]));
    }

    #[test]
    fn event_type_policy_has_four_classes() {
        let g = race(0);
        let labels = initial_labels(&g, LabelPolicy::EventType);
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn type_and_peer_distinguishes_senders() {
        let g = race(0);
        let labels = initial_labels(&g, LabelPolicy::TypeAndPeer);
        // Rank 0's three receives matched three different senders, so
        // their labels must be pairwise distinct.
        let recv_labels: Vec<u64> = g
            .rank_nodes(Rank(0))
            .filter(|&id| g.node(id).kind.is_recv())
            .map(|id| labels[id.index()])
            .collect();
        assert_eq!(recv_labels.len(), 3);
        let distinct: std::collections::HashSet<_> = recv_labels.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn labels_are_stable_across_identical_runs() {
        let g1 = race(7);
        let g2 = race(7);
        for p in [
            LabelPolicy::EventType,
            LabelPolicy::TypeAndPeer,
            LabelPolicy::RankAndType,
            LabelPolicy::RankTypePeer,
            LabelPolicy::Callstack,
        ] {
            assert_eq!(initial_labels(&g1, p), initial_labels(&g2, p));
        }
    }

    #[test]
    fn match_order_changes_move_labels_under_peer_policy() {
        // Find two seeds with different match orders; under TypeAndPeer
        // the label *sequence* on rank 0 must differ, while under
        // EventType it must not.
        let base = race(0);
        let mut other = None;
        for seed in 1..50 {
            let g = race(seed);
            if g.match_order(Rank(0)) != base.match_order(Rank(0)) {
                other = Some(g);
                break;
            }
        }
        let other = other.expect("some seed must reorder matches");
        assert_ne!(
            initial_labels(&base, LabelPolicy::TypeAndPeer),
            initial_labels(&other, LabelPolicy::TypeAndPeer)
        );
        assert_eq!(
            initial_labels(&base, LabelPolicy::EventType),
            initial_labels(&other, LabelPolicy::EventType)
        );
    }

    #[test]
    fn callstack_policy_uses_stack_ids() {
        let g = race(0);
        let labels = initial_labels(&g, LabelPolicy::Callstack);
        assert_eq!(labels.len(), g.node_count());
        // Send nodes share a call path; init nodes share the unknown path;
        // they must differ from each other.
        let send = g.node_ids().find(|&id| g.node(id).kind.is_send()).unwrap();
        let init = g.id_at(Rank(0), 0);
        assert_ne!(labels[send.index()], labels[init.index()]);
    }
}
