//! Graph algorithms over event graphs.
//!
//! Event graphs are DAGs by construction (program order and message edges
//! both point forward in causal time); these helpers provide the standard
//! toolbox the analysis layers build on: topological order, reachability
//! (happens-before), critical path, and degree statistics.

use crate::graph::{EdgeKind, EventGraph, NodeId};

/// A topological order of the graph (Kahn's algorithm).
///
/// Returns `None` if the graph contains a cycle — which would indicate a
/// corrupted trace, since causality forbids cycles.
pub fn topo_sort(g: &EventGraph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| g.in_edges(NodeId(i as u32)).len() as u32)
        .collect();
    let mut queue: std::collections::VecDeque<NodeId> = (0..n)
        .map(|i| NodeId(i as u32))
        .filter(|id| indeg[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &(to, _) in g.out_edges(id) {
            indeg[to.index()] -= 1;
            if indeg[to.index()] == 0 {
                queue.push_back(to);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// True when the graph is acyclic (every valid event graph is).
pub fn is_dag(g: &EventGraph) -> bool {
    topo_sort(g).is_some()
}

/// The set of nodes reachable from `from` (inclusive): the events that
/// causally depend on `from` ("happens-before" cone).
pub fn reachable_from(g: &EventGraph, from: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(id) = stack.pop() {
        for &(to, _) in g.out_edges(id) {
            if !seen[to.index()] {
                seen[to.index()] = true;
                stack.push(to);
            }
        }
    }
    seen
}

/// Does `a` happen-before `b` (is there a causal path a → b)?
pub fn happens_before(g: &EventGraph, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return false;
    }
    reachable_from(g, a)[b.index()]
}

/// The critical path: the longest chain of events weighted by the time
/// deltas along edges, returned as the node sequence from a source to the
/// final event. This is the classic "which dependence chain bounds the
/// makespan" analysis.
pub fn critical_path(g: &EventGraph) -> Vec<NodeId> {
    let order = match topo_sort(g) {
        Some(o) => o,
        None => return Vec::new(),
    };
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    // dist[v] = max over predecessors of dist[u] + weight(u,v); weight is
    // the receiver-side time delta (>= 0 in a valid trace).
    let mut dist = vec![0u64; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    for &u in &order {
        for &(v, _) in g.out_edges(u) {
            let tu = g.node(u).time.nanos();
            let tv = g.node(v).time.nanos();
            let w = tv.saturating_sub(tu);
            if dist[u.index()] + w >= dist[v.index()] {
                dist[v.index()] = dist[u.index()] + w;
                pred[v.index()] = Some(u);
            }
        }
    }
    let end = (0..n)
        .max_by_key(|&i| dist[i])
        .map(|i| NodeId(i as u32))
        .expect("nonempty graph");
    let mut path = vec![end];
    while let Some(p) = pred[path.last().unwrap().index()] {
        path.push(p);
    }
    path.reverse();
    path
}

/// Degree statistics of the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Maximum out-degree.
    pub max_out: usize,
    /// Maximum in-degree.
    pub max_in: usize,
    /// Mean total degree.
    pub mean_degree: f64,
}

/// Compute [`DegreeStats`].
pub fn degree_stats(g: &EventGraph) -> DegreeStats {
    let n = g.node_count().max(1);
    let mut max_out = 0;
    let mut max_in = 0;
    let mut total = 0usize;
    for id in g.node_ids() {
        let o = g.out_edges(id).len();
        let i = g.in_edges(id).len();
        max_out = max_out.max(o);
        max_in = max_in.max(i);
        total += o + i;
    }
    DegreeStats {
        max_out,
        max_in,
        mean_degree: total as f64 / n as f64,
    }
}

/// Count nodes per edge kind — a cheap structural fingerprint used by
/// tests and sanity checks.
pub fn edge_kind_counts(g: &EventGraph) -> (usize, usize) {
    let mut program = 0;
    let mut message = 0;
    for (_, _, k) in g.edges() {
        match k {
            EdgeKind::Program => program += 1,
            EdgeKind::Message => message += 1,
        }
    }
    (program, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EventGraph;
    use anacin_mpisim::prelude::*;

    fn pingpong_graph() -> EventGraph {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0))
            .send(Rank(1), Tag(0), 8)
            .recv(Rank(1), Tag(1).into());
        b.rank(Rank(1))
            .recv(Rank(0), Tag(0).into())
            .send(Rank(0), Tag(1), 8);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn event_graphs_are_dags() {
        let g = pingpong_graph();
        assert!(is_dag(&g));
        let order = topo_sort(&g).unwrap();
        assert_eq!(order.len(), g.node_count());
        // Every edge must go forward in the order.
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (a, b, _) in g.edges() {
            assert!(pos[&a] < pos[&b]);
        }
    }

    #[test]
    fn happens_before_via_message() {
        let g = pingpong_graph();
        // rank0 send (idx 1) happens-before rank1 recv (idx 1).
        let s = g.id_at(Rank(0), 1);
        let r = g.id_at(Rank(1), 1);
        assert!(happens_before(&g, s, r));
        assert!(!happens_before(&g, r, s));
        assert!(!happens_before(&g, s, s));
        // rank0 init happens-before every event on rank 0 …
        let init0 = g.id_at(Rank(0), 0);
        for id in g.rank_nodes(Rank(0)).skip(1) {
            assert!(happens_before(&g, init0, id));
        }
        // … and, via the message, before rank1's finalize. But rank1's
        // init is causally independent of rank0's init.
        assert!(happens_before(&g, init0, g.id_at(Rank(1), 3)));
        assert!(!happens_before(&g, init0, g.id_at(Rank(1), 0)));
    }

    #[test]
    fn critical_path_spans_the_makespan() {
        let g = pingpong_graph();
        let path = critical_path(&g);
        assert!(path.len() >= 2);
        // Path is causal and monotone in time.
        for w in path.windows(2) {
            assert!(g.node(w[0]).time <= g.node(w[1]).time);
        }
        // Ends at the globally latest event.
        let last = *path.last().unwrap();
        let max_t = g.nodes().iter().map(|n| n.time).max().unwrap();
        assert_eq!(g.node(last).time, max_t);
    }

    #[test]
    fn reachable_from_init_covers_dependents() {
        let g = pingpong_graph();
        let seen = reachable_from(&g, g.id_at(Rank(0), 0));
        // rank 0's whole chain is reachable.
        for id in g.rank_nodes(Rank(0)) {
            assert!(seen[id.index()]);
        }
        // rank 1's recv (which matched rank 0's send) is reachable.
        assert!(seen[g.id_at(Rank(1), 1).index()]);
    }

    #[test]
    fn degree_stats_sane() {
        let g = pingpong_graph();
        let d = degree_stats(&g);
        assert!(d.max_out >= 1);
        assert!(d.max_in >= 1);
        assert!(d.mean_degree > 0.0);
    }

    #[test]
    fn edge_kind_counts_add_up() {
        let g = pingpong_graph();
        let (p, m) = edge_kind_counts(&g);
        assert_eq!(p + m, g.edge_count());
        assert_eq!(m, g.message_edge_count());
        assert_eq!(m, 2);
    }

    #[test]
    fn empty_like_graph_behaviour() {
        // Single rank, no communication: a pure chain.
        let mut b = ProgramBuilder::new(1);
        b.rank(Rank(0)).compute(10);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        let g = EventGraph::from_trace(&t);
        assert_eq!(g.node_count(), 2); // init, finalize
        assert!(is_dag(&g));
        assert_eq!(critical_path(&g).len(), 2);
        assert_eq!(edge_kind_counts(&g), (1, 0));
    }
}
