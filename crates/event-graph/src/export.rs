//! Exporters: DOT (Graphviz), GraphML, and JSON.
//!
//! The Graphviz export mirrors the paper's figures: one horizontal row per
//! rank, green start/end nodes, blue sends, red receives, solid program
//! edges and dashed message edges.

use crate::graph::{EdgeKind, EventGraph, NodeKind};
use anacin_mpisim::types::Rank;
use std::fmt::Write as _;

fn node_color(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::Init | NodeKind::Finalize => "green",
        NodeKind::Send { .. } => "blue",
        NodeKind::Recv { .. } => "red",
    }
}

/// Render the graph as Graphviz DOT with one cluster per rank.
pub fn to_dot(g: &EventGraph) -> String {
    let mut s = String::new();
    s.push_str("digraph event_graph {\n  rankdir=LR;\n  node [shape=circle, style=filled];\n");
    for r in 0..g.world_size() {
        let _ = writeln!(s, "  subgraph cluster_rank{r} {{");
        let _ = writeln!(s, "    label=\"rank {r}\";");
        for id in g.rank_nodes(Rank(r)) {
            let n = g.node(id);
            let _ = writeln!(
                s,
                "    n{} [label=\"{}\", fillcolor={}];",
                id.0,
                n.kind.mnemonic(),
                node_color(&n.kind)
            );
        }
        s.push_str("  }\n");
    }
    for (a, b, kind) in g.edges() {
        let style = match kind {
            EdgeKind::Program => "solid",
            EdgeKind::Message => "dashed",
        };
        let _ = writeln!(s, "  n{} -> n{} [style={style}];", a.0, b.0);
    }
    s.push_str("}\n");
    s
}

/// Render the graph as GraphML (node `kind`/`rank` attributes, edge
/// `kind` attribute) — the interchange format GraKeL-style toolchains
/// consume.
pub fn to_graphml(g: &EventGraph) -> String {
    let mut s = String::new();
    s.push_str(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n\
         <key id=\"kind\" for=\"node\" attr.name=\"kind\" attr.type=\"string\"/>\n\
         <key id=\"rank\" for=\"node\" attr.name=\"rank\" attr.type=\"int\"/>\n\
         <key id=\"ekind\" for=\"edge\" attr.name=\"kind\" attr.type=\"string\"/>\n\
         <graph id=\"G\" edgedefault=\"directed\">\n",
    );
    for id in g.node_ids() {
        let n = g.node(id);
        let _ = writeln!(
            s,
            "<node id=\"n{}\"><data key=\"kind\">{}</data><data key=\"rank\">{}</data></node>",
            id.0,
            n.kind.mnemonic(),
            n.rank.0
        );
    }
    for (i, (a, b, kind)) in g.edges().enumerate() {
        let k = match kind {
            EdgeKind::Program => "program",
            EdgeKind::Message => "message",
        };
        let _ = writeln!(
            s,
            "<edge id=\"e{i}\" source=\"n{}\" target=\"n{}\"><data key=\"ekind\">{k}</data></edge>",
            a.0, b.0
        );
    }
    s.push_str("</graph>\n</graphml>\n");
    s
}

/// Serialize the graph as JSON (via serde).
pub fn to_json(g: &EventGraph) -> serde_json::Result<String> {
    serde_json::to_string(g)
}

/// Deserialize a graph from [`to_json`] output.
pub fn from_json(s: &str) -> serde_json::Result<EventGraph> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EventGraph;
    use anacin_mpisim::prelude::*;

    fn graph() -> EventGraph {
        let mut b = ProgramBuilder::new(3);
        b.rank(Rank(1)).send(Rank(0), Tag(0), 1);
        b.rank(Rank(2)).send(Rank(0), Tag(0), 1);
        b.rank(Rank(0))
            .recv_any(TagSpec::Tag(Tag(0)))
            .recv_any(TagSpec::Tag(Tag(0)));
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn dot_contains_clusters_nodes_and_edges() {
        let g = graph();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        for r in 0..3 {
            assert!(dot.contains(&format!("cluster_rank{r}")));
        }
        assert!(dot.contains("fillcolor=blue"));
        assert!(dot.contains("fillcolor=red"));
        assert!(dot.contains("fillcolor=green"));
        assert!(dot.contains("style=dashed"));
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
    }

    #[test]
    fn graphml_is_well_formed_enough() {
        let g = graph();
        let xml = to_graphml(&g);
        assert!(xml.contains("<graphml"));
        assert!(xml.ends_with("</graphml>\n"));
        assert_eq!(xml.matches("<node ").count(), g.node_count());
        assert_eq!(xml.matches("<edge ").count(), g.edge_count());
        assert_eq!(xml.matches("message").count(), g.message_edge_count());
    }

    #[test]
    fn json_round_trips() {
        let g = graph();
        let s = to_json(&g).unwrap();
        let g2 = from_json(&s).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.match_order(Rank(0)), g.match_order(Rank(0)));
    }
}
