//! Property-based tests of event-graph construction and algorithms over
//! randomly generated balanced programs.

use anacin_event_graph::{
    algo, diff,
    graph::{EdgeKind, EventGraph, NodeId},
    lamport, slice,
    stats::GraphStats,
};
use anacin_mpisim::prelude::*;
use proptest::prelude::*;

fn build_program(world: u32, msgs: &[(u32, u32)]) -> Program {
    let mut b = ProgramBuilder::new(world);
    let mut inbound = vec![0u32; world as usize];
    for &(src, dst) in msgs {
        b.rank(Rank(src)).send(Rank(dst), Tag(0), 8);
        inbound[dst as usize] += 1;
    }
    for (r, &n) in inbound.iter().enumerate() {
        for _ in 0..n {
            b.rank(Rank(r as u32)).recv_any(TagSpec::Tag(Tag(0)));
        }
    }
    b.build()
}

fn msgs_strategy(world: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec(
        (0..world, 0..world).prop_filter("no self sends", |(s, d)| s != d),
        0..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every trace's event graph is a DAG with verified Lamport clocks,
    /// and its statistics are internally consistent.
    #[test]
    fn graphs_are_sound(
        msgs in msgs_strategy(6),
        nd in 0.0f64..=100.0,
        seed in 0u64..200,
    ) {
        let p = build_program(6, &msgs);
        let t = simulate(&p, &SimConfig::with_nd_percent(nd, seed)).unwrap();
        let g = EventGraph::from_trace(&t);
        prop_assert!(algo::is_dag(&g));
        let ts = lamport::lamport_times(&g);
        lamport::verify_lamport(&g, &ts).unwrap();
        let s = GraphStats::of(&g);
        prop_assert_eq!(s.sends, msgs.len());
        prop_assert_eq!(s.recvs, msgs.len());
        prop_assert_eq!(s.message_edges, msgs.len());
        // Traffic conservation, in both the sparse and dense views.
        prop_assert_eq!(s.traffic.total() as usize, msgs.len());
        let dense_total: u64 = s.traffic.to_dense().iter().flatten().sum();
        prop_assert_eq!(dense_total as usize, msgs.len());
        // Node accounting: init + finalize per rank + send/recv events.
        prop_assert_eq!(s.nodes, 12 + 2 * msgs.len());
    }

    /// The streaming two-pass CSR construction is bit-identical to the
    /// legacy edge-list materialisation: every node's out- and in-
    /// adjacency, including edge order, equals a `Vec<Vec<_>>` rebuild
    /// from the trace in canonical emission order (program edges rank by
    /// rank, then message edges in trace-iteration order).
    #[test]
    fn streaming_csr_matches_legacy_edge_list(
        msgs in msgs_strategy(6),
        nd in 0.0f64..=100.0,
        seed in 0u64..200,
    ) {
        let world = 6u32;
        let p = build_program(world, &msgs);
        let t = simulate(&p, &SimConfig::with_nd_percent(nd, seed)).unwrap();
        let g = EventGraph::from_trace(&t);
        let mut base = vec![0u32; world as usize + 1];
        for r in 0..world as usize {
            base[r + 1] = base[r] + t.rank_events(Rank(r as u32)).len() as u32;
        }
        let node_of = |rank: Rank, idx: u32| NodeId(base[rank.index()] + idx);
        let n = g.node_count();
        let mut out: Vec<Vec<(NodeId, EdgeKind)>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<(NodeId, EdgeKind)>> = vec![Vec::new(); n];
        for r in 0..world {
            let len = t.rank_events(Rank(r)).len() as u32;
            for i in 1..len {
                let (u, v) = (node_of(Rank(r), i - 1), node_of(Rank(r), i));
                out[u.index()].push((v, EdgeKind::Program));
                inc[v.index()].push((u, EdgeKind::Program));
            }
        }
        for (id, e) in t.iter() {
            if let EventKind::Recv { send_event, .. } = &e.kind {
                let (u, v) = (node_of(send_event.rank, send_event.idx),
                              node_of(id.rank, id.idx));
                out[u.index()].push((v, EdgeKind::Message));
                inc[v.index()].push((u, EdgeKind::Message));
            }
        }
        for id in g.node_ids() {
            prop_assert_eq!(g.out_edges(id), &out[id.index()][..]);
            prop_assert_eq!(g.in_edges(id), &inc[id.index()][..]);
        }
    }

    /// Slicing partitions: both slicers cover every node exactly once,
    /// and position slices are identical across runs.
    #[test]
    fn slicers_partition(
        msgs in msgs_strategy(5),
        seed_a in 0u64..50,
        seed_b in 50u64..100,
        count in 1usize..12,
    ) {
        let p = build_program(5, &msgs);
        let ga = EventGraph::from_trace(
            &simulate(&p, &SimConfig::with_nd_percent(100.0, seed_a)).unwrap());
        let gb = EventGraph::from_trace(
            &simulate(&p, &SimConfig::with_nd_percent(100.0, seed_b)).unwrap());
        for slicer in [slice::slice_into, slice::slice_by_position] {
            let sa = slicer(&ga, count);
            let total: usize = sa.iter().map(|s| s.nodes.len()).sum();
            prop_assert_eq!(total, ga.node_count());
        }
        let pa = slice::slice_by_position(&ga, count);
        let pb = slice::slice_by_position(&gb, count);
        for (x, y) in pa.iter().zip(&pb) {
            prop_assert_eq!(&x.nodes, &y.nodes);
        }
    }

    /// diff() of a graph with itself is empty; diff across seeds reports
    /// exactly the receives whose matched source changed.
    #[test]
    fn diff_counts_changed_receives(
        msgs in msgs_strategy(5),
        seed_a in 0u64..50,
        seed_b in 50u64..100,
    ) {
        let p = build_program(5, &msgs);
        let ga = EventGraph::from_trace(
            &simulate(&p, &SimConfig::with_nd_percent(100.0, seed_a)).unwrap());
        let gb = EventGraph::from_trace(
            &simulate(&p, &SimConfig::with_nd_percent(100.0, seed_b)).unwrap());
        let self_diff = diff::diff(&ga, &ga).unwrap();
        prop_assert!(self_diff.identical());
        let d = diff::diff(&ga, &gb).unwrap();
        prop_assert_eq!(d.total_receives, msgs.len());
        // Cross-check against the match orders.
        let mut expected = 0;
        for r in 0..5 {
            let oa = ga.match_order(Rank(r));
            let ob = gb.match_order(Rank(r));
            expected += oa.iter().zip(&ob).filter(|(a, b)| a != b).count();
        }
        prop_assert_eq!(d.differing.len(), expected);
    }

    /// The critical path is causal and ends at the latest event.
    #[test]
    fn critical_path_properties(
        msgs in msgs_strategy(5),
        seed in 0u64..100,
    ) {
        let p = build_program(5, &msgs);
        let g = EventGraph::from_trace(
            &simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap());
        let path = algo::critical_path(&g);
        prop_assert!(!path.is_empty());
        for w in path.windows(2) {
            // Consecutive path nodes are connected by an edge.
            prop_assert!(g.out_edges(w[0]).iter().any(|&(to, _)| to == w[1]));
        }
        let max_t = g.nodes().iter().map(|n| n.time).max().unwrap();
        prop_assert_eq!(g.node(*path.last().unwrap()).time, max_t);
    }
}
