//! Incremental, resumable campaigns backed by the content-addressed
//! artifact store (`anacin-store`).
//!
//! Every pipeline product — trace, event graph, per-run feature vector,
//! Gram matrix, distance sample — is a pure function of `(pattern +
//! configuration, seed, ND setting, kernel parameters)`, because the whole
//! pipeline is bit-deterministic for a given key. That makes memoisation
//! sound: [`run_campaign_incremental`] looks every artifact up by
//! fingerprint first and only computes (then publishes) what is missing,
//! so
//!
//! * an interrupted campaign resumes from whatever runs already reached
//!   the store,
//! * regenerating a figure reuses every stored run outright, and
//! * sweeping kernels over the same runs reuses traces and graphs and
//!   recomputes only the kernel-specific stages.
//!
//! The warm path is **bit-identical** to the cold path: codecs are
//! canonical (one byte representation per value) and keys absorb every
//! semantic input, so a warm result and a cold result are the same bytes.
//! The differential tests in this module and in `tests/store.rs` assert
//! exactly that.
//!
//! ## Keys
//!
//! Fingerprints absorb a domain-separation label, [`KEY_SCHEMA`], and the
//! canonical JSON of each semantic field (the config types' serde
//! encodings are stable). `threads` and `schedule` are deliberately
//! excluded: thread count and kernel-stage scheduling never change
//! results, so warm hits survive re-running on a different machine shape
//! or under a different schedule. Changing pipeline semantics requires
//! bumping [`KEY_SCHEMA`], which cleanly invalidates every old key.

use crate::campaign::{check_cancel, CampaignError, CampaignResult, Interrupted};
use crate::config::{CampaignConfig, GramSchedule};
use anacin_event_graph::EventGraph;
use anacin_kernels::feature::SparseFeatures;
use anacin_kernels::matrix::{gram_from_features_with_metrics, KernelMatrix};
use anacin_kernels::pipeline::gram_pipelined_seeded_with_metrics;
use anacin_mpisim::engine::{simulate_traced_counted, SimError};
use anacin_mpisim::program::Program;
use anacin_mpisim::trace::Trace;
use anacin_mpisim::SimCounters;
use anacin_obs::{CancelToken, MetricsRegistry, Tracer};
use anacin_store::{
    Artifact, ArtifactStore, DistanceSample, Fingerprint, FingerprintHasher, StoreError,
};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Version of the key material fed into fingerprints. Bump whenever the
/// pipeline's semantics change in a way that should invalidate previously
/// stored artifacts (every old key then misses cleanly).
pub const KEY_SCHEMA: u32 = 1;

/// An incremental campaign failed: either the pipeline itself, or the
/// artifact store underneath it.
#[derive(Debug)]
pub enum IncrementalError {
    /// A seeded run failed to simulate.
    Campaign(CampaignError),
    /// The store failed in a way that is not self-healable (I/O).
    Store(StoreError),
}

impl fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrementalError::Campaign(e) => write!(f, "campaign failed: {e}"),
            IncrementalError::Store(e) => write!(f, "artifact store failed: {e}"),
        }
    }
}

impl std::error::Error for IncrementalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IncrementalError::Campaign(e) => Some(e),
            IncrementalError::Store(e) => Some(e),
        }
    }
}

impl From<CampaignError> for IncrementalError {
    fn from(e: CampaignError) -> Self {
        IncrementalError::Campaign(e)
    }
}

impl From<StoreError> for IncrementalError {
    fn from(e: StoreError) -> Self {
        IncrementalError::Store(e)
    }
}

impl From<StoreError> for Interrupted<IncrementalError> {
    fn from(e: StoreError) -> Self {
        Interrupted::Failed(IncrementalError::Store(e))
    }
}

impl From<CampaignError> for Interrupted<IncrementalError> {
    fn from(e: CampaignError) -> Self {
        Interrupted::Failed(IncrementalError::Campaign(e))
    }
}

/// Absorb a labelled field as canonical JSON. The config types' serde
/// encodings are deterministic (plain structs and enums, no maps), which
/// makes the JSON a stable canonical form.
fn absorb_json<T: serde::Serialize>(h: &mut FingerprintHasher, label: &str, value: &T) {
    h.write_str(label);
    h.write_str(&serde_json::to_string(value).expect("key material serialises"));
}

/// Absorb the per-run semantic inputs shared by every run-level key:
/// everything that determines the bytes of a trace except the seed.
pub(crate) fn absorb_setting(h: &mut FingerprintHasher, config: &CampaignConfig) {
    h.write_u32(KEY_SCHEMA);
    absorb_json(h, "pattern", &config.pattern);
    absorb_json(h, "app", &config.app);
    h.write_str("nd_percent");
    h.write_f64(config.nd_percent);
    h.write_str("nodes");
    h.write_u32(config.nodes);
    absorb_json(h, "delay", &config.delay);
}

/// The fingerprint naming run `run`'s trace and event graph (same key,
/// distinct [`anacin_store::ArtifactKind`]s).
pub fn run_fingerprint(config: &CampaignConfig, run: u32) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("anacin/run");
    absorb_setting(&mut h, config);
    h.write_str("seed");
    h.write_u64(config.base_seed + run as u64);
    h.finish()
}

/// The fingerprint naming run `run`'s feature vector under the campaign's
/// kernel. Extends the run key with the kernel parameters, so sweeping
/// kernels over the same runs stores one vector per (run, kernel).
pub fn features_fingerprint(config: &CampaignConfig, run: u32) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("anacin/features");
    absorb_setting(&mut h, config);
    h.write_str("seed");
    h.write_u64(config.base_seed + run as u64);
    absorb_json(&mut h, "kernel", &config.kernel);
    h.finish()
}

/// The fingerprint naming the campaign-level artifacts (Gram matrix and
/// distance sample): the full run set plus the kernel.
pub fn campaign_fingerprint(config: &CampaignConfig) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("anacin/campaign");
    absorb_setting(&mut h, config);
    h.write_str("runs");
    h.write_u32(config.runs);
    h.write_str("base_seed");
    h.write_u64(config.base_seed);
    absorb_json(&mut h, "kernel", &config.kernel);
    h.finish()
}

/// Fetch an artifact, treating damage as a clean miss so the caller
/// recomputes and overwrites it (self-healing). Only I/O errors propagate.
pub(crate) fn get_or_heal<A: Artifact>(
    store: &ArtifactStore,
    fp: Fingerprint,
) -> Result<Option<A>, StoreError> {
    match store.get::<A>(fp) {
        Ok(v) => Ok(v),
        // A corrupt frame or an undecodable payload both mean the stored
        // bytes are unusable; recomputing is always safe because `put`
        // republishes atomically over the damaged file.
        Err(StoreError::Corrupt { .. }) | Err(StoreError::Decode(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Simulate exactly the given runs (identified by run index) in parallel,
/// with per-worker batched counters. Failure reports the lowest failing
/// run index, matching [`crate::campaign::run_traces_observed`]. Once
/// `cancel` fires, workers stop claiming runs; the caller detects
/// cancellation by the result being shorter than `missing`.
fn simulate_runs(
    program: &Program,
    config: &CampaignConfig,
    missing: &[u32],
    metrics: Option<&MetricsRegistry>,
    cancel: Option<&CancelToken>,
) -> Result<Vec<(u32, Trace)>, CampaignError> {
    if missing.is_empty() {
        // Fully warm: spawn no workers (and create no `sim/*` counters —
        // a warm campaign performs no simulation work to report).
        return Ok(Vec::new());
    }
    let threads = config.threads.max(1).min(missing.len());
    let next = AtomicUsize::new(0);
    let results: Vec<Vec<(u32, Result<Trace, SimError>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let counters = metrics.map(SimCounters::new);
                    let mut local = Vec::new();
                    loop {
                        if cancel.is_some_and(|c| c.is_cancelled()) {
                            break;
                        }
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= missing.len() {
                            break;
                        }
                        let run = missing[slot];
                        let sc = config.sim_config(run);
                        local.push((
                            run,
                            simulate_traced_counted(program, &sc, metrics, None, counters.as_ref()),
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(missing.len());
    let mut failure: Option<CampaignError> = None;
    for chunk in results {
        for (run, r) in chunk {
            match r {
                Ok(t) => out.push((run, t)),
                Err(source) => {
                    if failure.as_ref().is_none_or(|f| run < f.run) {
                        failure = Some(CampaignError {
                            run,
                            seed: config.sim_config(run).seed,
                            source,
                        });
                    }
                }
            }
        }
    }
    if let Some(f) = failure {
        return Err(f);
    }
    out.sort_by_key(|&(run, _)| run);
    Ok(out)
}

/// Run a campaign against an artifact store: reuse every stored artifact,
/// compute and publish the rest. See the module docs for the key scheme
/// and the warm-path bit-identity guarantee.
pub fn run_campaign_incremental(
    config: &CampaignConfig,
    store: &ArtifactStore,
) -> Result<CampaignResult, IncrementalError> {
    run_campaign_incremental_with_metrics(config, store, None)
}

/// [`run_campaign_incremental`] with the same per-stage instrumentation as
/// [`crate::campaign::run_campaign_with_metrics`]. Counters reflect work
/// actually performed: warm runs bump `store/hits` instead of `sim/*`.
pub fn run_campaign_incremental_with_metrics(
    config: &CampaignConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
) -> Result<CampaignResult, IncrementalError> {
    run_campaign_incremental_observed(config, store, metrics, None, 0)
}

/// [`run_campaign_incremental_with_metrics`], plus timeline tracing: with
/// a [`Tracer`], every run's trace — warm or cold — is emitted tagged with
/// `run_base + i`, so a resumed campaign produces the same complete
/// timeline as an uninterrupted one.
pub fn run_campaign_incremental_observed(
    config: &CampaignConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
) -> Result<CampaignResult, IncrementalError> {
    run_campaign_incremental_cancellable(config, store, metrics, tracer, run_base, None)
        .map_err(Interrupted::into_failure)
}

/// [`run_campaign_incremental_observed`] with cooperative cancellation.
/// Every run that finished simulating before `cancel` fired is still
/// published to the store, so a cancelled campaign resumes warm: the
/// daemon's per-job cancellation (client disconnect, timeout, `Cancel`
/// frame) never throws away completed work.
pub fn run_campaign_incremental_cancellable(
    config: &CampaignConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
    cancel: Option<&CancelToken>,
) -> Result<CampaignResult, Interrupted<IncrementalError>> {
    let _campaign_span = metrics.map(|m| m.span("campaign"));
    let program = config.pattern.build(&config.app);
    let runs = config.runs;

    // Stage 1: traces — load what the store has, simulate the rest.
    let traces: Vec<Trace> = {
        let _s = metrics.map(|m| m.span("simulate"));
        let mut slots: Vec<Option<Trace>> = (0..runs).map(|_| None).collect();
        let mut missing = Vec::new();
        for run in 0..runs {
            match get_or_heal::<Trace>(store, run_fingerprint(config, run))? {
                Some(t) => slots[run as usize] = Some(t),
                None => missing.push(run),
            }
        }
        let simulated = simulate_runs(&program, config, &missing, metrics, cancel)?;
        let cancelled = simulated.len() < missing.len();
        for (run, t) in simulated {
            store.put(run_fingerprint(config, run), &t)?;
            slots[run as usize] = Some(t);
        }
        if cancelled {
            let completed = slots.iter().filter(|s| s.is_some()).count() as u32;
            return Err(Interrupted::Cancelled {
                completed_runs: completed,
            });
        }
        slots
            .into_iter()
            .map(|t| t.expect("all slots filled"))
            .collect()
    };
    check_cancel(cancel, runs)?;
    if let Some(t) = tracer {
        for (i, trace) in traces.iter().enumerate() {
            trace.record_into(t, run_base + i as u32);
        }
    }

    // Stage 2: event graphs.
    let graphs: Vec<EventGraph> = {
        let _s = metrics.map(|m| m.span("graph"));
        let mut out = Vec::with_capacity(traces.len());
        for (run, trace) in traces.iter().enumerate() {
            let fp = run_fingerprint(config, run as u32);
            let g = match get_or_heal::<EventGraph>(store, fp)? {
                Some(g) => g,
                None => {
                    let g = EventGraph::from_trace_with_metrics(trace, metrics);
                    store.put(fp, &g)?;
                    g
                }
            };
            out.push(g);
        }
        out
    };
    check_cancel(cancel, runs)?;

    // Stage 3: per-run feature vectors, then the Gram matrix from them.
    let kernel = config.kernel.instantiate();
    let matrix = {
        let _s = metrics.map(|m| m.span("kernel"));
        let mut feats: Vec<Option<SparseFeatures>> = (0..runs).map(|_| None).collect();
        let mut missing = Vec::new();
        for run in 0..runs {
            match get_or_heal::<SparseFeatures>(store, features_fingerprint(config, run))? {
                Some(f) => feats[run as usize] = Some(f),
                None => missing.push(run as usize),
            }
        }
        let campaign_fp = campaign_fingerprint(config);
        let stored = get_or_heal::<KernelMatrix>(store, campaign_fp)?;
        if !missing.is_empty() && stored.is_none() && config.schedule == GramSchedule::Pipelined {
            // Fused cold/mixed path: warm features seed the pipeline,
            // missing ones are extracted by it, and dot products overlap
            // the feature tail. The pipeline reads `graphs` in place, so
            // no missing-graph clones are made. Bit-identical to the
            // barrier path below (asserted in tests/pipeline.rs).
            let (all, m) = gram_pipelined_seeded_with_metrics(
                kernel.as_ref(),
                &graphs,
                feats,
                config.threads,
                metrics,
            );
            for &i in &missing {
                store.put(features_fingerprint(config, i as u32), &all[i])?;
            }
            store.put(campaign_fp, &m)?;
            store.put(campaign_fp, &DistanceSample(m.pairwise_distances()))?;
            m
        } else {
            if !missing.is_empty() {
                let missing_graphs: Vec<EventGraph> =
                    missing.iter().map(|&i| graphs[i].clone()).collect();
                let computed = anacin_kernels::matrix::parallel_features_with_metrics(
                    kernel.as_ref(),
                    &missing_graphs,
                    config.threads,
                    metrics,
                );
                for (&i, f) in missing.iter().zip(computed) {
                    store.put(features_fingerprint(config, i as u32), &f)?;
                    feats[i] = Some(f);
                }
            }
            let feats: Vec<SparseFeatures> = feats
                .into_iter()
                .map(|f| f.expect("all slots filled"))
                .collect();
            match stored {
                Some(m) => m,
                None => {
                    // Fully warm features (or barrier schedule): the plain
                    // from-features Gram — the warm path never changes.
                    let m = gram_from_features_with_metrics(
                        &kernel.name(),
                        &feats,
                        config.threads,
                        metrics,
                    );
                    store.put(campaign_fp, &m)?;
                    store.put(campaign_fp, &DistanceSample(m.pairwise_distances()))?;
                    m
                }
            }
        }
    };

    if let Some(m) = metrics {
        m.counter("campaign/runs").add(runs as u64);
        let nan = anacin_stats::nan_count(&matrix.pairwise_distances());
        m.counter("stats/nan_distances").add(nan as u64);
    }
    Ok(CampaignResult {
        config: config.clone(),
        program,
        traces,
        graphs,
        matrix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use anacin_miniapps::Pattern;
    use anacin_store::ArtifactKind;
    use std::path::PathBuf;

    fn tmp_store(tag: &str) -> (PathBuf, ArtifactStore) {
        let dir = std::env::temp_dir().join(format!(
            "anacin-incremental-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        (dir, store)
    }

    fn small_cfg() -> CampaignConfig {
        CampaignConfig::new(Pattern::MessageRace, 6).runs(6)
    }

    #[test]
    fn cold_run_matches_plain_campaign() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("cold");
        let plain = run_campaign(&cfg).unwrap();
        let cold = run_campaign_incremental(&cfg, &store).unwrap();
        assert_eq!(cold.traces, plain.traces);
        assert_eq!(cold.graphs, plain.graphs);
        assert_eq!(cold.matrix, plain.matrix);
        let a = store.activity();
        assert_eq!(a.hits, 0);
        assert!(a.puts > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn warm_run_is_bit_identical_and_simulates_nothing() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("warm");
        let cold = run_campaign_incremental(&cfg, &store).unwrap();

        let reg = MetricsRegistry::new();
        store.attach_metrics(&reg);
        let warm = run_campaign_incremental_with_metrics(&cfg, &store, Some(&reg)).unwrap();
        assert_eq!(warm.traces, cold.traces);
        assert_eq!(warm.graphs, cold.graphs);
        assert_eq!(warm.matrix, cold.matrix);
        // Byte-level identity of the serialised artifacts.
        for run in 0..cfg.runs {
            assert_eq!(
                warm.traces[run as usize].to_wire(),
                cold.traces[run as usize].to_wire()
            );
        }
        let report = reg.report();
        // Fully warm: every artifact was a hit, nothing was simulated.
        assert_eq!(report.counter("sim/runs"), None);
        // 6 traces + 6 graphs + 6 feature vectors + 1 matrix.
        assert_eq!(report.counter("store/hits"), Some(19));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn interrupted_campaign_resumes_to_identical_result() {
        let cfg = small_cfg();
        // The "interrupted" campaign: only the first 3 runs reached the
        // store (runs share per-seed keys, so a shorter campaign with the
        // same base seed is exactly a prefix).
        let (dir, store) = tmp_store("resume");
        run_campaign_incremental(&cfg.clone().runs(3), &store).unwrap();
        let before = store.activity();
        let resumed = run_campaign_incremental(&cfg, &store).unwrap();
        let after = store.activity();
        // The 3 stored traces were reused, the other 3 simulated.
        assert!(after.hits >= before.hits + 3);
        let uninterrupted = run_campaign(&cfg).unwrap();
        assert_eq!(resumed.traces, uninterrupted.traces);
        assert_eq!(resumed.matrix, uninterrupted.matrix);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_artifact_self_heals() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("heal");
        run_campaign_incremental(&cfg, &store).unwrap();
        // Flip one byte in run 0's stored trace.
        let path = store.path_of(run_fingerprint(&cfg, 0), ArtifactKind::Trace);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();

        // Resume in a fresh process image (new store handle, cold LRU):
        // the damage must be detected, recomputed, and republished.
        let store = ArtifactStore::open(store.root()).unwrap();
        let healed = run_campaign_incremental(&cfg, &store).unwrap();
        let plain = run_campaign(&cfg).unwrap();
        assert_eq!(healed.traces, plain.traces);
        assert!(store.activity().corrupt >= 1);
        // The damaged file was republished: a fresh read decodes cleanly.
        assert!(ArtifactStore::open(store.root())
            .unwrap()
            .get::<Trace>(run_fingerprint(&cfg, 0))
            .unwrap()
            .is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn kernel_sweep_reuses_traces_and_graphs() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("ksweep");
        run_campaign_incremental(&cfg, &store).unwrap();
        let other = cfg
            .clone()
            .kernel(crate::config::KernelChoice::VertexHistogram {
                policy: anacin_event_graph::LabelPolicy::EventType,
            });
        let before = store.activity();
        run_campaign_incremental(&other, &store).unwrap();
        let after = store.activity();
        // Traces and graphs hit (2 per run); features and matrix recompute.
        assert!(after.hits >= before.hits + 2 * cfg.runs as u64);
        assert!(after.misses > before.misses);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fingerprints_separate_semantic_inputs_and_ignore_threads() {
        let cfg = small_cfg();
        let base = run_fingerprint(&cfg, 0);
        assert_ne!(base, run_fingerprint(&cfg, 1));
        assert_ne!(base, run_fingerprint(&cfg.clone().nd_percent(50.0), 0));
        assert_ne!(base, run_fingerprint(&cfg.clone().base_seed(99), 0));
        assert_ne!(base, run_fingerprint(&cfg.clone().nodes(4), 0));
        // Same seed reached via different (base_seed, run) splits is the
        // same trace, and gets the same key.
        assert_eq!(
            run_fingerprint(&cfg.clone().base_seed(5), 3),
            run_fingerprint(&cfg.clone().base_seed(7), 1)
        );
        // Kernel affects features and campaign keys, not run keys.
        let other_kernel = cfg
            .clone()
            .kernel(crate::config::KernelChoice::VertexHistogram {
                policy: anacin_event_graph::LabelPolicy::EventType,
            });
        assert_eq!(base, run_fingerprint(&other_kernel, 0));
        assert_ne!(
            features_fingerprint(&cfg, 0),
            features_fingerprint(&other_kernel, 0)
        );
        assert_ne!(
            campaign_fingerprint(&cfg),
            campaign_fingerprint(&other_kernel)
        );
        // Thread count is not key material.
        let mut threaded = cfg.clone();
        threaded.threads = 1;
        assert_eq!(base, run_fingerprint(&threaded, 0));
        assert_eq!(campaign_fingerprint(&cfg), campaign_fingerprint(&threaded));
        // Neither is the kernel-stage schedule: both schedules produce
        // bit-identical artifacts, so they share warm store entries.
        let barrier = cfg.clone().schedule(GramSchedule::Barrier);
        assert_eq!(base, run_fingerprint(&barrier, 0));
        assert_eq!(
            features_fingerprint(&cfg, 0),
            features_fingerprint(&barrier, 0)
        );
        assert_eq!(campaign_fingerprint(&cfg), campaign_fingerprint(&barrier));
    }
}
