//! Incremental, resumable campaigns backed by the content-addressed
//! artifact store (`anacin-store`).
//!
//! Every pipeline product — trace, event graph, per-run feature vector,
//! Gram matrix, distance sample — is a pure function of `(pattern +
//! configuration, seed, ND setting, kernel parameters)`, because the whole
//! pipeline is bit-deterministic for a given key. That makes memoisation
//! sound: [`run_campaign_incremental`] looks every artifact up by
//! fingerprint first and only computes (then publishes) what is missing,
//! so
//!
//! * an interrupted campaign resumes from whatever runs already reached
//!   the store,
//! * regenerating a figure reuses every stored run outright, and
//! * sweeping kernels over the same runs reuses traces and graphs and
//!   recomputes only the kernel-specific stages.
//!
//! The warm path is **bit-identical** to the cold path: codecs are
//! canonical (one byte representation per value) and keys absorb every
//! semantic input, so a warm result and a cold result are the same bytes.
//! The differential tests in this module and in `tests/store.rs` assert
//! exactly that.
//!
//! ## Keys
//!
//! Fingerprints absorb a domain-separation label, [`KEY_SCHEMA`], and the
//! canonical JSON of each semantic field (the config types' serde
//! encodings are stable). `threads` and `schedule` are deliberately
//! excluded: thread count and kernel-stage scheduling never change
//! results, so warm hits survive re-running on a different machine shape
//! or under a different schedule. Changing pipeline semantics requires
//! bumping [`KEY_SCHEMA`], which cleanly invalidates every old key.

use crate::campaign::{check_cancel, CampaignError, CampaignResult, Interrupted};
use crate::config::{CampaignConfig, GramApprox, GramSchedule};
use anacin_event_graph::EventGraph;
use anacin_kernels::approx::landmark_gram;
use anacin_kernels::feature::SparseFeatures;
use anacin_kernels::matrix::{gram_append, gram_from_features_with_dot, KernelMatrix};
use anacin_kernels::pipeline::gram_pipelined_seeded_with_dot;
use anacin_mpisim::engine::{simulate_traced_counted, SimError};
use anacin_mpisim::program::Program;
use anacin_mpisim::trace::Trace;
use anacin_mpisim::SimCounters;
use anacin_obs::{CancelToken, MetricsRegistry, Tracer};
use anacin_store::{
    Artifact, ArtifactStore, DistanceSample, Fingerprint, FingerprintHasher, StoreError,
};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Version of the key material fed into fingerprints. Bump whenever the
/// pipeline's semantics change in a way that should invalidate previously
/// stored artifacts (every old key then misses cleanly).
pub const KEY_SCHEMA: u32 = 1;

/// An incremental campaign failed: either the pipeline itself, or the
/// artifact store underneath it.
#[derive(Debug)]
pub enum IncrementalError {
    /// A seeded run failed to simulate.
    Campaign(CampaignError),
    /// The store failed in a way that is not self-healable (I/O).
    Store(StoreError),
}

impl fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrementalError::Campaign(e) => write!(f, "campaign failed: {e}"),
            IncrementalError::Store(e) => write!(f, "artifact store failed: {e}"),
        }
    }
}

impl std::error::Error for IncrementalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IncrementalError::Campaign(e) => Some(e),
            IncrementalError::Store(e) => Some(e),
        }
    }
}

impl From<CampaignError> for IncrementalError {
    fn from(e: CampaignError) -> Self {
        IncrementalError::Campaign(e)
    }
}

impl From<StoreError> for IncrementalError {
    fn from(e: StoreError) -> Self {
        IncrementalError::Store(e)
    }
}

impl From<StoreError> for Interrupted<IncrementalError> {
    fn from(e: StoreError) -> Self {
        Interrupted::Failed(IncrementalError::Store(e))
    }
}

impl From<CampaignError> for Interrupted<IncrementalError> {
    fn from(e: CampaignError) -> Self {
        Interrupted::Failed(IncrementalError::Campaign(e))
    }
}

/// Absorb a labelled field as canonical JSON. The config types' serde
/// encodings are deterministic (plain structs and enums, no maps), which
/// makes the JSON a stable canonical form.
fn absorb_json<T: serde::Serialize>(h: &mut FingerprintHasher, label: &str, value: &T) {
    h.write_str(label);
    h.write_str(&serde_json::to_string(value).expect("key material serialises"));
}

/// Absorb the per-run semantic inputs shared by every run-level key:
/// everything that determines the bytes of a trace except the seed.
pub(crate) fn absorb_setting(h: &mut FingerprintHasher, config: &CampaignConfig) {
    h.write_u32(KEY_SCHEMA);
    absorb_json(h, "pattern", &config.pattern);
    absorb_json(h, "app", &config.app);
    h.write_str("nd_percent");
    h.write_f64(config.nd_percent);
    h.write_str("nodes");
    h.write_u32(config.nodes);
    absorb_json(h, "delay", &config.delay);
}

/// The fingerprint naming run `run`'s trace and event graph (same key,
/// distinct [`anacin_store::ArtifactKind`]s).
pub fn run_fingerprint(config: &CampaignConfig, run: u32) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("anacin/run");
    absorb_setting(&mut h, config);
    h.write_str("seed");
    h.write_u64(config.base_seed + run as u64);
    h.finish()
}

/// The fingerprint naming run `run`'s feature vector under the campaign's
/// kernel. Extends the run key with the kernel parameters, so sweeping
/// kernels over the same runs stores one vector per (run, kernel).
pub fn features_fingerprint(config: &CampaignConfig, run: u32) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("anacin/features");
    absorb_setting(&mut h, config);
    h.write_str("seed");
    h.write_u64(config.base_seed + run as u64);
    absorb_json(&mut h, "kernel", &config.kernel);
    h.finish()
}

/// The fingerprint naming the campaign-level artifacts (Gram matrix and
/// distance sample): the full run set plus the kernel.
pub fn campaign_fingerprint(config: &CampaignConfig) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("anacin/campaign");
    absorb_setting(&mut h, config);
    h.write_str("runs");
    h.write_u32(config.runs);
    h.write_str("base_seed");
    h.write_u64(config.base_seed);
    absorb_json(&mut h, "kernel", &config.kernel);
    h.finish()
}

/// Fetch an artifact, treating damage as a clean miss so the caller
/// recomputes and overwrites it (self-healing). Only I/O errors propagate.
pub(crate) fn get_or_heal<A: Artifact>(
    store: &ArtifactStore,
    fp: Fingerprint,
) -> Result<Option<A>, StoreError> {
    match store.get::<A>(fp) {
        Ok(v) => Ok(v),
        // A corrupt frame or an undecodable payload both mean the stored
        // bytes are unusable; recomputing is always safe because `put`
        // republishes atomically over the damaged file.
        Err(StoreError::Corrupt { .. }) | Err(StoreError::Decode(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Simulate exactly the given runs (identified by run index) in parallel,
/// with per-worker batched counters. Failure reports the lowest failing
/// run index, matching [`crate::campaign::run_traces_observed`]. Once
/// `cancel` fires, workers stop claiming runs; the caller detects
/// cancellation by the result being shorter than `missing`.
fn simulate_runs(
    program: &Program,
    config: &CampaignConfig,
    missing: &[u32],
    metrics: Option<&MetricsRegistry>,
    cancel: Option<&CancelToken>,
) -> Result<Vec<(u32, Trace)>, CampaignError> {
    if missing.is_empty() {
        // Fully warm: spawn no workers (and create no `sim/*` counters —
        // a warm campaign performs no simulation work to report).
        return Ok(Vec::new());
    }
    let threads = config.threads.max(1).min(missing.len());
    let next = AtomicUsize::new(0);
    let results: Vec<Vec<(u32, Result<Trace, SimError>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let counters = metrics.map(SimCounters::new);
                    let mut local = Vec::new();
                    loop {
                        if cancel.is_some_and(|c| c.is_cancelled()) {
                            break;
                        }
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= missing.len() {
                            break;
                        }
                        let run = missing[slot];
                        let sc = config.sim_config(run);
                        local.push((
                            run,
                            simulate_traced_counted(program, &sc, metrics, None, counters.as_ref()),
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(missing.len());
    let mut failure: Option<CampaignError> = None;
    for chunk in results {
        for (run, r) in chunk {
            match r {
                Ok(t) => out.push((run, t)),
                Err(source) => {
                    if failure.as_ref().is_none_or(|f| run < f.run) {
                        failure = Some(CampaignError {
                            run,
                            seed: config.sim_config(run).seed,
                            source,
                        });
                    }
                }
            }
        }
    }
    if let Some(f) = failure {
        return Err(f);
    }
    out.sort_by_key(|&(run, _)| run);
    Ok(out)
}

/// Run a campaign against an artifact store: reuse every stored artifact,
/// compute and publish the rest. See the module docs for the key scheme
/// and the warm-path bit-identity guarantee.
pub fn run_campaign_incremental(
    config: &CampaignConfig,
    store: &ArtifactStore,
) -> Result<CampaignResult, IncrementalError> {
    run_campaign_incremental_with_metrics(config, store, None)
}

/// [`run_campaign_incremental`] with the same per-stage instrumentation as
/// [`crate::campaign::run_campaign_with_metrics`]. Counters reflect work
/// actually performed: warm runs bump `store/hits` instead of `sim/*`.
pub fn run_campaign_incremental_with_metrics(
    config: &CampaignConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
) -> Result<CampaignResult, IncrementalError> {
    run_campaign_incremental_observed(config, store, metrics, None, 0)
}

/// [`run_campaign_incremental_with_metrics`], plus timeline tracing: with
/// a [`Tracer`], every run's trace — warm or cold — is emitted tagged with
/// `run_base + i`, so a resumed campaign produces the same complete
/// timeline as an uninterrupted one.
pub fn run_campaign_incremental_observed(
    config: &CampaignConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
) -> Result<CampaignResult, IncrementalError> {
    run_campaign_incremental_cancellable(config, store, metrics, tracer, run_base, None)
        .map_err(Interrupted::into_failure)
}

/// [`run_campaign_incremental_observed`] with cooperative cancellation.
/// Every run that finished simulating before `cancel` fired is still
/// published to the store, so a cancelled campaign resumes warm: the
/// daemon's per-job cancellation (client disconnect, timeout, `Cancel`
/// frame) never throws away completed work.
pub fn run_campaign_incremental_cancellable(
    config: &CampaignConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
    cancel: Option<&CancelToken>,
) -> Result<CampaignResult, Interrupted<IncrementalError>> {
    let _campaign_span = metrics.map(|m| m.span("campaign"));
    let program = config.pattern.build(&config.app);
    let runs = config.runs;
    let (traces, graphs) =
        load_or_compute_runs(&program, config, store, metrics, tracer, run_base, cancel)?;

    // Stage 3: per-run feature vectors, then the Gram matrix from them.
    let kernel = config.kernel.instantiate();
    let matrix = {
        let _s = metrics.map(|m| m.span("kernel"));
        let mut feats: Vec<Option<SparseFeatures>> = (0..runs).map(|_| None).collect();
        let mut missing = Vec::new();
        for run in 0..runs {
            match get_or_heal::<SparseFeatures>(store, features_fingerprint(config, run))? {
                Some(f) => feats[run as usize] = Some(f),
                None => missing.push(run as usize),
            }
        }
        if let GramApprox::Landmarks(k) = config.approx {
            // Approximate matrices are never published to (or read from)
            // the store: campaign-level keys name exact artifacts only,
            // so an approximate run can never poison a warm exact one.
            // Per-run features still warm-hit and publish as usual.
            let feats = fill_missing_features(config, store, &graphs, &missing, feats, metrics)?;
            landmark_gram(
                &kernel.name(),
                &feats,
                k,
                config.threads,
                config.dot,
                metrics,
            )
            .matrix
        } else {
            let campaign_fp = campaign_fingerprint(config);
            let stored = get_or_heal::<KernelMatrix>(store, campaign_fp)?;
            if !missing.is_empty() && stored.is_none() && config.schedule == GramSchedule::Pipelined
            {
                // Fused cold/mixed path: warm features seed the pipeline,
                // missing ones are extracted by it, and dot products overlap
                // the feature tail. The pipeline reads `graphs` in place, so
                // no missing-graph clones are made. Bit-identical to the
                // barrier path below (asserted in tests/pipeline.rs).
                let (all, m) = gram_pipelined_seeded_with_dot(
                    kernel.as_ref(),
                    &graphs,
                    feats,
                    config.threads,
                    config.dot,
                    metrics,
                );
                for &i in &missing {
                    store.put(features_fingerprint(config, i as u32), &all[i])?;
                }
                store.put(campaign_fp, &m)?;
                store.put(campaign_fp, &DistanceSample(m.pairwise_distances()))?;
                m
            } else {
                let feats =
                    fill_missing_features(config, store, &graphs, &missing, feats, metrics)?;
                match stored {
                    Some(m) => m,
                    None => {
                        // Fully warm features (or barrier schedule): the plain
                        // from-features Gram — the warm path never changes.
                        let m = gram_from_features_with_dot(
                            &kernel.name(),
                            &feats,
                            config.threads,
                            config.dot,
                            metrics,
                        );
                        store.put(campaign_fp, &m)?;
                        store.put(campaign_fp, &DistanceSample(m.pairwise_distances()))?;
                        m
                    }
                }
            }
        }
    };

    finish_counters(config, &matrix, metrics);
    Ok(CampaignResult {
        config: config.clone(),
        program,
        traces,
        graphs,
        matrix,
    })
}

/// Stages 1–2 of the incremental pipeline: every run's trace and event
/// graph, warm-or-computed and published. Shared verbatim by the full
/// runner and the append runner, so both produce identical artifacts.
fn load_or_compute_runs(
    program: &Program,
    config: &CampaignConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
    cancel: Option<&CancelToken>,
) -> Result<(Vec<Trace>, Vec<EventGraph>), Interrupted<IncrementalError>> {
    let runs = config.runs;

    // Stage 1: traces — load what the store has, simulate the rest.
    let traces: Vec<Trace> = {
        let _s = metrics.map(|m| m.span("simulate"));
        let mut slots: Vec<Option<Trace>> = (0..runs).map(|_| None).collect();
        let mut missing = Vec::new();
        for run in 0..runs {
            match get_or_heal::<Trace>(store, run_fingerprint(config, run))? {
                Some(t) => slots[run as usize] = Some(t),
                None => missing.push(run),
            }
        }
        let simulated = simulate_runs(program, config, &missing, metrics, cancel)?;
        let cancelled = simulated.len() < missing.len();
        for (run, t) in simulated {
            store.put(run_fingerprint(config, run), &t)?;
            slots[run as usize] = Some(t);
        }
        if cancelled {
            let completed = slots.iter().filter(|s| s.is_some()).count() as u32;
            return Err(Interrupted::Cancelled {
                completed_runs: completed,
            });
        }
        slots
            .into_iter()
            .map(|t| t.expect("all slots filled"))
            .collect()
    };
    check_cancel(cancel, runs)?;
    if let Some(t) = tracer {
        for (i, trace) in traces.iter().enumerate() {
            trace.record_into(t, run_base + i as u32);
        }
    }

    // Stage 2: event graphs.
    let graphs: Vec<EventGraph> = {
        let _s = metrics.map(|m| m.span("graph"));
        let mut out = Vec::with_capacity(traces.len());
        for (run, trace) in traces.iter().enumerate() {
            let fp = run_fingerprint(config, run as u32);
            let g = match get_or_heal::<EventGraph>(store, fp)? {
                Some(g) => g,
                None => {
                    let g = EventGraph::from_trace_with_metrics(trace, metrics);
                    store.put(fp, &g)?;
                    g
                }
            };
            out.push(g);
        }
        out
    };
    check_cancel(cancel, runs)?;
    Ok((traces, graphs))
}

/// Extract (and publish) the feature vectors listed in `missing`, then
/// unwrap the fully-filled slot vector. Barrier-style extraction — the
/// same code the mixed/barrier exact path has always used, so published
/// bytes are unchanged.
fn fill_missing_features(
    config: &CampaignConfig,
    store: &ArtifactStore,
    graphs: &[EventGraph],
    missing: &[usize],
    mut feats: Vec<Option<SparseFeatures>>,
    metrics: Option<&MetricsRegistry>,
) -> Result<Vec<SparseFeatures>, StoreError> {
    if !missing.is_empty() {
        let kernel = config.kernel.instantiate();
        let missing_graphs: Vec<EventGraph> = missing.iter().map(|&i| graphs[i].clone()).collect();
        let computed = anacin_kernels::matrix::parallel_features_with_metrics(
            kernel.as_ref(),
            &missing_graphs,
            config.threads,
            metrics,
        );
        for (&i, f) in missing.iter().zip(computed) {
            store.put(features_fingerprint(config, i as u32), &f)?;
            feats[i] = Some(f);
        }
    }
    Ok(feats
        .into_iter()
        .map(|f| f.expect("all slots filled"))
        .collect())
}

/// The end-of-campaign counters shared by every incremental runner.
fn finish_counters(
    config: &CampaignConfig,
    matrix: &KernelMatrix,
    metrics: Option<&MetricsRegistry>,
) {
    if let Some(m) = metrics {
        m.counter("campaign/runs").add(config.runs as u64);
        let nan = anacin_stats::nan_count(&matrix.pairwise_distances());
        m.counter("stats/nan_distances").add(nan as u64);
    }
}

/// Append new runs onto a stored campaign: reuse the largest stored
/// prefix matrix and compute only the new rows/columns.
///
/// For a stored `R`-run campaign extended to `R + 1` runs, the kernel
/// stage performs exactly `R + 1` new dot products (one new row of the
/// Gram matrix, diagonal included) instead of the `O(R²)` a recompute
/// would — the difference between constant-time-per-run and
/// quadratic-per-run growth when a campaign accretes thousands of runs.
/// The extended matrix is published under the extended run-set
/// fingerprint and is **byte-identical** to a cold recompute (asserted by
/// the differential tests below): `gram_append` copies the stored values
/// and computes each new entry by the exact expression the full schedule
/// uses.
///
/// With no stored prefix (or an approximate config, which never publishes
/// campaign-level artifacts) this delegates to
/// [`run_campaign_incremental_cancellable`].
pub fn run_campaign_append(
    config: &CampaignConfig,
    store: &ArtifactStore,
) -> Result<CampaignResult, IncrementalError> {
    run_campaign_append_with_metrics(config, store, None)
}

/// [`run_campaign_append`] with per-stage instrumentation; see
/// [`run_campaign_incremental_with_metrics`].
pub fn run_campaign_append_with_metrics(
    config: &CampaignConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
) -> Result<CampaignResult, IncrementalError> {
    run_campaign_append_cancellable(config, store, metrics, None, 0, None)
        .map_err(Interrupted::into_failure)
}

/// [`run_campaign_append`] with tracing and cooperative cancellation,
/// mirroring [`run_campaign_incremental_cancellable`].
pub fn run_campaign_append_cancellable(
    config: &CampaignConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
    cancel: Option<&CancelToken>,
) -> Result<CampaignResult, Interrupted<IncrementalError>> {
    // Find the largest stored prefix: the campaign key is a pure function
    // of the run set, so a shorter campaign with the same base seed is
    // exactly a prefix of this one.
    let mut prefix: Option<(u32, KernelMatrix)> = None;
    if config.approx == GramApprox::Exact {
        for r in (1..=config.runs).rev() {
            let sub = config.clone().runs(r);
            if let Some(m) = get_or_heal::<KernelMatrix>(store, campaign_fingerprint(&sub))? {
                prefix = Some((r, m));
                break;
            }
        }
    }
    let Some((stored_runs, stored)) = prefix else {
        return run_campaign_incremental_cancellable(
            config, store, metrics, tracer, run_base, cancel,
        );
    };

    let _campaign_span = metrics.map(|m| m.span("campaign"));
    let program = config.pattern.build(&config.app);
    let (traces, graphs) =
        load_or_compute_runs(&program, config, store, metrics, tracer, run_base, cancel)?;

    let matrix = {
        let _s = metrics.map(|m| m.span("kernel"));
        let mut feats: Vec<Option<SparseFeatures>> = (0..config.runs).map(|_| None).collect();
        let mut missing = Vec::new();
        for run in 0..config.runs {
            match get_or_heal::<SparseFeatures>(store, features_fingerprint(config, run))? {
                Some(f) => feats[run as usize] = Some(f),
                None => missing.push(run as usize),
            }
        }
        let feats = fill_missing_features(config, store, &graphs, &missing, feats, metrics)?;
        let mut m = stored;
        for grown in stored_runs + 1..=config.runs {
            m = gram_append(
                &m,
                &feats[..grown as usize],
                config.threads,
                config.dot,
                metrics,
            );
            let fp = campaign_fingerprint(&config.clone().runs(grown));
            store.put(fp, &m)?;
            store.put(fp, &DistanceSample(m.pairwise_distances()))?;
        }
        m
    };

    finish_counters(config, &matrix, metrics);
    Ok(CampaignResult {
        config: config.clone(),
        program,
        traces,
        graphs,
        matrix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use anacin_miniapps::Pattern;
    use anacin_store::ArtifactKind;
    use std::path::PathBuf;

    fn tmp_store(tag: &str) -> (PathBuf, ArtifactStore) {
        let dir = std::env::temp_dir().join(format!(
            "anacin-incremental-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        (dir, store)
    }

    fn small_cfg() -> CampaignConfig {
        CampaignConfig::new(Pattern::MessageRace, 6).runs(6)
    }

    #[test]
    fn cold_run_matches_plain_campaign() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("cold");
        let plain = run_campaign(&cfg).unwrap();
        let cold = run_campaign_incremental(&cfg, &store).unwrap();
        assert_eq!(cold.traces, plain.traces);
        assert_eq!(cold.graphs, plain.graphs);
        assert_eq!(cold.matrix, plain.matrix);
        let a = store.activity();
        assert_eq!(a.hits, 0);
        assert!(a.puts > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn warm_run_is_bit_identical_and_simulates_nothing() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("warm");
        let cold = run_campaign_incremental(&cfg, &store).unwrap();

        let reg = MetricsRegistry::new();
        store.attach_metrics(&reg);
        let warm = run_campaign_incremental_with_metrics(&cfg, &store, Some(&reg)).unwrap();
        assert_eq!(warm.traces, cold.traces);
        assert_eq!(warm.graphs, cold.graphs);
        assert_eq!(warm.matrix, cold.matrix);
        // Byte-level identity of the serialised artifacts.
        for run in 0..cfg.runs {
            assert_eq!(
                warm.traces[run as usize].to_wire(),
                cold.traces[run as usize].to_wire()
            );
        }
        let report = reg.report();
        // Fully warm: every artifact was a hit, nothing was simulated.
        assert_eq!(report.counter("sim/runs"), None);
        // 6 traces + 6 graphs + 6 feature vectors + 1 matrix.
        assert_eq!(report.counter("store/hits"), Some(19));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn interrupted_campaign_resumes_to_identical_result() {
        let cfg = small_cfg();
        // The "interrupted" campaign: only the first 3 runs reached the
        // store (runs share per-seed keys, so a shorter campaign with the
        // same base seed is exactly a prefix).
        let (dir, store) = tmp_store("resume");
        run_campaign_incremental(&cfg.clone().runs(3), &store).unwrap();
        let before = store.activity();
        let resumed = run_campaign_incremental(&cfg, &store).unwrap();
        let after = store.activity();
        // The 3 stored traces were reused, the other 3 simulated.
        assert!(after.hits >= before.hits + 3);
        let uninterrupted = run_campaign(&cfg).unwrap();
        assert_eq!(resumed.traces, uninterrupted.traces);
        assert_eq!(resumed.matrix, uninterrupted.matrix);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_artifact_self_heals() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("heal");
        run_campaign_incremental(&cfg, &store).unwrap();
        // Flip one byte in run 0's stored trace.
        let path = store.path_of(run_fingerprint(&cfg, 0), ArtifactKind::Trace);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();

        // Resume in a fresh process image (new store handle, cold LRU):
        // the damage must be detected, recomputed, and republished.
        let store = ArtifactStore::open(store.root()).unwrap();
        let healed = run_campaign_incremental(&cfg, &store).unwrap();
        let plain = run_campaign(&cfg).unwrap();
        assert_eq!(healed.traces, plain.traces);
        assert!(store.activity().corrupt >= 1);
        // The damaged file was republished: a fresh read decodes cleanly.
        assert!(ArtifactStore::open(store.root())
            .unwrap()
            .get::<Trace>(run_fingerprint(&cfg, 0))
            .unwrap()
            .is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn kernel_sweep_reuses_traces_and_graphs() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("ksweep");
        run_campaign_incremental(&cfg, &store).unwrap();
        let other = cfg
            .clone()
            .kernel(crate::config::KernelChoice::VertexHistogram {
                policy: anacin_event_graph::LabelPolicy::EventType,
            });
        let before = store.activity();
        run_campaign_incremental(&other, &store).unwrap();
        let after = store.activity();
        // Traces and graphs hit (2 per run); features and matrix recompute.
        assert!(after.hits >= before.hits + 2 * cfg.runs as u64);
        assert!(after.misses > before.misses);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fingerprints_separate_semantic_inputs_and_ignore_threads() {
        let cfg = small_cfg();
        let base = run_fingerprint(&cfg, 0);
        assert_ne!(base, run_fingerprint(&cfg, 1));
        assert_ne!(base, run_fingerprint(&cfg.clone().nd_percent(50.0), 0));
        assert_ne!(base, run_fingerprint(&cfg.clone().base_seed(99), 0));
        assert_ne!(base, run_fingerprint(&cfg.clone().nodes(4), 0));
        // Same seed reached via different (base_seed, run) splits is the
        // same trace, and gets the same key.
        assert_eq!(
            run_fingerprint(&cfg.clone().base_seed(5), 3),
            run_fingerprint(&cfg.clone().base_seed(7), 1)
        );
        // Kernel affects features and campaign keys, not run keys.
        let other_kernel = cfg
            .clone()
            .kernel(crate::config::KernelChoice::VertexHistogram {
                policy: anacin_event_graph::LabelPolicy::EventType,
            });
        assert_eq!(base, run_fingerprint(&other_kernel, 0));
        assert_ne!(
            features_fingerprint(&cfg, 0),
            features_fingerprint(&other_kernel, 0)
        );
        assert_ne!(
            campaign_fingerprint(&cfg),
            campaign_fingerprint(&other_kernel)
        );
        // Thread count is not key material.
        let mut threaded = cfg.clone();
        threaded.threads = 1;
        assert_eq!(base, run_fingerprint(&threaded, 0));
        assert_eq!(campaign_fingerprint(&cfg), campaign_fingerprint(&threaded));
        // Neither is the kernel-stage schedule: both schedules produce
        // bit-identical artifacts, so they share warm store entries.
        let barrier = cfg.clone().schedule(GramSchedule::Barrier);
        assert_eq!(base, run_fingerprint(&barrier, 0));
        assert_eq!(
            features_fingerprint(&cfg, 0),
            features_fingerprint(&barrier, 0)
        );
        assert_eq!(campaign_fingerprint(&cfg), campaign_fingerprint(&barrier));
        // Nor the dot-product implementation (bit-identical results) or
        // the approximation mode (approximate matrices are never stored,
        // so the key may only ever name exact artifacts).
        let blocked = cfg.clone().dot(anacin_kernels::feature::DotKind::Blocked);
        let approx = cfg.clone().approx(GramApprox::Landmarks(4));
        for other in [&blocked, &approx] {
            assert_eq!(base, run_fingerprint(other, 0));
            assert_eq!(
                features_fingerprint(&cfg, 0),
                features_fingerprint(other, 0)
            );
            assert_eq!(campaign_fingerprint(&cfg), campaign_fingerprint(other));
        }
    }

    #[test]
    fn append_one_run_does_exactly_r_plus_1_dots_and_matches_cold_recompute() {
        let cfg = small_cfg(); // 6 runs
        let (dir, store) = tmp_store("append");
        run_campaign_incremental(&cfg, &store).unwrap();

        // Append one run: the store holds the 6-run matrix, so the kernel
        // stage must do exactly 7 new dot products (one new row, diagonal
        // included) and extract exactly one new feature vector.
        let cfg7 = cfg.clone().runs(7);
        let reg = MetricsRegistry::new();
        let appended = run_campaign_append_with_metrics(&cfg7, &store, Some(&reg)).unwrap();
        let report = reg.report();
        assert_eq!(report.counter("kernel/dot_products"), Some(7));
        assert_eq!(report.counter("kernel/pipeline_tasks"), Some(7));
        assert_eq!(report.counter("kernel/features"), Some(1));
        assert_eq!(report.counter("sim/runs"), Some(1));

        // The appended matrix and its stored bytes are identical to a cold
        // recompute of the 7-run campaign in a fresh store.
        let (dir2, store2) = tmp_store("append-cold");
        let cold = run_campaign_incremental(&cfg7, &store2).unwrap();
        assert_eq!(appended.matrix, cold.matrix);
        assert_eq!(
            appended
                .matrix
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            cold.matrix
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        let fp = campaign_fingerprint(&cfg7);
        for kind in [ArtifactKind::Gram, ArtifactKind::Distances] {
            let a = std::fs::read(store.path_of(fp, kind)).unwrap();
            let b = std::fs::read(store2.path_of(fp, kind)).unwrap();
            assert_eq!(a, b, "append-published {kind:?} must be byte-identical");
        }
        let _ = std::fs::remove_dir_all(dir);
        let _ = std::fs::remove_dir_all(dir2);
    }

    #[test]
    fn append_is_bit_identical_across_threads_dots_and_store_temperature() {
        use anacin_kernels::feature::DotKind;
        let base_cfg = small_cfg();
        let reference = run_campaign(&base_cfg.clone().runs(8)).unwrap();
        for dot in [DotKind::Scalar, DotKind::Blocked] {
            for threads in [1usize, 2, 8] {
                // Cold store: no prefix exists, so append falls back to the
                // full incremental path.
                let mut cfg = base_cfg.clone().runs(8).dot(dot);
                cfg.threads = threads;
                let (dir, store) = tmp_store(&format!("append-abt-{dot}-{threads}"));
                let cold = run_campaign_append(&cfg, &store).unwrap();
                assert_eq!(
                    cold.matrix, reference.matrix,
                    "cold dot={dot} threads={threads}"
                );
                // Warm store: grow the stored 8-run campaign one run at a
                // time to 10; every intermediate matrix is published, and
                // the final one matches a from-scratch campaign bit for bit.
                let mut grown = cfg.clone();
                for runs in 9..=10 {
                    grown = grown.runs(runs);
                    let r = run_campaign_append(&grown, &store).unwrap();
                    assert_eq!(r.matrix.len(), runs as usize);
                }
                let full = run_campaign(&grown).unwrap();
                let warm = run_campaign_append(&grown, &store).unwrap();
                assert_eq!(warm.matrix, full.matrix, "warm dot={dot} threads={threads}");
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }

    #[test]
    fn append_without_stored_prefix_delegates_to_full_incremental() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("append-fallback");
        let viaappend = run_campaign_append(&cfg, &store).unwrap();
        let plain = run_campaign(&cfg).unwrap();
        assert_eq!(viaappend.matrix, plain.matrix);
        assert_eq!(viaappend.traces, plain.traces);
        // And the store is now warm: a second append is a pure read.
        let reg = MetricsRegistry::new();
        let warm = run_campaign_append_with_metrics(&cfg, &store, Some(&reg)).unwrap();
        assert_eq!(warm.matrix, plain.matrix);
        assert_eq!(reg.report().counter("kernel/dot_products"), None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn approximate_campaigns_never_touch_campaign_level_store_entries() {
        let cfg = small_cfg().approx(GramApprox::Landmarks(3));
        let (dir, store) = tmp_store("approx-store");
        let r = run_campaign_incremental(&cfg, &store).unwrap();
        assert_eq!(r.matrix.len(), cfg.runs as usize);
        // Per-run artifacts were published; the campaign-level matrix and
        // distance sample were not (the key names exact artifacts only).
        let exact = cfg.clone().approx(GramApprox::Exact);
        assert!(store
            .get::<KernelMatrix>(campaign_fingerprint(&exact))
            .unwrap()
            .is_none());
        assert!(store
            .get::<Trace>(run_fingerprint(&exact, 0))
            .unwrap()
            .is_some());
        // A later exact run warm-hits those per-run artifacts and computes
        // the exact matrix untainted.
        let e = run_campaign_incremental(&exact, &store).unwrap();
        assert_eq!(e.matrix, run_campaign(&exact).unwrap().matrix);
        let _ = std::fs::remove_dir_all(dir);
    }
}
