//! Root-cause (callstack) analysis — the paper's Use Case 3 / Figure 8.
//!
//! "The ANACIN-X environment identifies the callstacks in the application
//! and measures their frequency. … the X-axis corresponds to the list of
//! callstacks … identified as taking place during high periods of
//! non-determinism. The Y-axis corresponds to the normalized relative
//! frequency of the identified callstacks" (§III-C2).
//!
//! Pipeline:
//! 1. slice every run's event graph into the same number of windows by
//!    relative program position (run-invariant membership);
//! 2. score each window by how much the runs *disagree* in it (mean
//!    pairwise L1 distance between per-window label histograms);
//! 3. keep the top windows, and within them attribute divergence to
//!    receive events: each receive is weighted by how much its *own
//!    label* disagrees across runs in that window, so a deterministic
//!    receive that merely drifts across a window boundary contributes
//!    little, while a wildcard receive that matched a different sender
//!    contributes its full disagreement;
//! 4. report call paths by normalized relative (weighted) frequency —
//!    wildcard receive paths (the true root sources) rise to the top.

use crate::campaign::CampaignResult;
use anacin_event_graph::label::{initial_labels, LabelPolicy};
use anacin_event_graph::slice::slice_by_position;
use anacin_mpisim::stack::CallStackId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Root-cause analysis parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RootCauseConfig {
    /// Number of logical-time windows per run.
    pub slices: usize,
    /// Fraction of divergent windows considered "high non-determinism"
    /// (e.g. 0.25 keeps the top quartile).
    pub top_fraction: f64,
    /// Label policy used for the per-window divergence score.
    pub policy: LabelPolicy,
}

impl Default for RootCauseConfig {
    fn default() -> Self {
        RootCauseConfig {
            slices: 16,
            top_fraction: 0.25,
            policy: LabelPolicy::TypeAndPeer,
        }
    }
}

/// One ranked call path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallstackFrequency {
    /// The full call path, rendered `outer > … > MPI_xxx`.
    pub stack: String,
    /// The innermost frame (the MPI call).
    pub leaf: String,
    /// Occurrences within high-ND windows, across all runs.
    pub count: u64,
    /// Divergence-weighted occurrence mass, normalised over all ranked
    /// paths (sums to 1). This is the Y axis of the paper's Figure 8.
    pub frequency: f64,
}

/// The output of root-cause analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallstackRanking {
    /// Ranked call paths, most frequent first.
    pub entries: Vec<CallstackFrequency>,
    /// Divergence score per window index.
    pub slice_divergence: Vec<f64>,
    /// The window indices classified as high-ND.
    pub high_slices: Vec<usize>,
}

impl CallstackRanking {
    /// The top-ranked call path, if any.
    pub fn top(&self) -> Option<&CallstackFrequency> {
        self.entries.first()
    }
}

/// Per-window label histograms for one run.
fn window_histograms(
    g: &anacin_event_graph::EventGraph,
    slices: usize,
    policy: LabelPolicy,
) -> Vec<HashMap<u64, f64>> {
    let labels = initial_labels(g, policy);
    slice_by_position(g, slices)
        .into_iter()
        .map(|s| {
            let mut h: HashMap<u64, f64> = HashMap::new();
            for id in &s.nodes {
                *h.entry(labels[id.index()]).or_insert(0.0) += 1.0;
            }
            h
        })
        .collect()
}

fn l1(a: &HashMap<u64, f64>, b: &HashMap<u64, f64>) -> f64 {
    let mut keys: std::collections::HashSet<u64> = a.keys().copied().collect();
    keys.extend(b.keys().copied());
    keys.into_iter()
        .map(|k| (a.get(&k).copied().unwrap_or(0.0) - b.get(&k).copied().unwrap_or(0.0)).abs())
        .sum()
}

/// Run the analysis over a finished campaign.
///
/// # Panics
/// Panics when the campaign has fewer than two runs (nothing to compare)
/// or `config.slices == 0`.
pub fn analyze(result: &CampaignResult, config: &RootCauseConfig) -> CallstackRanking {
    assert!(
        result.graphs.len() >= 2,
        "need at least two runs to compare"
    );
    assert!(config.slices > 0, "need at least one slice");
    let per_run: Vec<Vec<HashMap<u64, f64>>> = result
        .graphs
        .iter()
        .map(|g| window_histograms(g, config.slices, config.policy))
        .collect();
    // Divergence per window: mean pairwise L1 across runs.
    let runs = per_run.len();
    let mut divergence = vec![0.0; config.slices];
    for (s, div) in divergence.iter_mut().enumerate() {
        let mut total = 0.0;
        let mut pairs = 0u64;
        for i in 0..runs {
            for j in (i + 1)..runs {
                total += l1(&per_run[i][s], &per_run[j][s]);
                pairs += 1;
            }
        }
        *div = if pairs > 0 { total / pairs as f64 } else { 0.0 };
    }
    // High-ND windows: top fraction of strictly positive divergences.
    let mut positive: Vec<usize> = (0..config.slices)
        .filter(|&s| divergence[s] > 0.0)
        .collect();
    positive.sort_by(|&a, &b| {
        divergence[b]
            .partial_cmp(&divergence[a])
            .expect("divergences are finite")
    });
    let keep = ((positive.len() as f64 * config.top_fraction).ceil() as usize)
        .max(1)
        .min(positive.len());
    let mut high: Vec<usize> = positive.into_iter().take(keep).collect();
    high.sort_unstable();
    // Per-window, per-label disagreement: how much each label's count
    // varies across runs (mean pairwise |Δcount|). A receive whose label
    // is identical in every run carries no root-cause signal.
    let label_divergence: Vec<HashMap<u64, f64>> = high
        .iter()
        .map(|&s| {
            let mut keys: std::collections::HashSet<u64> = Default::default();
            for hist in per_run.iter().map(|r| &r[s]) {
                keys.extend(hist.keys().copied());
            }
            let mut out = HashMap::new();
            for key in keys {
                let mut total = 0.0;
                let mut pairs = 0u64;
                for i in 0..runs {
                    for j in (i + 1)..runs {
                        let a = per_run[i][s].get(&key).copied().unwrap_or(0.0);
                        let b = per_run[j][s].get(&key).copied().unwrap_or(0.0);
                        total += (a - b).abs();
                        pairs += 1;
                    }
                }
                out.insert(key, if pairs > 0 { total / pairs as f64 } else { 0.0 });
            }
            out
        })
        .collect();
    // Attribute: each receive in a high window adds its label's
    // disagreement to its call path.
    let mut counts: HashMap<CallStackId, u64> = HashMap::new();
    let mut weights: HashMap<CallStackId, f64> = HashMap::new();
    for g in &result.graphs {
        let labels = initial_labels(g, config.policy);
        let slices = slice_by_position(g, config.slices);
        for (hi, &s) in high.iter().enumerate() {
            for &id in &slices[s].nodes {
                let node = g.node(id);
                if node.kind.is_recv() {
                    *counts.entry(node.stack).or_insert(0) += 1;
                    let w = label_divergence[hi]
                        .get(&labels[id.index()])
                        .copied()
                        .unwrap_or(0.0);
                    *weights.entry(node.stack).or_insert(0.0) += w;
                }
            }
        }
    }
    let total_weight: f64 = weights.values().sum();
    let stacks = result.stacks();
    let mut entries: Vec<CallstackFrequency> = counts
        .into_iter()
        .map(|(id, count)| {
            let cs = stacks.resolve(id);
            let w = weights.get(&id).copied().unwrap_or(0.0);
            CallstackFrequency {
                stack: cs.to_string(),
                leaf: cs.leaf().unwrap_or("<unknown>").to_string(),
                count,
                frequency: if total_weight > 0.0 {
                    w / total_weight
                } else {
                    0.0
                },
            }
        })
        .collect();
    entries.sort_by(|a, b| {
        b.frequency
            .partial_cmp(&a.frequency)
            .expect("finite frequencies")
            .then_with(|| b.count.cmp(&a.count))
            .then_with(|| a.stack.cmp(&b.stack))
    });
    CallstackRanking {
        entries,
        slice_divergence: divergence,
        high_slices: high,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::config::CampaignConfig;
    use anacin_miniapps::Pattern;

    #[test]
    fn ranks_racy_receive_paths_first() {
        let r = run_campaign(&CampaignConfig::new(Pattern::Amg2013, 6).runs(8)).unwrap();
        let ranking = analyze(&r, &RootCauseConfig::default());
        assert!(!ranking.entries.is_empty());
        let top = ranking.top().unwrap();
        // The AMG pattern's receives are hypre-style Irecvs — the true
        // root source.
        assert_eq!(top.leaf, "MPI_Irecv", "top path: {}", top.stack);
        assert!(top.stack.contains("hypre"));
        // Frequencies normalise.
        let sum: f64 = ranking.entries.iter().map(|e| e.frequency).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_nd_campaign_has_no_divergence() {
        let r = run_campaign(
            &CampaignConfig::new(Pattern::Amg2013, 4)
                .runs(5)
                .nd_percent(0.0),
        )
        .unwrap();
        let ranking = analyze(&r, &RootCauseConfig::default());
        assert!(ranking.slice_divergence.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn divergence_positive_where_races_happen() {
        let r = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 8).runs(8)).unwrap();
        let ranking = analyze(&r, &RootCauseConfig::default());
        assert!(ranking.slice_divergence.iter().any(|&d| d > 0.0));
        assert!(!ranking.high_slices.is_empty());
        // All highs are in range and sorted.
        for w in ranking.high_slices.windows(2) {
            assert!(w[0] < w[1]);
        }
        // The race's aggregation path surfaces.
        let top = ranking.top().unwrap();
        assert!(
            top.stack.contains("aggregate_results"),
            "top path: {}",
            top.stack
        );
    }

    #[test]
    fn mesh_pattern_surfaces_halo_receives() {
        let r = run_campaign(&CampaignConfig::new(Pattern::UnstructuredMesh, 8).runs(8)).unwrap();
        let ranking = analyze(&r, &RootCauseConfig::default());
        let top = ranking.top().unwrap();
        assert!(
            top.stack.contains("exchange_halo"),
            "top path: {}",
            top.stack
        );
    }

    #[test]
    #[should_panic(expected = "two runs")]
    fn single_run_panics() {
        let r = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 4).runs(1)).unwrap();
        analyze(&r, &RootCauseConfig::default());
    }
}
