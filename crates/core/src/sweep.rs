//! Parameter sweeps: the shape of every evaluation figure.
//!
//! * [`sweep_nd_percent`] — Figure 7 (kernel distance vs injected ND%);
//! * [`sweep_procs`] — Figure 5 (process-count scaling);
//! * [`sweep_iterations`] — Figure 6 (iteration scaling).

use crate::campaign::{run_campaign_with_metrics, CampaignError};
use crate::config::CampaignConfig;
use crate::measure::NdMeasurement;
use anacin_obs::MetricsRegistry;
use anacin_stats::prelude::spearman;

/// One sweep point: the swept value and its measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter value.
    pub x: f64,
    /// The measurement at that value.
    pub measurement: NdMeasurement,
}

/// A finished sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Name of the swept parameter.
    pub parameter: String,
    /// The points, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// `(x, mean distance)` series — the line the paper plots.
    pub fn mean_series(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.x, p.measurement.mean()))
            .collect()
    }

    /// Monotone-up-to-noise check: every mean stays within `tolerance`
    /// (relative) of the running maximum, i.e. the curve may rise and
    /// plateau but never significantly dips. This is the robust form of
    /// the Figure-7 claim at small sample sizes, where rank correlation
    /// over a saturated plateau is dominated by tie noise.
    pub fn is_monotone_within(&self, tolerance: f64) -> bool {
        let mut running_max = f64::NEG_INFINITY;
        for p in &self.points {
            let m = p.measurement.mean();
            if m < running_max * (1.0 - tolerance) {
                return false;
            }
            running_max = running_max.max(m);
        }
        true
    }

    /// Spearman rank correlation between the parameter and the mean
    /// distance — the monotonicity statistic for the Figure-7 claim.
    pub fn spearman_monotonicity(&self) -> f64 {
        let xs: Vec<f64> = self.points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = self.points.iter().map(|p| p.measurement.mean()).collect();
        if xs.len() < 2 {
            return 0.0;
        }
        spearman(&xs, &ys)
    }
}

/// Sweep the ND percentage (Figure 7: 0..=100 in steps of 10 in the
/// paper).
pub fn sweep_nd_percent(base: &CampaignConfig, percents: &[f64]) -> Result<Sweep, CampaignError> {
    sweep_nd_percent_with_metrics(base, percents, None)
}

/// [`sweep_nd_percent`], threading an optional metrics registry through
/// every campaign it runs.
pub fn sweep_nd_percent_with_metrics(
    base: &CampaignConfig,
    percents: &[f64],
    metrics: Option<&MetricsRegistry>,
) -> Result<Sweep, CampaignError> {
    let mut points = Vec::with_capacity(percents.len());
    for &p in percents {
        let cfg = base.clone().nd_percent(p);
        let r = run_campaign_with_metrics(&cfg, metrics)?;
        points.push(SweepPoint {
            x: p,
            measurement: NdMeasurement::from_campaign(format!("nd={p}%"), &r),
        });
    }
    Ok(Sweep {
        parameter: "nd_percent".to_string(),
        points,
    })
}

/// Sweep the process count (Figure 5 compares 16 vs 32).
pub fn sweep_procs(base: &CampaignConfig, procs: &[u32]) -> Result<Sweep, CampaignError> {
    sweep_procs_with_metrics(base, procs, None)
}

/// [`sweep_procs`], threading an optional metrics registry through every
/// campaign it runs.
pub fn sweep_procs_with_metrics(
    base: &CampaignConfig,
    procs: &[u32],
    metrics: Option<&MetricsRegistry>,
) -> Result<Sweep, CampaignError> {
    let mut points = Vec::with_capacity(procs.len());
    for &n in procs {
        let mut cfg = base.clone();
        cfg.app.procs = n;
        let r = run_campaign_with_metrics(&cfg, metrics)?;
        points.push(SweepPoint {
            x: n as f64,
            measurement: NdMeasurement::from_campaign(format!("{n} procs"), &r),
        });
    }
    Ok(Sweep {
        parameter: "procs".to_string(),
        points,
    })
}

/// Sweep the iteration count (Figure 6 compares 1 vs 2).
pub fn sweep_iterations(base: &CampaignConfig, iterations: &[u32]) -> Result<Sweep, CampaignError> {
    sweep_iterations_with_metrics(base, iterations, None)
}

/// [`sweep_iterations`], threading an optional metrics registry through
/// every campaign it runs.
pub fn sweep_iterations_with_metrics(
    base: &CampaignConfig,
    iterations: &[u32],
    metrics: Option<&MetricsRegistry>,
) -> Result<Sweep, CampaignError> {
    let mut points = Vec::with_capacity(iterations.len());
    for &it in iterations {
        let cfg = base.clone().iterations(it);
        let r = run_campaign_with_metrics(&cfg, metrics)?;
        points.push(SweepPoint {
            x: it as f64,
            measurement: NdMeasurement::from_campaign(
                format!("{it} iteration{}", if it == 1 { "" } else { "s" }),
                &r,
            ),
        });
    }
    Ok(Sweep {
        parameter: "iterations".to_string(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_miniapps::Pattern;

    fn small_base(pattern: Pattern, procs: u32, runs: u32) -> CampaignConfig {
        CampaignConfig::new(pattern, procs).runs(runs)
    }

    #[test]
    fn nd_sweep_is_monotone_for_race() {
        let base = small_base(Pattern::MessageRace, 8, 10);
        let sweep = sweep_nd_percent(&base, &[0.0, 25.0, 50.0, 75.0, 100.0]).unwrap();
        assert_eq!(sweep.points.len(), 5);
        // Distance at 0% is exactly zero.
        assert_eq!(sweep.points[0].measurement.mean(), 0.0);
        // Strong monotone trend.
        let rho = sweep.spearman_monotonicity();
        assert!(rho > 0.85, "Spearman rho = {rho}");
    }

    #[test]
    fn proc_sweep_increases_distance() {
        let base = small_base(Pattern::UnstructuredMesh, 4, 10);
        let sweep = sweep_procs(&base, &[4, 16]).unwrap();
        let series = sweep.mean_series();
        assert!(
            series[1].1 > series[0].1,
            "16 procs ({}) must exceed 4 procs ({})",
            series[1].1,
            series[0].1
        );
    }

    #[test]
    fn iteration_sweep_increases_distance() {
        let base = small_base(Pattern::UnstructuredMesh, 8, 10);
        let sweep = sweep_iterations(&base, &[1, 2]).unwrap();
        let series = sweep.mean_series();
        assert!(series[1].1 > series[0].1);
        assert_eq!(sweep.points[0].measurement.label, "1 iteration");
        assert_eq!(sweep.points[1].measurement.label, "2 iterations");
    }

    #[test]
    fn monotone_within_tolerance() {
        let base = small_base(Pattern::MessageRace, 8, 8);
        let sweep = sweep_nd_percent(&base, &[0.0, 25.0, 50.0, 75.0, 100.0]).unwrap();
        assert!(sweep.is_monotone_within(0.05));
        // A strict zero-tolerance check can legitimately fail on plateau
        // noise, but the rising race curve at these points happens to be
        // clean; the meaningful inverse test is a fabricated dip:
        let mut dipped = sweep.clone();
        dipped.points.swap(0, 4); // put the max first: later points dip
        assert!(!dipped.is_monotone_within(0.05));
    }

    #[test]
    fn sweep_series_shapes() {
        let base = small_base(Pattern::MessageRace, 6, 6);
        let sweep = sweep_nd_percent(&base, &[0.0, 100.0]).unwrap();
        assert_eq!(sweep.parameter, "nd_percent");
        assert_eq!(sweep.mean_series().len(), 2);
    }
}
