//! Parameter sweeps: the shape of every evaluation figure.
//!
//! * [`sweep_nd_percent`] — Figure 7 (kernel distance vs injected ND%);
//! * [`sweep_procs`] — Figure 5 (process-count scaling);
//! * [`sweep_iterations`] — Figure 6 (iteration scaling).

use crate::campaign::{
    check_cancel, run_campaign_cancellable, CampaignError, CampaignResult, Interrupted,
};
use crate::config::CampaignConfig;
use crate::incremental::{run_campaign_incremental_cancellable, IncrementalError};
use crate::measure::NdMeasurement;
use anacin_obs::{CancelToken, MetricsRegistry, MetricsReport, Tracer};
use anacin_stats::prelude::spearman;
use anacin_store::ArtifactStore;
use serde::{Deserialize, Serialize};

/// One sweep point: the swept value and its measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter value.
    pub x: f64,
    /// The measurement at that value.
    pub measurement: NdMeasurement,
}

/// A finished sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Name of the swept parameter.
    pub parameter: String,
    /// The points, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// `(x, mean distance)` series — the line the paper plots.
    pub fn mean_series(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.x, p.measurement.mean()))
            .collect()
    }

    /// Monotone-up-to-noise check: every mean stays within `tolerance`
    /// (relative) of the running maximum, i.e. the curve may rise and
    /// plateau but never significantly dips. This is the robust form of
    /// the Figure-7 claim at small sample sizes, where rank correlation
    /// over a saturated plateau is dominated by tie noise.
    pub fn is_monotone_within(&self, tolerance: f64) -> bool {
        let mut running_max = f64::NEG_INFINITY;
        for p in &self.points {
            let m = p.measurement.mean();
            if m < running_max * (1.0 - tolerance) {
                return false;
            }
            running_max = running_max.max(m);
        }
        true
    }

    /// Spearman rank correlation between the parameter and the mean
    /// distance — the monotonicity statistic for the Figure-7 claim.
    pub fn spearman_monotonicity(&self) -> f64 {
        let xs: Vec<f64> = self.points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = self.points.iter().map(|p| p.measurement.mean()).collect();
        if xs.len() < 2 {
            return 0.0;
        }
        spearman(&xs, &ys)
    }
}

/// Per-stage metrics of one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPointMetrics {
    /// Name of the swept parameter (`nd_percent`, `procs`, `iterations`).
    pub parameter: String,
    /// The swept value at this point.
    pub x: f64,
    /// Human label of the point (e.g. `nd=30%`, `8 procs`).
    pub label: String,
    /// This point's own metrics snapshot (stage spans + counters for the
    /// one campaign the point ran).
    pub report: MetricsReport,
}

/// Metrics of an instrumented sweep: one report per point plus their
/// merged aggregate — the per-point breakdown lets stage time be plotted
/// against the swept parameter instead of lumping all campaigns together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepMetrics {
    /// All per-point reports merged ([`MetricsReport::merge`]).
    pub aggregate: MetricsReport,
    /// One entry per sweep point, in sweep order.
    pub points: Vec<SweepPointMetrics>,
}

/// The `(x, label, config)` triples of each sweep kind, built in one
/// place so the plain, instrumented, stored, and cancellable paths can
/// never disagree on labels or configs.
fn nd_configs(base: &CampaignConfig, percents: &[f64]) -> Vec<(f64, String, CampaignConfig)> {
    percents
        .iter()
        .map(|&p| (p, format!("nd={p}%"), base.clone().nd_percent(p)))
        .collect()
}

fn procs_configs(base: &CampaignConfig, procs: &[u32]) -> Vec<(f64, String, CampaignConfig)> {
    procs
        .iter()
        .map(|&n| {
            let mut cfg = base.clone();
            cfg.app.procs = n;
            (n as f64, format!("{n} procs"), cfg)
        })
        .collect()
}

fn iterations_configs(
    base: &CampaignConfig,
    iterations: &[u32],
) -> Vec<(f64, String, CampaignConfig)> {
    iterations
        .iter()
        .map(|&it| {
            (
                it as f64,
                format!("{it} iteration{}", if it == 1 { "" } else { "s" }),
                base.clone().iterations(it),
            )
        })
        .collect()
}

/// Run each point's campaign through `run`, checking the cancel token
/// between points. `Interrupted::Cancelled` reports runs completed
/// across the whole sweep, not just the point that was interrupted.
fn sweep_points<E>(
    parameter: &str,
    configs: Vec<(f64, String, CampaignConfig)>,
    cancel: Option<&CancelToken>,
    mut run: impl FnMut(&CampaignConfig) -> Result<CampaignResult, Interrupted<E>>,
) -> Result<Sweep, Interrupted<E>> {
    let mut points = Vec::with_capacity(configs.len());
    let mut done_runs = 0u32;
    for (x, label, cfg) in configs {
        check_cancel(cancel, done_runs)?;
        let r = match run(&cfg) {
            Ok(r) => r,
            Err(Interrupted::Cancelled { completed_runs }) => {
                return Err(Interrupted::Cancelled {
                    completed_runs: done_runs + completed_runs,
                })
            }
            Err(e) => return Err(e),
        };
        done_runs += cfg.runs;
        points.push(SweepPoint {
            x,
            measurement: NdMeasurement::from_campaign(label, &r),
        });
    }
    Ok(Sweep {
        parameter: parameter.to_string(),
        points,
    })
}

/// Run one sweep point per `(x, label, config)` triple, giving each point
/// its own registry so stage costs stay attributable per point. A shared
/// [`Tracer`] (optionally) collects all points' timelines, with run ids
/// offset by `point_index * base_runs` so they never collide.
fn sweep_instrumented_impl(
    parameter: &str,
    configs: Vec<(f64, String, CampaignConfig)>,
    tracer: Option<&Tracer>,
    cancel: Option<&CancelToken>,
) -> Result<(Sweep, SweepMetrics), Interrupted<CampaignError>> {
    let mut points = Vec::with_capacity(configs.len());
    let mut metric_points = Vec::with_capacity(configs.len());
    let mut aggregate = MetricsReport::default();
    let mut run_base = 0u32;
    let mut done_runs = 0u32;
    for (x, label, cfg) in configs {
        check_cancel(cancel, done_runs)?;
        let reg = MetricsRegistry::new();
        if let Some(t) = tracer {
            reg.attach_tracer(t);
        }
        let r = match run_campaign_cancellable(&cfg, Some(&reg), tracer, run_base, cancel) {
            Ok(r) => r,
            Err(Interrupted::Cancelled { completed_runs }) => {
                return Err(Interrupted::Cancelled {
                    completed_runs: done_runs + completed_runs,
                })
            }
            Err(e) => return Err(e),
        };
        run_base += cfg.runs;
        done_runs += cfg.runs;
        let report = reg.report();
        aggregate.merge(&report);
        metric_points.push(SweepPointMetrics {
            parameter: parameter.to_string(),
            x,
            label: label.clone(),
            report,
        });
        points.push(SweepPoint {
            x,
            measurement: NdMeasurement::from_campaign(label, &r),
        });
    }
    Ok((
        Sweep {
            parameter: parameter.to_string(),
            points,
        },
        SweepMetrics {
            aggregate,
            points: metric_points,
        },
    ))
}

/// Sweep the ND percentage (Figure 7: 0..=100 in steps of 10 in the
/// paper).
pub fn sweep_nd_percent(base: &CampaignConfig, percents: &[f64]) -> Result<Sweep, CampaignError> {
    sweep_nd_percent_with_metrics(base, percents, None)
}

/// [`sweep_nd_percent`], threading an optional metrics registry through
/// every campaign it runs.
pub fn sweep_nd_percent_with_metrics(
    base: &CampaignConfig,
    percents: &[f64],
    metrics: Option<&MetricsRegistry>,
) -> Result<Sweep, CampaignError> {
    sweep_nd_percent_cancellable(base, percents, metrics, None).map_err(Interrupted::into_failure)
}

/// [`sweep_nd_percent_with_metrics`] with cooperative cancellation: the
/// token is checked between points and inside each campaign, so a
/// SIGINT (CLI) or a `Cancel` frame (daemon) stops after the in-flight
/// run finishes.
pub fn sweep_nd_percent_cancellable(
    base: &CampaignConfig,
    percents: &[f64],
    metrics: Option<&MetricsRegistry>,
    cancel: Option<&CancelToken>,
) -> Result<Sweep, Interrupted<CampaignError>> {
    sweep_points("nd_percent", nd_configs(base, percents), cancel, |cfg| {
        run_campaign_cancellable(cfg, metrics, None, 0, cancel)
    })
}

/// [`sweep_nd_percent`], instrumented per point: each point runs under
/// its own registry (reported in [`SweepMetrics::points`]) and an
/// optional shared tracer collects every run's timeline with unique run
/// ids. Measurements are bit-identical to the plain sweep.
pub fn sweep_nd_percent_instrumented(
    base: &CampaignConfig,
    percents: &[f64],
    tracer: Option<&Tracer>,
) -> Result<(Sweep, SweepMetrics), CampaignError> {
    sweep_nd_percent_instrumented_cancellable(base, percents, tracer, None)
        .map_err(Interrupted::into_failure)
}

/// [`sweep_nd_percent_instrumented`] with cooperative cancellation.
pub fn sweep_nd_percent_instrumented_cancellable(
    base: &CampaignConfig,
    percents: &[f64],
    tracer: Option<&Tracer>,
    cancel: Option<&CancelToken>,
) -> Result<(Sweep, SweepMetrics), Interrupted<CampaignError>> {
    sweep_instrumented_impl("nd_percent", nd_configs(base, percents), tracer, cancel)
}

/// [`sweep_nd_percent`] against an artifact store: every campaign in the
/// sweep runs incrementally ([`run_campaign_incremental_with_metrics`]),
/// so re-running a sweep — or regenerating a figure from it — reuses every
/// stored run. Measurements are bit-identical to the plain sweep.
pub fn sweep_nd_percent_stored(
    base: &CampaignConfig,
    percents: &[f64],
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
) -> Result<Sweep, IncrementalError> {
    sweep_nd_percent_stored_cancellable(base, percents, store, metrics, None)
        .map_err(Interrupted::into_failure)
}

/// [`sweep_nd_percent_stored`] with cooperative cancellation; completed
/// runs are published before the sweep stops, so it resumes warm.
pub fn sweep_nd_percent_stored_cancellable(
    base: &CampaignConfig,
    percents: &[f64],
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
    cancel: Option<&CancelToken>,
) -> Result<Sweep, Interrupted<IncrementalError>> {
    sweep_points("nd_percent", nd_configs(base, percents), cancel, |cfg| {
        run_campaign_incremental_cancellable(cfg, store, metrics, None, 0, cancel)
    })
}

/// Sweep the process count (Figure 5 compares 16 vs 32).
pub fn sweep_procs(base: &CampaignConfig, procs: &[u32]) -> Result<Sweep, CampaignError> {
    sweep_procs_with_metrics(base, procs, None)
}

/// [`sweep_procs`], threading an optional metrics registry through every
/// campaign it runs.
pub fn sweep_procs_with_metrics(
    base: &CampaignConfig,
    procs: &[u32],
    metrics: Option<&MetricsRegistry>,
) -> Result<Sweep, CampaignError> {
    sweep_procs_cancellable(base, procs, metrics, None).map_err(Interrupted::into_failure)
}

/// [`sweep_procs_with_metrics`] with cooperative cancellation — see
/// [`sweep_nd_percent_cancellable`].
pub fn sweep_procs_cancellable(
    base: &CampaignConfig,
    procs: &[u32],
    metrics: Option<&MetricsRegistry>,
    cancel: Option<&CancelToken>,
) -> Result<Sweep, Interrupted<CampaignError>> {
    sweep_points("procs", procs_configs(base, procs), cancel, |cfg| {
        run_campaign_cancellable(cfg, metrics, None, 0, cancel)
    })
}

/// [`sweep_procs`], instrumented per point — see
/// [`sweep_nd_percent_instrumented`].
pub fn sweep_procs_instrumented(
    base: &CampaignConfig,
    procs: &[u32],
    tracer: Option<&Tracer>,
) -> Result<(Sweep, SweepMetrics), CampaignError> {
    sweep_procs_instrumented_cancellable(base, procs, tracer, None)
        .map_err(Interrupted::into_failure)
}

/// [`sweep_procs_instrumented`] with cooperative cancellation.
pub fn sweep_procs_instrumented_cancellable(
    base: &CampaignConfig,
    procs: &[u32],
    tracer: Option<&Tracer>,
    cancel: Option<&CancelToken>,
) -> Result<(Sweep, SweepMetrics), Interrupted<CampaignError>> {
    sweep_instrumented_impl("procs", procs_configs(base, procs), tracer, cancel)
}

/// [`sweep_procs`] against an artifact store — see
/// [`sweep_nd_percent_stored`].
pub fn sweep_procs_stored(
    base: &CampaignConfig,
    procs: &[u32],
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
) -> Result<Sweep, IncrementalError> {
    sweep_procs_stored_cancellable(base, procs, store, metrics, None)
        .map_err(Interrupted::into_failure)
}

/// [`sweep_procs_stored`] with cooperative cancellation — see
/// [`sweep_nd_percent_stored_cancellable`].
pub fn sweep_procs_stored_cancellable(
    base: &CampaignConfig,
    procs: &[u32],
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
    cancel: Option<&CancelToken>,
) -> Result<Sweep, Interrupted<IncrementalError>> {
    sweep_points("procs", procs_configs(base, procs), cancel, |cfg| {
        run_campaign_incremental_cancellable(cfg, store, metrics, None, 0, cancel)
    })
}

/// Sweep the iteration count (Figure 6 compares 1 vs 2).
pub fn sweep_iterations(base: &CampaignConfig, iterations: &[u32]) -> Result<Sweep, CampaignError> {
    sweep_iterations_with_metrics(base, iterations, None)
}

/// [`sweep_iterations`], threading an optional metrics registry through
/// every campaign it runs.
pub fn sweep_iterations_with_metrics(
    base: &CampaignConfig,
    iterations: &[u32],
    metrics: Option<&MetricsRegistry>,
) -> Result<Sweep, CampaignError> {
    sweep_iterations_cancellable(base, iterations, metrics, None).map_err(Interrupted::into_failure)
}

/// [`sweep_iterations_with_metrics`] with cooperative cancellation — see
/// [`sweep_nd_percent_cancellable`].
pub fn sweep_iterations_cancellable(
    base: &CampaignConfig,
    iterations: &[u32],
    metrics: Option<&MetricsRegistry>,
    cancel: Option<&CancelToken>,
) -> Result<Sweep, Interrupted<CampaignError>> {
    sweep_points(
        "iterations",
        iterations_configs(base, iterations),
        cancel,
        |cfg| run_campaign_cancellable(cfg, metrics, None, 0, cancel),
    )
}

/// [`sweep_iterations`] against an artifact store — see
/// [`sweep_nd_percent_stored`].
pub fn sweep_iterations_stored(
    base: &CampaignConfig,
    iterations: &[u32],
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
) -> Result<Sweep, IncrementalError> {
    sweep_iterations_stored_cancellable(base, iterations, store, metrics, None)
        .map_err(Interrupted::into_failure)
}

/// [`sweep_iterations_stored`] with cooperative cancellation — see
/// [`sweep_nd_percent_stored_cancellable`].
pub fn sweep_iterations_stored_cancellable(
    base: &CampaignConfig,
    iterations: &[u32],
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
    cancel: Option<&CancelToken>,
) -> Result<Sweep, Interrupted<IncrementalError>> {
    sweep_points(
        "iterations",
        iterations_configs(base, iterations),
        cancel,
        |cfg| run_campaign_incremental_cancellable(cfg, store, metrics, None, 0, cancel),
    )
}

/// [`sweep_iterations`], instrumented per point — see
/// [`sweep_nd_percent_instrumented`].
pub fn sweep_iterations_instrumented(
    base: &CampaignConfig,
    iterations: &[u32],
    tracer: Option<&Tracer>,
) -> Result<(Sweep, SweepMetrics), CampaignError> {
    sweep_iterations_instrumented_cancellable(base, iterations, tracer, None)
        .map_err(Interrupted::into_failure)
}

/// [`sweep_iterations_instrumented`] with cooperative cancellation.
pub fn sweep_iterations_instrumented_cancellable(
    base: &CampaignConfig,
    iterations: &[u32],
    tracer: Option<&Tracer>,
    cancel: Option<&CancelToken>,
) -> Result<(Sweep, SweepMetrics), Interrupted<CampaignError>> {
    sweep_instrumented_impl(
        "iterations",
        iterations_configs(base, iterations),
        tracer,
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_miniapps::Pattern;

    fn small_base(pattern: Pattern, procs: u32, runs: u32) -> CampaignConfig {
        CampaignConfig::new(pattern, procs).runs(runs)
    }

    #[test]
    fn nd_sweep_is_monotone_for_race() {
        let base = small_base(Pattern::MessageRace, 8, 10);
        let sweep = sweep_nd_percent(&base, &[0.0, 25.0, 50.0, 75.0, 100.0]).unwrap();
        assert_eq!(sweep.points.len(), 5);
        // Distance at 0% is exactly zero.
        assert_eq!(sweep.points[0].measurement.mean(), 0.0);
        // Strong monotone trend.
        let rho = sweep.spearman_monotonicity();
        assert!(rho > 0.85, "Spearman rho = {rho}");
    }

    #[test]
    fn proc_sweep_increases_distance() {
        let base = small_base(Pattern::UnstructuredMesh, 4, 10);
        let sweep = sweep_procs(&base, &[4, 16]).unwrap();
        let series = sweep.mean_series();
        assert!(
            series[1].1 > series[0].1,
            "16 procs ({}) must exceed 4 procs ({})",
            series[1].1,
            series[0].1
        );
    }

    #[test]
    fn iteration_sweep_increases_distance() {
        let base = small_base(Pattern::UnstructuredMesh, 8, 10);
        let sweep = sweep_iterations(&base, &[1, 2]).unwrap();
        let series = sweep.mean_series();
        assert!(series[1].1 > series[0].1);
        assert_eq!(sweep.points[0].measurement.label, "1 iteration");
        assert_eq!(sweep.points[1].measurement.label, "2 iterations");
    }

    #[test]
    fn monotone_within_tolerance() {
        let base = small_base(Pattern::MessageRace, 8, 8);
        let sweep = sweep_nd_percent(&base, &[0.0, 25.0, 50.0, 75.0, 100.0]).unwrap();
        assert!(sweep.is_monotone_within(0.05));
        // A strict zero-tolerance check can legitimately fail on plateau
        // noise, but the rising race curve at these points happens to be
        // clean; the meaningful inverse test is a fabricated dip:
        let mut dipped = sweep.clone();
        dipped.points.swap(0, 4); // put the max first: later points dip
        assert!(!dipped.is_monotone_within(0.05));
    }

    #[test]
    fn instrumented_sweep_matches_plain_and_reports_per_point() {
        let base = small_base(Pattern::MessageRace, 6, 5);
        let percents = [0.0, 50.0, 100.0];
        let plain = sweep_nd_percent(&base, &percents).unwrap();
        let tracer = Tracer::with_capacity(1 << 16);
        let (sweep, metrics) =
            sweep_nd_percent_instrumented(&base, &percents, Some(&tracer)).unwrap();
        // Instrumentation is bit-exact.
        assert_eq!(sweep.mean_series(), plain.mean_series());
        // One report per point, each covering one campaign.
        assert_eq!(metrics.points.len(), 3);
        for (pm, &p) in metrics.points.iter().zip(&percents) {
            assert_eq!(pm.parameter, "nd_percent");
            assert_eq!(pm.x, p);
            assert_eq!(pm.report.counter("campaign/runs"), Some(5));
            assert!(
                pm.report.span("campaign/simulate").is_some(),
                "{}",
                pm.label
            );
        }
        // The aggregate is the sum of the points.
        assert_eq!(metrics.aggregate.counter("campaign/runs"), Some(15));
        // The shared tracer saw every run exactly once, with unique ids
        // offset per point.
        let runs: Vec<u32> = tracer
            .snapshot()
            .sim_events_per_run()
            .iter()
            .map(|&(r, _)| r)
            .collect();
        assert_eq!(runs, (0..15).collect::<Vec<u32>>());
    }

    #[test]
    fn sweep_metrics_round_trip_json() {
        let base = small_base(Pattern::MessageRace, 4, 3);
        let (_, metrics) = sweep_procs_instrumented(&base, &[4, 6], None).unwrap();
        let json = serde_json::to_string_pretty(&metrics).unwrap();
        let back: SweepMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn stored_sweep_matches_plain_and_rerun_is_warm() {
        let dir =
            std::env::temp_dir().join(format!("anacin-sweep-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = anacin_store::ArtifactStore::open(&dir).unwrap();
        let base = small_base(Pattern::MessageRace, 6, 5);
        let percents = [0.0, 100.0];
        let plain = sweep_nd_percent(&base, &percents).unwrap();
        let cold = sweep_nd_percent_stored(&base, &percents, &store, None).unwrap();
        assert_eq!(cold.mean_series(), plain.mean_series());
        let puts_after_cold = store.activity().puts;
        let warm = sweep_nd_percent_stored(&base, &percents, &store, None).unwrap();
        assert_eq!(warm.mean_series(), plain.mean_series());
        // The warm sweep published nothing new.
        assert_eq!(store.activity().puts, puts_after_cold);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sweep_series_shapes() {
        let base = small_base(Pattern::MessageRace, 6, 6);
        let sweep = sweep_nd_percent(&base, &[0.0, 100.0]).unwrap();
        assert_eq!(sweep.parameter, "nd_percent");
        assert_eq!(sweep.mean_series().len(), 2);
    }
}
