//! The campaign runner: simulate N seeded runs in parallel, build their
//! event graphs, and compute the kernel matrix.
//!
//! This is the paper's experimental loop ("run the same application many
//! times to collect a sample of non-deterministic executions", §III-B),
//! compressed from cluster-hours to milliseconds by the simulator.

use crate::config::CampaignConfig;
use anacin_event_graph::EventGraph;
use anacin_kernels::matrix::{gram_matrix, KernelMatrix};
use anacin_mpisim::engine::{simulate, SimError};
use anacin_mpisim::program::Program;
use anacin_mpisim::stack::CallStackTable;
use anacin_mpisim::trace::Trace;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The artifacts of one campaign.
pub struct CampaignResult {
    /// The configuration that produced the result.
    pub config: CampaignConfig,
    /// The program all runs executed.
    pub program: Program,
    /// One trace per run (seed = `base_seed + i`).
    pub traces: Vec<Trace>,
    /// One event graph per run.
    pub graphs: Vec<EventGraph>,
    /// The kernel matrix over all runs.
    pub matrix: KernelMatrix,
}

impl CampaignResult {
    /// The interned call-path table (shared by every run).
    pub fn stacks(&self) -> &CallStackTable {
        self.program.stacks()
    }

    /// The kernel-distance sample: all pairwise distances between runs —
    /// the data behind the paper's violins.
    pub fn distance_sample(&self) -> Vec<f64> {
        self.matrix.pairwise_distances()
    }

    /// The scalar "measured amount of non-determinism": the mean pairwise
    /// kernel distance.
    pub fn mean_distance(&self) -> f64 {
        self.matrix.mean_pairwise_distance()
    }
}

/// Simulate the campaign's runs in parallel.
pub fn run_traces(program: &Program, config: &CampaignConfig) -> Result<Vec<Trace>, SimError> {
    let runs = config.runs as usize;
    let threads = config.threads.max(1).min(runs.max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Vec<(usize, Result<Trace, SimError>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= runs {
                            break;
                        }
                        let sc = config.sim_config(i as u32);
                        local.push((i, simulate(program, &sc)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<Trace>> = (0..runs).map(|_| None).collect();
    for chunk in results {
        for (i, r) in chunk {
            out[i] = Some(r?);
        }
    }
    Ok(out
        .into_iter()
        .map(|t| t.expect("all slots filled"))
        .collect())
}

/// Run a full campaign: simulate, graph, and measure.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignResult, SimError> {
    let program = config.pattern.build(&config.app);
    let traces = run_traces(&program, config)?;
    let graphs: Vec<EventGraph> = traces.iter().map(EventGraph::from_trace).collect();
    let kernel = config.kernel.instantiate();
    let matrix = gram_matrix(kernel.as_ref(), &graphs, config.threads);
    Ok(CampaignResult {
        config: config.clone(),
        program,
        traces,
        graphs,
        matrix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_miniapps::Pattern;

    #[test]
    fn campaign_produces_consistent_artifacts() {
        let cfg = CampaignConfig::new(Pattern::MessageRace, 6).runs(8);
        let r = run_campaign(&cfg).unwrap();
        assert_eq!(r.traces.len(), 8);
        assert_eq!(r.graphs.len(), 8);
        assert_eq!(r.matrix.len(), 8);
        assert_eq!(r.distance_sample().len(), 8 * 7 / 2);
        for t in &r.traces {
            assert_eq!(t.meta.unmatched_messages, 0);
        }
    }

    #[test]
    fn zero_nd_campaign_has_zero_distance() {
        let cfg = CampaignConfig::new(Pattern::MessageRace, 6)
            .nd_percent(0.0)
            .runs(6);
        let r = run_campaign(&cfg).unwrap();
        assert_eq!(r.mean_distance(), 0.0);
    }

    #[test]
    fn full_nd_campaign_has_positive_distance() {
        let cfg = CampaignConfig::new(Pattern::MessageRace, 8).runs(10);
        let r = run_campaign(&cfg).unwrap();
        assert!(r.mean_distance() > 0.0);
    }

    #[test]
    fn campaign_is_reproducible() {
        let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 6).runs(6);
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.distance_sample(), b.distance_sample());
    }

    #[test]
    fn different_base_seeds_usually_differ() {
        let a = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 8).runs(6))
            .unwrap()
            .mean_distance();
        let b = run_campaign(
            &CampaignConfig::new(Pattern::MessageRace, 8)
                .runs(6)
                .base_seed(5000),
        )
        .unwrap()
        .mean_distance();
        // Not a hard invariant, but with continuous delays a collision is
        // effectively impossible.
        assert_ne!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_measurement() {
        let mut cfg = CampaignConfig::new(Pattern::Amg2013, 4).runs(6);
        cfg.threads = 1;
        let a = run_campaign(&cfg).unwrap();
        cfg.threads = 8;
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.distance_sample(), b.distance_sample());
    }
}
