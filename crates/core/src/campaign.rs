//! The campaign runner: simulate N seeded runs in parallel, build their
//! event graphs, and compute the kernel matrix.
//!
//! This is the paper's experimental loop ("run the same application many
//! times to collect a sample of non-deterministic executions", §III-B),
//! compressed from cluster-hours to milliseconds by the simulator.

use crate::config::{CampaignConfig, GramApprox, GramSchedule};
use anacin_event_graph::EventGraph;
use anacin_kernels::approx::landmark_gram;
use anacin_kernels::feature::SparseFeatures;
use anacin_kernels::kernel::GraphKernel;
use anacin_kernels::matrix::{
    gram_from_features_with_dot, parallel_features_with_metrics, KernelMatrix,
};
use anacin_kernels::pipeline::gram_pipelined_seeded_with_dot;
use anacin_mpisim::engine::{simulate_traced_counted, SimError};
use anacin_mpisim::program::Program;
use anacin_mpisim::stack::CallStackTable;
use anacin_mpisim::trace::Trace;
use anacin_mpisim::SimCounters;
use anacin_obs::{CancelToken, MetricsRegistry, Tracer};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A campaign run failed. Identifies *which* seeded run died so the failure
/// can be replayed directly (`seed` is the exact simulator seed), rather
/// than reporting only the underlying simulator error.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignError {
    /// Index of the failing run (0-based; the lowest index on multi-failure).
    pub run: u32,
    /// The simulator seed that run used (`base_seed + run`).
    pub seed: u64,
    /// The underlying simulator failure.
    pub source: SimError,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run {} (seed {}) failed: {}",
            self.run, self.seed, self.source
        )
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Why a cancellable pipeline stopped early: either the work itself
/// failed, or a [`CancelToken`] fired and the pipeline wound down
/// cooperatively — the run each worker was simulating completes
/// ("finish the current run"), nothing new starts.
#[derive(Debug, Clone, PartialEq)]
pub enum Interrupted<E> {
    /// The underlying pipeline failed on its own.
    Failed(E),
    /// The cancel token fired before the campaign finished.
    Cancelled {
        /// Runs that had fully completed when the pipeline stopped.
        completed_runs: u32,
    },
}

impl<E: fmt::Display> fmt::Display for Interrupted<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupted::Failed(e) => e.fmt(f),
            Interrupted::Cancelled { completed_runs } => {
                write!(f, "cancelled after {completed_runs} completed run(s)")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for Interrupted<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Interrupted::Failed(e) => Some(e),
            Interrupted::Cancelled { .. } => None,
        }
    }
}

impl<E> From<E> for Interrupted<E> {
    fn from(e: E) -> Self {
        Interrupted::Failed(e)
    }
}

impl<E> Interrupted<E> {
    /// Unwrap the `Failed` case. Only for callers that supplied no
    /// cancel token — the `Cancelled` arm is unreachable then, and this
    /// panics if it is hit anyway.
    pub fn into_failure(self) -> E {
        match self {
            Interrupted::Failed(e) => e,
            Interrupted::Cancelled { .. } => {
                unreachable!("cancelled without a cancel token")
            }
        }
    }
}

/// `Err(Cancelled)` once `cancel` has fired — the between-stage
/// checkpoint every cancellable pipeline polls.
pub(crate) fn check_cancel<E>(
    cancel: Option<&CancelToken>,
    completed_runs: u32,
) -> Result<(), Interrupted<E>> {
    if cancel.is_some_and(|c| c.is_cancelled()) {
        Err(Interrupted::Cancelled { completed_runs })
    } else {
        Ok(())
    }
}

/// The artifacts of one campaign.
pub struct CampaignResult {
    /// The configuration that produced the result.
    pub config: CampaignConfig,
    /// The program all runs executed.
    pub program: Program,
    /// One trace per run (seed = `base_seed + i`).
    pub traces: Vec<Trace>,
    /// One event graph per run.
    pub graphs: Vec<EventGraph>,
    /// The kernel matrix over all runs.
    pub matrix: KernelMatrix,
}

impl CampaignResult {
    /// The interned call-path table (shared by every run).
    pub fn stacks(&self) -> &CallStackTable {
        self.program.stacks()
    }

    /// The kernel-distance sample: all pairwise distances between runs —
    /// the data behind the paper's violins.
    pub fn distance_sample(&self) -> Vec<f64> {
        self.matrix.pairwise_distances()
    }

    /// The scalar "measured amount of non-determinism": the mean pairwise
    /// kernel distance.
    pub fn mean_distance(&self) -> f64 {
        self.matrix.mean_pairwise_distance()
    }
}

/// Simulate the campaign's runs in parallel.
pub fn run_traces(program: &Program, config: &CampaignConfig) -> Result<Vec<Trace>, CampaignError> {
    run_traces_with_metrics(program, config, None)
}

/// [`run_traces`], additionally flushing per-run simulator counters into
/// `metrics` when a registry is supplied. Traces are identical either way.
pub fn run_traces_with_metrics(
    program: &Program,
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
) -> Result<Vec<Trace>, CampaignError> {
    run_traces_observed(program, config, metrics, None, 0)
}

/// [`run_traces_with_metrics`], plus timeline tracing: with a [`Tracer`],
/// every run's finished trace is emitted as simulated-time records tagged
/// with run index `run_base + i` (the offset keeps run ids unique when one
/// tracer spans several campaigns, e.g. across sweep points). Tracing
/// happens after each simulation completes, so traces are bit-identical
/// to an unobserved run.
pub fn run_traces_observed(
    program: &Program,
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
) -> Result<Vec<Trace>, CampaignError> {
    run_traces_cancellable(program, config, metrics, tracer, run_base, None)
        .map_err(Interrupted::into_failure)
}

/// [`run_traces_observed`] with cooperative cancellation: once `cancel`
/// fires, workers stop claiming new runs (the run each one is simulating
/// completes — a half-simulated trace is never observable), and the call
/// returns [`Interrupted::Cancelled`] with the number of finished runs.
pub fn run_traces_cancellable(
    program: &Program,
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
    cancel: Option<&CancelToken>,
) -> Result<Vec<Trace>, Interrupted<CampaignError>> {
    let runs = config.runs as usize;
    let threads = config.threads.max(1).min(runs.max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Vec<(usize, Result<Trace, SimError>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    // One set of pre-resolved counter handles per worker:
                    // the registry map locks once here, and every run's
                    // counter flush is then a handful of lock-free atomic
                    // adds — large campaigns and resumes no longer
                    // serialise on the registry mutex.
                    let counters = metrics.map(SimCounters::new);
                    let mut local = Vec::new();
                    loop {
                        if cancel.is_some_and(|c| c.is_cancelled()) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= runs {
                            break;
                        }
                        let sc = config.sim_config(i as u32);
                        let t = tracer.map(|t| (t, run_base + i as u32));
                        local.push((
                            i,
                            simulate_traced_counted(program, &sc, metrics, t, counters.as_ref()),
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<Trace>> = (0..runs).map(|_| None).collect();
    // Keep the *lowest* failing run index so the reported failure is
    // deterministic no matter how runs were interleaved across workers.
    let mut failure: Option<CampaignError> = None;
    for chunk in results {
        for (i, r) in chunk {
            match r {
                Ok(t) => out[i] = Some(t),
                Err(source) => {
                    let run = i as u32;
                    if failure.as_ref().is_none_or(|f| run < f.run) {
                        failure = Some(CampaignError {
                            run,
                            seed: config.sim_config(run).seed,
                            source,
                        });
                    }
                }
            }
        }
    }
    if let Some(f) = failure {
        return Err(Interrupted::Failed(f));
    }
    // Runs are claimed in index order and every claimed run completes,
    // so a cancelled campaign's finished slots are exactly [0, k).
    let done: Vec<Trace> = out.into_iter().flatten().collect();
    if done.len() < runs {
        return Err(Interrupted::Cancelled {
            completed_runs: done.len() as u32,
        });
    }
    Ok(done)
}

/// The kernel stage shared by the materialised and streaming campaign
/// runners: exact (barrier or pipelined, either dot kind) or
/// landmark-approximate, per the config. The exact output is bit-identical
/// across schedules, dot kinds, and thread counts; the approximate matrix
/// is produced only when explicitly opted into via `config.approx`.
pub(crate) fn gram_stage(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
) -> KernelMatrix {
    match config.approx {
        GramApprox::Landmarks(k) => {
            let feats = parallel_features_with_metrics(kernel, graphs, config.threads, metrics);
            landmark_gram(
                &kernel.name(),
                &feats,
                k,
                config.threads,
                config.dot,
                metrics,
            )
            .matrix
        }
        // Both schedules are bit-identical (asserted in tests/pipeline.rs);
        // only the span/counter shape under `campaign/kernel` differs.
        GramApprox::Exact => match config.schedule {
            GramSchedule::Barrier => {
                let feats = parallel_features_with_metrics(kernel, graphs, config.threads, metrics);
                gram_from_features_with_dot(
                    &kernel.name(),
                    &feats,
                    config.threads,
                    config.dot,
                    metrics,
                )
            }
            GramSchedule::Pipelined => {
                let seeds = (0..graphs.len()).map(|_| None).collect();
                gram_pipelined_seeded_with_dot(
                    kernel,
                    graphs,
                    seeds,
                    config.threads,
                    config.dot,
                    metrics,
                )
                .1
            }
        },
    }
}

/// The kernel stage over precomputed feature vectors — the streaming
/// runner's variant, where every graph is already dropped by the time the
/// Gram matrix is assembled.
pub(crate) fn gram_stage_from_features(
    kernel_name: &str,
    feats: &[SparseFeatures],
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
) -> KernelMatrix {
    match config.approx {
        GramApprox::Landmarks(k) => {
            landmark_gram(kernel_name, feats, k, config.threads, config.dot, metrics).matrix
        }
        GramApprox::Exact => {
            gram_from_features_with_dot(kernel_name, feats, config.threads, config.dot, metrics)
        }
    }
}

/// Run a full campaign: simulate, graph, and measure.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignResult, CampaignError> {
    run_campaign_with_metrics(config, None)
}

/// [`run_campaign`], additionally recording a per-stage breakdown
/// (`campaign/simulate`, `campaign/graph`, `campaign/kernel/*` spans plus
/// simulator/graph/kernel counters) when a registry is supplied. The
/// measurement itself is bit-identical either way: observability never
/// touches simulated time or the injection RNG.
pub fn run_campaign_with_metrics(
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_observed(config, metrics, None, 0)
}

/// [`run_campaign_with_metrics`], plus timeline tracing: with a
/// [`Tracer`], each run's simulated-time events are emitted tagged with
/// `(run_base + i, seed)` — see [`run_traces_observed`]. Wall-clock
/// pipeline spans reach the same tracer when it is also attached to
/// `metrics` via [`MetricsRegistry::attach_tracer`]; this function does
/// not attach it implicitly, so callers control which registries emit.
pub fn run_campaign_observed(
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_cancellable(config, metrics, tracer, run_base, None)
        .map_err(Interrupted::into_failure)
}

/// [`run_campaign_observed`] with cooperative cancellation: the simulate
/// stage stops claiming runs once `cancel` fires (see
/// [`run_traces_cancellable`]), and the graph/kernel stages check the
/// token at their boundaries. A result is either complete or not
/// produced at all — cancellation never yields a partial matrix.
pub fn run_campaign_cancellable(
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
    cancel: Option<&CancelToken>,
) -> Result<CampaignResult, Interrupted<CampaignError>> {
    let _campaign_span = metrics.map(|m| m.span("campaign"));
    let program = config.pattern.build(&config.app);
    let traces = {
        let _s = metrics.map(|m| m.span("simulate"));
        run_traces_cancellable(&program, config, metrics, tracer, run_base, cancel)?
    };
    check_cancel(cancel, config.runs)?;
    let graphs: Vec<EventGraph> = {
        let _s = metrics.map(|m| m.span("graph"));
        traces
            .iter()
            .map(|t| EventGraph::from_trace_with_metrics(t, metrics))
            .collect()
    };
    check_cancel(cancel, config.runs)?;
    let kernel = config.kernel.instantiate();
    let matrix = {
        let _s = metrics.map(|m| m.span("kernel"));
        gram_stage(kernel.as_ref(), &graphs, config, metrics)
    };
    if let Some(m) = metrics {
        m.counter("campaign/runs").add(config.runs as u64);
        let nan = anacin_stats::nan_count(&matrix.pairwise_distances());
        m.counter("stats/nan_distances").add(nan as u64);
    }
    Ok(CampaignResult {
        config: config.clone(),
        program,
        traces,
        graphs,
        matrix,
    })
}

/// The measurement of a streaming campaign: everything [`run_campaign`]
/// produces *except* the per-run traces and graphs, which are dropped as
/// soon as each run's feature vector exists. Peak memory is therefore one
/// in-flight trace + graph per worker thread plus the (tiny) feature
/// vectors, instead of every run's trace and graph at once — the
/// difference between fitting a 1024-rank campaign in memory and not.
pub struct StreamingCampaignResult {
    /// The configuration that produced the result.
    pub config: CampaignConfig,
    /// The program all runs executed.
    pub program: Program,
    /// The kernel matrix over all runs.
    pub matrix: KernelMatrix,
    /// Total simulated trace events across all runs.
    pub total_events: u64,
    /// Total event-graph nodes across all runs.
    pub total_nodes: u64,
}

impl StreamingCampaignResult {
    /// The kernel-distance sample — identical to
    /// [`CampaignResult::distance_sample`] for the same configuration.
    pub fn distance_sample(&self) -> Vec<f64> {
        self.matrix.pairwise_distances()
    }

    /// The scalar "measured amount of non-determinism".
    pub fn mean_distance(&self) -> f64 {
        self.matrix.mean_pairwise_distance()
    }
}

/// Run a full campaign without materialising all traces and graphs:
/// each run is simulated, graphed, and reduced to its feature vector in
/// one pass, and the trace and graph are freed before the next run
/// starts on that worker.
///
/// The matrix is bit-identical to [`run_campaign`]'s for the same
/// configuration: per-run simulation, graph construction, and feature
/// extraction are the exact same deterministic code, and the Gram stage
/// reuses the pair-blocked schedule of
/// [`gram_from_features_with_metrics`], which computes every `(i, j)`
/// product once by the same expression regardless of thread count.
pub fn run_campaign_streaming(
    config: &CampaignConfig,
) -> Result<StreamingCampaignResult, CampaignError> {
    run_campaign_streaming_observed(config, None, None, 0)
}

/// [`run_campaign_streaming`] with optional metrics and timeline tracing,
/// mirroring [`run_campaign_observed`]. Per-run pipeline work is recorded
/// under a fused `campaign/stream` span (simulate → graph → features are
/// interleaved per run, so the per-stage spans of the materialised path
/// have no streaming equivalent); simulator, graph, and kernel counters
/// keep their usual names.
pub fn run_campaign_streaming_observed(
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
) -> Result<StreamingCampaignResult, CampaignError> {
    run_campaign_streaming_cancellable(config, metrics, tracer, run_base, None)
        .map_err(Interrupted::into_failure)
}

/// [`run_campaign_streaming_observed`] with cooperative cancellation,
/// mirroring [`run_campaign_cancellable`]: workers stop claiming runs
/// once `cancel` fires, the in-flight run of each worker completes, and
/// the Gram stage checks the token before starting.
pub fn run_campaign_streaming_cancellable(
    config: &CampaignConfig,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<&Tracer>,
    run_base: u32,
    cancel: Option<&CancelToken>,
) -> Result<StreamingCampaignResult, Interrupted<CampaignError>> {
    let _campaign_span = metrics.map(|m| m.span("campaign"));
    let program = config.pattern.build(&config.app);
    let kernel = config.kernel.instantiate();
    let runs = config.runs as usize;
    let threads = config.threads.max(1).min(runs.max(1));
    let next = AtomicUsize::new(0);
    type RunOutcome = Result<(SparseFeatures, u64, u64), SimError>;
    let results: Vec<Vec<(usize, RunOutcome)>> = {
        let _s = metrics.map(|m| m.span("stream"));
        let program = &program;
        let kernel = kernel.as_ref();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    s.spawn(move || {
                        let counters = metrics.map(SimCounters::new);
                        let mut local = Vec::new();
                        loop {
                            if cancel.is_some_and(|c| c.is_cancelled()) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= runs {
                                break;
                            }
                            let sc = config.sim_config(i as u32);
                            let t = tracer.map(|t| (t, run_base + i as u32));
                            let outcome = simulate_traced_counted(
                                program,
                                &sc,
                                metrics,
                                t,
                                counters.as_ref(),
                            )
                            .map(|trace| {
                                let events = trace.total_events() as u64;
                                let graph = EventGraph::from_trace_with_metrics(&trace, metrics);
                                drop(trace);
                                let nodes = graph.node_count() as u64;
                                if let Some(m) = metrics {
                                    m.counter("kernel/features").add(1);
                                }
                                (kernel.features(&graph), events, nodes)
                            });
                            local.push((i, outcome));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };
    let mut feats: Vec<Option<SparseFeatures>> = (0..runs).map(|_| None).collect();
    let (mut total_events, mut total_nodes) = (0u64, 0u64);
    let mut failure: Option<CampaignError> = None;
    for chunk in results {
        for (i, r) in chunk {
            match r {
                Ok((f, events, nodes)) => {
                    feats[i] = Some(f);
                    total_events += events;
                    total_nodes += nodes;
                }
                Err(source) => {
                    let run = i as u32;
                    if failure.as_ref().is_none_or(|f| run < f.run) {
                        failure = Some(CampaignError {
                            run,
                            seed: config.sim_config(run).seed,
                            source,
                        });
                    }
                }
            }
        }
    }
    if let Some(f) = failure {
        return Err(Interrupted::Failed(f));
    }
    let feats: Vec<SparseFeatures> = feats.into_iter().flatten().collect();
    if feats.len() < runs {
        return Err(Interrupted::Cancelled {
            completed_runs: feats.len() as u32,
        });
    }
    check_cancel(cancel, config.runs)?;
    let matrix = {
        let _s = metrics.map(|m| m.span("kernel"));
        gram_stage_from_features(&kernel.name(), &feats, config, metrics)
    };
    if let Some(m) = metrics {
        m.counter("campaign/runs").add(config.runs as u64);
        let nan = anacin_stats::nan_count(&matrix.pairwise_distances());
        m.counter("stats/nan_distances").add(nan as u64);
    }
    Ok(StreamingCampaignResult {
        config: config.clone(),
        program,
        matrix,
        total_events,
        total_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_miniapps::Pattern;

    #[test]
    fn campaign_produces_consistent_artifacts() {
        let cfg = CampaignConfig::new(Pattern::MessageRace, 6).runs(8);
        let r = run_campaign(&cfg).unwrap();
        assert_eq!(r.traces.len(), 8);
        assert_eq!(r.graphs.len(), 8);
        assert_eq!(r.matrix.len(), 8);
        assert_eq!(r.distance_sample().len(), 8 * 7 / 2);
        for t in &r.traces {
            assert_eq!(t.meta.unmatched_messages, 0);
        }
    }

    #[test]
    fn zero_nd_campaign_has_zero_distance() {
        let cfg = CampaignConfig::new(Pattern::MessageRace, 6)
            .nd_percent(0.0)
            .runs(6);
        let r = run_campaign(&cfg).unwrap();
        assert_eq!(r.mean_distance(), 0.0);
    }

    #[test]
    fn full_nd_campaign_has_positive_distance() {
        let cfg = CampaignConfig::new(Pattern::MessageRace, 8).runs(10);
        let r = run_campaign(&cfg).unwrap();
        assert!(r.mean_distance() > 0.0);
    }

    #[test]
    fn pre_cancelled_campaign_completes_no_runs() {
        let cfg = CampaignConfig::new(Pattern::MessageRace, 6).runs(64);
        let token = CancelToken::new();
        token.cancel();
        match run_campaign_cancellable(&cfg, None, None, 0, Some(&token)) {
            Err(Interrupted::Cancelled { completed_runs }) => {
                assert_eq!(
                    completed_runs, 0,
                    "workers must not claim past a fired token"
                )
            }
            Err(Interrupted::Failed(e)) => panic!("unexpected failure: {e}"),
            Ok(_) => panic!("a pre-cancelled campaign must not produce a result"),
        }
        // The same config with an unfired token runs to completion and
        // matches the plain path bit-for-bit.
        let live = run_campaign_cancellable(&cfg, None, None, 0, Some(&CancelToken::new()))
            .expect("unfired token must not interrupt");
        let plain = run_campaign(&cfg).unwrap();
        assert_eq!(live.distance_sample(), plain.distance_sample());
    }

    #[test]
    fn campaign_is_reproducible() {
        let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 6).runs(6);
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.distance_sample(), b.distance_sample());
    }

    #[test]
    fn different_base_seeds_usually_differ() {
        let a = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 8).runs(6))
            .unwrap()
            .mean_distance();
        let b = run_campaign(
            &CampaignConfig::new(Pattern::MessageRace, 8)
                .runs(6)
                .base_seed(5000),
        )
        .unwrap()
        .mean_distance();
        // Not a hard invariant, but with continuous delays a collision is
        // effectively impossible.
        assert_ne!(a, b);
    }

    #[test]
    fn failing_campaign_reports_run_and_seed() {
        // Every run of a self-deadlocking program fails; the error must
        // identify the lowest run index and its exact simulator seed so the
        // failure can be replayed directly.
        use anacin_mpisim::prelude::*;
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).recv(Rank(1), TagSpec::Tag(Tag(0)));
        b.rank(Rank(1)).recv(Rank(0), TagSpec::Tag(Tag(0)));
        let program = b.build();
        let cfg = CampaignConfig::new(anacin_miniapps::Pattern::MessageRace, 2)
            .runs(4)
            .base_seed(77);
        let err = run_traces(&program, &cfg).unwrap_err();
        assert_eq!(err.run, 0);
        assert_eq!(err.seed, 77);
        assert!(matches!(err.source, SimError::Deadlock(_)));
        let msg = err.to_string();
        assert!(msg.contains("run 0"), "{msg}");
        assert!(msg.contains("seed 77"), "{msg}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn campaign_metrics_report_covers_every_stage() {
        let reg = MetricsRegistry::new();
        let cfg = CampaignConfig::new(Pattern::MessageRace, 6).runs(5);
        let r = run_campaign_with_metrics(&cfg, Some(&reg)).unwrap();
        let report = reg.report();
        // Per-stage wall-times present (non-negative by construction: the
        // report stores unsigned nanoseconds) for every pipeline stage.
        // The default schedule is pipelined, so the kernel stage reports
        // the fused span with its features/gram split.
        for stage in [
            "campaign",
            "campaign/simulate",
            "campaign/graph",
            "campaign/kernel",
            "campaign/kernel/pipeline",
            "campaign/kernel/pipeline/features",
            "campaign/kernel/pipeline/gram",
        ] {
            let s = report
                .span(stage)
                .unwrap_or_else(|| panic!("missing span {stage}"));
            assert!(s.count >= 1, "{stage}");
            assert!(s.total_ns >= s.max_ns, "{stage}");
        }
        // Counters agree with the artifacts.
        assert_eq!(report.counter("campaign/runs"), Some(5));
        assert_eq!(report.counter("sim/runs"), Some(5));
        let events: usize = r.traces.iter().map(|t| t.total_events()).sum();
        assert_eq!(report.counter("sim/events"), Some(events as u64));
        let nodes: usize = r.graphs.iter().map(|g| g.node_count()).sum();
        assert_eq!(report.counter("graph/nodes"), Some(nodes as u64));
        assert_eq!(report.counter("kernel/features"), Some(5));
        assert_eq!(report.counter("kernel/dot_products"), Some(5 * 6 / 2));
        assert_eq!(report.counter("kernel/pipeline_tasks"), Some(5 + 5 * 6 / 2));
        assert_eq!(report.counter("stats/nan_distances"), Some(0));
        // The metrics run is bit-identical to an unobserved one.
        let plain = run_campaign(&cfg).unwrap();
        assert_eq!(r.distance_sample(), plain.distance_sample());
    }

    #[test]
    fn barrier_schedule_reports_stage_spans_and_matches_pipelined() {
        let reg = MetricsRegistry::new();
        let cfg = CampaignConfig::new(Pattern::MessageRace, 6)
            .runs(5)
            .schedule(GramSchedule::Barrier);
        let r = run_campaign_with_metrics(&cfg, Some(&reg)).unwrap();
        let report = reg.report();
        for stage in ["campaign/kernel/features", "campaign/kernel/gram"] {
            assert!(report.span(stage).is_some(), "missing span {stage}");
        }
        assert!(report.counter("kernel/pipeline_tasks").is_none());
        let pipelined = run_campaign(&cfg.clone().schedule(GramSchedule::Pipelined)).unwrap();
        assert_eq!(r.matrix, pipelined.matrix);
    }

    #[test]
    fn streaming_campaign_is_bit_identical_across_kernels_and_threads() {
        // The streaming path must reproduce the materialised campaign's
        // matrix bit for bit: every kernel choice, at every thread count.
        use crate::config::KernelChoice;
        use anacin_event_graph::LabelPolicy;
        let kernels = [
            KernelChoice::Wl {
                iterations: 3,
                policy: LabelPolicy::default(),
            },
            KernelChoice::Wl {
                iterations: 1,
                policy: LabelPolicy::RankTypePeer,
            },
            KernelChoice::VertexHistogram {
                policy: LabelPolicy::EventType,
            },
            KernelChoice::EdgeHistogram {
                policy: LabelPolicy::TypeAndPeer,
            },
            KernelChoice::ShortestPath {
                policy: LabelPolicy::TypeAndPeer,
                max_distance: 3,
            },
        ];
        for kc in kernels {
            let base_cfg = CampaignConfig::new(Pattern::MessageRace, 6)
                .runs(6)
                .kernel(kc);
            let base = run_campaign(&base_cfg).unwrap();
            for threads in [1, 2, 8] {
                let mut cfg = base_cfg.clone();
                cfg.threads = threads;
                let s = run_campaign_streaming(&cfg).unwrap();
                assert_eq!(s.matrix, base.matrix, "kernel={kc:?} threads={threads}");
                assert_eq!(
                    s.total_events,
                    base.traces
                        .iter()
                        .map(|t| t.total_events() as u64)
                        .sum::<u64>()
                );
                assert_eq!(
                    s.total_nodes,
                    base.graphs
                        .iter()
                        .map(|g| g.node_count() as u64)
                        .sum::<u64>()
                );
                assert_eq!(s.distance_sample(), base.distance_sample());
            }
        }
    }

    #[test]
    fn streaming_campaign_is_reproducible() {
        let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 6).runs(6);
        let a = run_campaign_streaming(&cfg).unwrap();
        let b = run_campaign_streaming(&cfg).unwrap();
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.total_events, b.total_events);
        assert_eq!(a.total_nodes, b.total_nodes);
    }

    #[test]
    fn streaming_campaign_metrics_cover_stages() {
        let reg = MetricsRegistry::new();
        let cfg = CampaignConfig::new(Pattern::MessageRace, 6).runs(5);
        let r = run_campaign_streaming_observed(&cfg, Some(&reg), None, 0).unwrap();
        let report = reg.report();
        for stage in ["campaign", "campaign/stream", "campaign/kernel"] {
            assert!(report.span(stage).is_some(), "missing span {stage}");
        }
        assert_eq!(report.counter("campaign/runs"), Some(5));
        assert_eq!(report.counter("sim/runs"), Some(5));
        assert_eq!(report.counter("sim/events"), Some(r.total_events));
        assert_eq!(report.counter("graph/nodes"), Some(r.total_nodes));
        assert_eq!(report.counter("kernel/features"), Some(5));
        assert_eq!(report.counter("kernel/dot_products"), Some(5 * 6 / 2));
        assert_eq!(report.counter("stats/nan_distances"), Some(0));
    }

    #[test]
    fn blocked_dot_campaign_is_bit_identical_for_both_schedules() {
        use anacin_kernels::feature::DotKind;
        let base = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 6).runs(6)).unwrap();
        for schedule in [GramSchedule::Barrier, GramSchedule::Pipelined] {
            let cfg = CampaignConfig::new(Pattern::MessageRace, 6)
                .runs(6)
                .schedule(schedule)
                .dot(DotKind::Blocked);
            let r = run_campaign(&cfg).unwrap();
            assert_eq!(r.matrix, base.matrix, "schedule={schedule}");
            let s = run_campaign_streaming(&cfg).unwrap();
            assert_eq!(s.matrix, base.matrix, "streaming, schedule={schedule}");
        }
    }

    #[test]
    fn landmark_campaign_is_opt_in_and_reports_its_error_bound() {
        use crate::config::GramApprox;
        assert_eq!(CampaignConfig::default().approx, GramApprox::Exact);
        let cfg = CampaignConfig::new(Pattern::MessageRace, 6).runs(8);
        let exact = run_campaign(&cfg).unwrap();
        // K = runs: the landmark set spans everything, so the
        // approximation reconstructs the exact matrix up to eigen-solver
        // noise.
        let full = run_campaign(&cfg.clone().approx(GramApprox::Landmarks(8))).unwrap();
        let scale = exact
            .matrix
            .values()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1.0);
        for (a, b) in full.matrix.values().iter().zip(exact.matrix.values()) {
            assert!((a - b).abs() <= 1e-6 * scale, "{a} vs {b}");
        }
        // A genuinely rank-deficient landmark set still reports a finite,
        // non-negative Frobenius error bound.
        let reg = MetricsRegistry::new();
        let r =
            run_campaign_with_metrics(&cfg.clone().approx(GramApprox::Landmarks(3)), Some(&reg))
                .unwrap();
        assert_eq!(r.matrix.len(), 8);
        let bound = reg
            .report()
            .gauge("kernel/approx_error_bound")
            .expect("approx campaigns report their bound");
        assert!(bound.is_finite() && bound >= 0.0, "bound={bound}");
    }

    #[test]
    fn thread_count_does_not_change_measurement() {
        let mut cfg = CampaignConfig::new(Pattern::Amg2013, 4).runs(6);
        cfg.threads = 1;
        let a = run_campaign(&cfg).unwrap();
        cfg.threads = 8;
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.distance_sample(), b.distance_sample());
    }
}
