//! Exhaustive-schedule campaigns: run the feature/Gram pipeline over the
//! *enumerated* schedule space instead of a random sample.
//!
//! [`explore_campaign`] is the systematic counterpart of
//! [`run_campaign`](crate::campaign::run_campaign): where a sampled
//! campaign simulates N random seeds and measures the spread of kernel
//! distances, an explore campaign asks `mpisim::explore` for every
//! distinct schedule the program admits (up to a budget), replays each
//! one through the engine at the campaign's base seed, and runs the same
//! graph/kernel pipeline over the results. The payoff is the statistics
//! sampling cannot give:
//!
//! * `max_distance` over the *whole* schedule space is a true worst case
//!   (when the enumeration is complete), not an empirical maximum;
//! * [`ExploreCampaignResult::coverage_of`] reports how much of the
//!   schedule space a sampled campaign actually visited, and checks the
//!   containment oracle (every sampled schedule ∈ explored set).
//!
//! Explored traces flow through the artifact store keyed by
//! [`ScheduleId`] ([`explore_fingerprint`]), so re-exploring a setting is
//! warm: the enumeration re-runs (it is fast and pure), but replays hit.

use crate::campaign::{CampaignError, CampaignResult};
use crate::config::{CampaignConfig, GramSchedule};
use crate::incremental::{absorb_setting, get_or_heal, IncrementalError};
use anacin_event_graph::EventGraph;
use anacin_kernels::matrix::{gram_matrix_with_metrics, KernelMatrix};
use anacin_kernels::pipeline::gram_pipelined_with_metrics;
use anacin_mpisim::engine::SimError;
use anacin_mpisim::explore::{
    explore, flush_explore_metrics, simulate_scheduled, ExploreConfig, ExploreReport, Schedule,
    ScheduleId,
};
use anacin_mpisim::program::Program;
use anacin_mpisim::trace::Trace;
use anacin_obs::MetricsRegistry;
use anacin_store::{ArtifactStore, Fingerprint, FingerprintHasher};
use serde::Serialize;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The fingerprint naming the replayed trace of one explored schedule.
/// Absorbs the run setting (pattern, app, ND, nodes, delay model), the
/// base seed (replays use `sim_config(0)`), and the schedule id — so a
/// re-exploration of the same setting is warm, and any semantic change
/// misses cleanly.
pub fn explore_fingerprint(config: &CampaignConfig, id: ScheduleId) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("anacin/explore");
    absorb_setting(&mut h, config);
    h.write_str("seed");
    h.write_u64(config.base_seed);
    h.write_str("schedule");
    h.write_u64(id.0);
    h.finish()
}

/// The artifacts of one explore campaign: one trace/graph per distinct
/// schedule, plus the kernel matrix over all of them.
pub struct ExploreCampaignResult {
    /// The configuration that produced the result.
    pub config: CampaignConfig,
    /// The program whose schedules were enumerated.
    pub program: Program,
    /// The enumeration itself: schedules in discovery order + statistics.
    pub report: ExploreReport,
    /// One replayed trace per explored schedule (same order).
    pub traces: Vec<Trace>,
    /// One event graph per explored schedule.
    pub graphs: Vec<EventGraph>,
    /// The kernel matrix over the explored schedules.
    pub matrix: KernelMatrix,
}

/// How a sampled campaign relates to an explored schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ExploreCoverage {
    /// Distinct schedules enumerated.
    pub explored: u64,
    /// Whether the enumeration was complete (no budget fired).
    pub complete: bool,
    /// Sampled runs inspected.
    pub sampled_runs: u64,
    /// Distinct schedules among the sampled runs.
    pub sampled_distinct: u64,
    /// Distinct sampled schedules that are members of the explored set.
    /// Equals `sampled_distinct` whenever `covered`; on a truncated walk
    /// it can be smaller.
    pub overlap: u64,
    /// `overlap / explored`: the fraction of the enumerated space the
    /// sample visited (1.0 = the sample saw everything).
    pub fraction: f64,
    /// Every sampled schedule is a member of the explored set. Must hold
    /// whenever `complete` — the exhaustiveness oracle.
    pub covered: bool,
    /// Maximum pairwise kernel distance among the sampled runs.
    pub sampled_max: f64,
    /// Maximum pairwise kernel distance over the explored schedules —
    /// the true worst case when `complete`, so `explored_max >=
    /// sampled_max` up to float tolerance.
    pub explored_max: f64,
}

fn max_pairwise(matrix: &KernelMatrix) -> f64 {
    matrix
        .pairwise_distances()
        .into_iter()
        .filter(|d| d.is_finite())
        .fold(0.0, f64::max)
}

impl ExploreCampaignResult {
    /// All pairwise kernel distances between explored schedules.
    pub fn distance_sample(&self) -> Vec<f64> {
        self.matrix.pairwise_distances()
    }

    /// Smallest pairwise distance (0.0 with fewer than two schedules).
    pub fn min_distance(&self) -> f64 {
        let m = self
            .matrix
            .pairwise_distances()
            .into_iter()
            .filter(|d| d.is_finite())
            .fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Largest pairwise distance — the worst case over the schedule space
    /// when the enumeration is complete.
    pub fn max_distance(&self) -> f64 {
        max_pairwise(&self.matrix)
    }

    /// Mean pairwise distance over explored schedules.
    pub fn mean_distance(&self) -> f64 {
        self.matrix.mean_pairwise_distance()
    }

    /// Compare against a sampled campaign of the same setting.
    pub fn coverage_of(&self, sampled: &CampaignResult) -> ExploreCoverage {
        let explored_ids: HashSet<u64> = self.report.schedules.iter().map(|s| s.id().0).collect();
        let sampled_ids: HashSet<u64> = sampled
            .traces
            .iter()
            .map(|t| Schedule::from_trace(t).id().0)
            .collect();
        let covered = sampled_ids.iter().all(|id| explored_ids.contains(id));
        let overlap = sampled_ids.intersection(&explored_ids).count() as u64;
        let fraction = if explored_ids.is_empty() {
            0.0
        } else {
            overlap as f64 / explored_ids.len() as f64
        };
        ExploreCoverage {
            explored: explored_ids.len() as u64,
            complete: self.report.is_complete(),
            sampled_runs: sampled.traces.len() as u64,
            sampled_distinct: sampled_ids.len() as u64,
            overlap,
            fraction,
            covered,
            sampled_max: max_pairwise(&sampled.matrix),
            explored_max: self.max_distance(),
        }
    }
}

/// Replay every explored schedule at the campaign's base seed, warm from
/// the store when one is supplied. Schedule pins matching, seed pins
/// delays: each replay is bit-deterministic, so warm and cold paths are
/// byte-identical.
fn replay_schedules(
    program: &Program,
    config: &CampaignConfig,
    schedules: &[Schedule],
    store: Option<&ArtifactStore>,
    metrics: Option<&MetricsRegistry>,
) -> Result<Vec<Trace>, IncrementalError> {
    let sc = config.sim_config(0);
    let mut slots: Vec<Option<Trace>> = (0..schedules.len()).map(|_| None).collect();
    let mut missing: Vec<usize> = Vec::new();
    if let Some(store) = store {
        for (i, s) in schedules.iter().enumerate() {
            match get_or_heal::<Trace>(store, explore_fingerprint(config, s.id()))? {
                Some(t) => slots[i] = Some(t),
                None => missing.push(i),
            }
        }
    } else {
        missing = (0..schedules.len()).collect();
    }
    if missing.is_empty() {
        return Ok(slots
            .into_iter()
            .map(|t| t.expect("all slots filled"))
            .collect());
    }
    let threads = config.threads.max(1).min(missing.len());
    let next = AtomicUsize::new(0);
    let results: Vec<Vec<(usize, Result<Trace, SimError>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let missing = &missing;
                let sc = &sc;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= missing.len() {
                            break;
                        }
                        let i = missing[slot];
                        local.push((i, simulate_scheduled(program, sc, &schedules[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    // Deterministic failure: report the lowest failing schedule index.
    let mut failure: Option<CampaignError> = None;
    let mut computed: Vec<(usize, Trace)> = Vec::with_capacity(missing.len());
    for chunk in results {
        for (i, r) in chunk {
            match r {
                Ok(t) => computed.push((i, t)),
                Err(source) => {
                    let run = i as u32;
                    if failure.as_ref().is_none_or(|f| run < f.run) {
                        failure = Some(CampaignError {
                            run,
                            seed: sc.seed,
                            source,
                        });
                    }
                }
            }
        }
    }
    if let Some(f) = failure {
        return Err(f.into());
    }
    computed.sort_by_key(|&(i, _)| i);
    for (i, t) in computed {
        if let Some(store) = store {
            store.put(explore_fingerprint(config, schedules[i].id()), &t)?;
        }
        slots[i] = Some(t);
    }
    if let Some(m) = metrics {
        m.counter("explore/replays").add(missing.len() as u64);
    }
    Ok(slots
        .into_iter()
        .map(|t| t.expect("all slots filled"))
        .collect())
}

fn explore_campaign_inner(
    config: &CampaignConfig,
    xcfg: &ExploreConfig,
    store: Option<&ArtifactStore>,
    metrics: Option<&MetricsRegistry>,
) -> Result<ExploreCampaignResult, IncrementalError> {
    let _outer = metrics.map(|m| m.span("explore"));
    let program = config.pattern.build(&config.app);
    let report = {
        let _s = metrics.map(|m| m.span("enumerate"));
        let r = explore(&program, xcfg);
        if let Some(m) = metrics {
            flush_explore_metrics(m, &r.stats);
        }
        r
    };
    let traces = {
        let _s = metrics.map(|m| m.span("replay"));
        replay_schedules(&program, config, &report.schedules, store, metrics)?
    };
    let graphs: Vec<EventGraph> = {
        let _s = metrics.map(|m| m.span("graph"));
        traces
            .iter()
            .map(|t| EventGraph::from_trace_with_metrics(t, metrics))
            .collect()
    };
    let kernel = config.kernel.instantiate();
    let matrix = {
        let _s = metrics.map(|m| m.span("kernel"));
        match config.schedule {
            GramSchedule::Barrier => {
                gram_matrix_with_metrics(kernel.as_ref(), &graphs, config.threads, metrics)
            }
            GramSchedule::Pipelined => {
                gram_pipelined_with_metrics(kernel.as_ref(), &graphs, config.threads, metrics)
            }
        }
    };
    Ok(ExploreCampaignResult {
        config: config.clone(),
        program,
        report,
        traces,
        graphs,
        matrix,
    })
}

/// Enumerate + replay + measure, without observability or a store.
pub fn explore_campaign(
    config: &CampaignConfig,
    xcfg: &ExploreConfig,
) -> Result<ExploreCampaignResult, CampaignError> {
    explore_campaign_observed(config, xcfg, None)
}

/// [`explore_campaign`] with per-stage spans (`explore/enumerate`,
/// `explore/replay`, `explore/graph`, `explore/kernel`) and the standard
/// explore counters.
pub fn explore_campaign_observed(
    config: &CampaignConfig,
    xcfg: &ExploreConfig,
    metrics: Option<&MetricsRegistry>,
) -> Result<ExploreCampaignResult, CampaignError> {
    explore_campaign_inner(config, xcfg, None, metrics).map_err(|e| match e {
        IncrementalError::Campaign(c) => c,
        IncrementalError::Store(_) => unreachable!("no store in use"),
    })
}

/// [`explore_campaign`] against an artifact store: replayed traces are
/// keyed by [`explore_fingerprint`], so a repeated exploration of the
/// same setting reuses every stored replay.
pub fn explore_campaign_incremental(
    config: &CampaignConfig,
    xcfg: &ExploreConfig,
    store: &ArtifactStore,
) -> Result<ExploreCampaignResult, IncrementalError> {
    explore_campaign_inner(config, xcfg, Some(store), None)
}

/// [`explore_campaign_incremental`] with the full instrumentation of
/// [`explore_campaign_observed`].
pub fn explore_campaign_incremental_observed(
    config: &CampaignConfig,
    xcfg: &ExploreConfig,
    store: &ArtifactStore,
    metrics: Option<&MetricsRegistry>,
) -> Result<ExploreCampaignResult, IncrementalError> {
    explore_campaign_inner(config, xcfg, Some(store), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use anacin_miniapps::Pattern;
    use anacin_store::Artifact;
    use std::path::PathBuf;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig::new(Pattern::MessageRace, 5).runs(20)
    }

    fn tmp_store(tag: &str) -> (PathBuf, ArtifactStore) {
        let dir =
            std::env::temp_dir().join(format!("anacin-explore-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn message_race_explores_completely_and_covers_samples() {
        // 4 senders → 4! = 24 distinct schedules.
        let cfg = small_cfg();
        let r = explore_campaign(&cfg, &ExploreConfig::default()).unwrap();
        assert_eq!(r.report.schedules.len(), 24);
        assert!(r.report.is_complete());
        assert_eq!(r.traces.len(), 24);
        assert_eq!(r.graphs.len(), 24);
        let sampled = run_campaign(&cfg).unwrap();
        let cov = r.coverage_of(&sampled);
        assert!(cov.covered, "a sampled schedule escaped the enumeration");
        assert_eq!(cov.overlap, cov.sampled_distinct, "covered ⇒ full overlap");
        assert!(cov.sampled_distinct <= cov.explored);
        assert!(cov.fraction > 0.0 && cov.fraction <= 1.0);
        assert!(cov.explored_max >= cov.sampled_max - 1e-9);
    }

    #[test]
    fn explore_campaign_is_deterministic() {
        let cfg = small_cfg();
        let a = explore_campaign(&cfg, &ExploreConfig::default()).unwrap();
        let b = explore_campaign(&cfg, &ExploreConfig::default()).unwrap();
        assert_eq!(a.report.ids(), b.report.ids());
        assert_eq!(a.traces, b.traces);
        assert_eq!(a.matrix, b.matrix);
    }

    #[test]
    fn explored_distances_are_schedule_distances() {
        // Replays of the *same* schedule under different base seeds give
        // different times but identical graphs — distances depend only on
        // the schedule, which is what makes explored_max comparable to
        // sampled maxima.
        let cfg = small_cfg();
        let a = explore_campaign(&cfg, &ExploreConfig::default()).unwrap();
        let b = explore_campaign(&cfg.clone().base_seed(999), &ExploreConfig::default()).unwrap();
        assert_eq!(a.report.ids(), b.report.ids());
        assert_eq!(a.matrix, b.matrix);
        // Self-distances vanish: distinct schedules drive all spread.
        assert!(a.max_distance() > 0.0);
        assert!(a.min_distance() >= 0.0);
        assert!(a.mean_distance() > 0.0);
    }

    #[test]
    fn store_makes_re_exploration_warm_and_bit_identical() {
        let cfg = small_cfg();
        let (dir, store) = tmp_store("warm");
        let cold = explore_campaign_incremental(&cfg, &ExploreConfig::default(), &store).unwrap();
        let before = store.activity();
        let warm = explore_campaign_incremental(&cfg, &ExploreConfig::default(), &store).unwrap();
        let after = store.activity();
        assert!(after.hits >= before.hits + cold.traces.len() as u64);
        assert_eq!(warm.traces, cold.traces);
        for (w, c) in warm.traces.iter().zip(cold.traces.iter()) {
            assert_eq!(w.to_wire(), c.to_wire(), "warm replay not byte-identical");
        }
        assert_eq!(warm.matrix, cold.matrix);
        // And both agree with the storeless path.
        let plain = explore_campaign(&cfg, &ExploreConfig::default()).unwrap();
        assert_eq!(plain.traces, cold.traces);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn truncated_exploration_reports_incomplete_coverage() {
        let cfg = small_cfg();
        let xcfg = ExploreConfig::with_budget(6);
        let r = explore_campaign(&cfg, &xcfg).unwrap();
        assert_eq!(r.report.schedules.len(), 6);
        assert!(!r.report.is_complete());
        let sampled = run_campaign(&cfg).unwrap();
        let cov = r.coverage_of(&sampled);
        assert!(!cov.complete);
    }

    #[test]
    fn explore_metrics_cover_every_stage() {
        let cfg = small_cfg();
        let m = MetricsRegistry::new();
        let r = explore_campaign_observed(&cfg, &ExploreConfig::default(), Some(&m)).unwrap();
        let rep = m.report();
        for stage in [
            "explore",
            "explore/enumerate",
            "explore/replay",
            "explore/graph",
            "explore/kernel",
        ] {
            assert!(rep.span(stage).is_some(), "missing span {stage}");
        }
        assert_eq!(
            rep.counter("explore/schedules"),
            Some(r.report.stats.schedules)
        );
        assert_eq!(
            rep.counter("explore/branches"),
            Some(r.report.stats.branches)
        );
        assert!(rep.counter("explore/pruned").is_some());
        assert_eq!(rep.counter("explore/replays"), Some(24));
        // Observability never changes the measurement.
        let plain = explore_campaign(&cfg, &ExploreConfig::default()).unwrap();
        assert_eq!(r.matrix, plain.matrix);
    }

    #[test]
    fn explore_fingerprints_separate_inputs() {
        let cfg = small_cfg();
        let r = explore_campaign(&cfg, &ExploreConfig::default()).unwrap();
        let a = r.report.schedules[0].id();
        let b = r.report.schedules[1].id();
        let base = explore_fingerprint(&cfg, a);
        assert_ne!(base, explore_fingerprint(&cfg, b));
        assert_ne!(base, explore_fingerprint(&cfg.clone().nd_percent(50.0), a));
        assert_ne!(base, explore_fingerprint(&cfg.clone().base_seed(9), a));
        // Thread count is not key material.
        let mut threaded = cfg.clone();
        threaded.threads = 1;
        assert_eq!(base, explore_fingerprint(&threaded, a));
    }
}
