//! Campaign configuration: everything that defines one measurement.

use anacin_event_graph::LabelPolicy;
use anacin_kernels::prelude::*;
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::network::{DelayDistribution, NetworkConfig};
use anacin_mpisim::SimConfig;
use serde::{Deserialize, Serialize};

/// Which kernel a campaign measures with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelChoice {
    /// Weisfeiler–Lehman subtree kernel (ANACIN-X default).
    Wl {
        /// WL iteration depth.
        iterations: u32,
        /// Node-label policy.
        policy: LabelPolicy,
    },
    /// Vertex-histogram baseline.
    VertexHistogram {
        /// Node-label policy.
        policy: LabelPolicy,
    },
    /// Edge-histogram baseline.
    EdgeHistogram {
        /// Node-label policy.
        policy: LabelPolicy,
    },
    /// Bounded shortest-path kernel.
    ShortestPath {
        /// Node-label policy.
        policy: LabelPolicy,
        /// BFS horizon.
        max_distance: u32,
    },
}

impl Default for KernelChoice {
    fn default() -> Self {
        KernelChoice::Wl {
            iterations: 3,
            policy: LabelPolicy::default(),
        }
    }
}

impl KernelChoice {
    /// Materialise the kernel object.
    pub fn instantiate(&self) -> Box<dyn GraphKernel> {
        match *self {
            KernelChoice::Wl { iterations, policy } => Box::new(WlKernel {
                iterations,
                policy,
                edge_sensitive: false,
            }),
            KernelChoice::VertexHistogram { policy } => Box::new(VertexHistogramKernel { policy }),
            KernelChoice::EdgeHistogram { policy } => Box::new(EdgeHistogramKernel { policy }),
            KernelChoice::ShortestPath {
                policy,
                max_distance,
            } => Box::new(ShortestPathKernel {
                policy,
                max_distance,
            }),
        }
    }
}

/// How the kernel stage schedules feature extraction and dot products.
///
/// Purely an execution-strategy knob: both schedules produce bit-identical
/// matrices at any thread count (each (i, j) dot product is computed
/// exactly once by the same expression), so — like `threads` — the choice
/// is excluded from incremental-store fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GramSchedule {
    /// Extract every φ(G) first, then compute all dot products — two
    /// barriers, as the original `gram_matrix` does.
    Barrier,
    /// Fused single-queue pipeline: dot products start as soon as both
    /// operand feature vectors exist, overlapping the feature tail.
    #[default]
    Pipelined,
}

impl GramSchedule {
    fn as_str(&self) -> &'static str {
        match self {
            GramSchedule::Barrier => "barrier",
            GramSchedule::Pipelined => "pipelined",
        }
    }
}

impl std::fmt::Display for GramSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for GramSchedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "barrier" => Ok(GramSchedule::Barrier),
            "pipelined" => Ok(GramSchedule::Pipelined),
            other => Err(format!(
                "unknown gram schedule '{other}' (expected 'barrier' or 'pipelined')"
            )),
        }
    }
}

// Manual serde impls: a missing field deserialises as `Null`, which maps
// to the default — so configs serialised before the schedule knob existed
// keep loading.
impl serde::Serialize for GramSchedule {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl serde::Deserialize for GramSchedule {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.is_null() {
            return Ok(GramSchedule::default());
        }
        match v.as_str() {
            Some(s) => s.parse().map_err(serde::Error::custom),
            None => Err(serde::Error::custom("gram schedule must be a string")),
        }
    }
}

/// Whether the kernel stage computes the Gram matrix exactly or through
/// the landmark (Nyström) approximation.
///
/// `Exact` is the default and the only mode whose matrices are published
/// to the incremental store. `Landmarks(k)` computes only `runs × k` dot
/// products — for campaigns with thousands of runs where the full
/// O(runs²) schedule is unaffordable — and reports a rigorous Frobenius
/// error bound (`kernel/approx_error_bound`). It is strictly opt-in and
/// never silently replaces the exact path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GramApprox {
    /// Full exact Gram matrix (every pairwise dot product).
    #[default]
    Exact,
    /// Landmark/Nyström approximation with this many landmark runs.
    Landmarks(usize),
}

impl std::fmt::Display for GramApprox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GramApprox::Exact => f.write_str("exact"),
            GramApprox::Landmarks(k) => write!(f, "landmarks={k}"),
        }
    }
}

impl std::str::FromStr for GramApprox {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "exact" {
            return Ok(GramApprox::Exact);
        }
        if let Some(k) = s.strip_prefix("landmarks=") {
            let k: usize = k
                .parse()
                .map_err(|_| format!("bad landmark count in '{s}'"))?;
            if k == 0 {
                return Err("landmark count must be at least 1".to_string());
            }
            return Ok(GramApprox::Landmarks(k));
        }
        Err(format!(
            "unknown gram approximation '{s}' (expected 'exact' or 'landmarks=K')"
        ))
    }
}

// Manual serde impls, mirroring `GramSchedule`: a missing field
// deserialises as `Null`, which maps to the default, so configs
// serialised before the knob existed keep loading.
impl serde::Serialize for GramApprox {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl serde::Deserialize for GramApprox {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.is_null() {
            return Ok(GramApprox::default());
        }
        match v.as_str() {
            Some(s) => s.parse().map_err(serde::Error::custom),
            None => Err(serde::Error::custom("gram approximation must be a string")),
        }
    }
}

/// One measurement campaign: run a pattern many times at a setting and
/// measure the kernel-distance sample — the unit of every figure in the
/// paper's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Which mini-application to run.
    pub pattern: Pattern,
    /// The mini-application's parameters.
    pub app: MiniAppConfig,
    /// Percentage of non-determinism, `[0, 100]`.
    pub nd_percent: f64,
    /// Number of simulated compute nodes.
    pub nodes: u32,
    /// Number of runs (the paper uses 20 per setting).
    pub runs: u32,
    /// Seed of the first run; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Worker threads for simulation and kernel evaluation.
    pub threads: usize,
    /// The measurement kernel.
    pub kernel: KernelChoice,
    /// The congestion-delay distribution (ablation knob; the default is
    /// tuned so reorder depth grows gradually with ND%, matching the
    /// paper's Figure-7 shape rather than saturating instantly).
    pub delay: DelayDistribution,
    /// Kernel-stage schedule. Bit-identical results either way; pipelined
    /// is faster and the default.
    pub schedule: GramSchedule,
    /// Dot-product implementation. Bit-identical results either way (the
    /// blocked merge-join skips only non-matching keys); blocked is faster
    /// on large sparse feature vectors. Like `threads` and `schedule`,
    /// excluded from store fingerprints.
    pub dot: DotKind,
    /// Exact vs landmark-approximate Gram computation. Approximate
    /// matrices are never published to the store.
    pub approx: GramApprox,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            pattern: Pattern::MessageRace,
            app: MiniAppConfig::default(),
            nd_percent: 100.0,
            nodes: 1,
            runs: 20,
            base_seed: 1,
            threads: default_threads(),
            kernel: KernelChoice::default(),
            delay: DelayDistribution::Exponential { mean_ns: 100.0 },
            schedule: GramSchedule::default(),
            dot: DotKind::default(),
            approx: GramApprox::default(),
        }
    }
}

/// Available parallelism, bounded for laptop friendliness.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

impl CampaignConfig {
    /// A campaign for `pattern` with `procs` processes, other fields
    /// default.
    pub fn new(pattern: Pattern, procs: u32) -> Self {
        CampaignConfig {
            pattern,
            app: MiniAppConfig::with_procs(procs),
            ..Default::default()
        }
    }

    /// Builder-style: set the ND percentage.
    pub fn nd_percent(mut self, percent: f64) -> Self {
        self.nd_percent = percent;
        self
    }

    /// Builder-style: set the run count.
    pub fn runs(mut self, runs: u32) -> Self {
        self.runs = runs;
        self
    }

    /// Builder-style: set the iteration count of the app.
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.app.iterations = iterations;
        self
    }

    /// Builder-style: set the node count.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder-style: set the base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Builder-style: set the kernel.
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder-style: set the congestion-delay distribution.
    pub fn delay(mut self, delay: DelayDistribution) -> Self {
        self.delay = delay;
        self
    }

    /// Builder-style: set the kernel-stage schedule.
    pub fn schedule(mut self, schedule: GramSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Builder-style: set the dot-product implementation.
    pub fn dot(mut self, dot: DotKind) -> Self {
        self.dot = dot;
        self
    }

    /// Builder-style: set the Gram approximation mode.
    pub fn approx(mut self, approx: GramApprox) -> Self {
        self.approx = approx;
        self
    }

    /// The simulator configuration of run `i`.
    pub fn sim_config(&self, run: u32) -> SimConfig {
        let network = NetworkConfig::with_nd_percent(self.nd_percent)
            .nodes(self.nodes)
            .delay(self.delay);
        SimConfig {
            network,
            seed: self.base_seed + run as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_sim_config() {
        let c = CampaignConfig::new(Pattern::Amg2013, 8)
            .nd_percent(40.0)
            .runs(5)
            .iterations(2)
            .nodes(2)
            .base_seed(100);
        assert_eq!(c.app.procs, 8);
        assert_eq!(c.app.iterations, 2);
        let sc = c.sim_config(3);
        assert_eq!(sc.seed, 103);
        assert!((sc.network.nd_fraction - 0.4).abs() < 1e-12);
        assert_eq!(sc.network.nodes, 2);
    }

    #[test]
    fn kernel_choices_instantiate() {
        use anacin_event_graph::LabelPolicy;
        for k in [
            KernelChoice::default(),
            KernelChoice::VertexHistogram {
                policy: LabelPolicy::EventType,
            },
            KernelChoice::EdgeHistogram {
                policy: LabelPolicy::TypeAndPeer,
            },
            KernelChoice::ShortestPath {
                policy: LabelPolicy::TypeAndPeer,
                max_distance: 3,
            },
        ] {
            let obj = k.instantiate();
            assert!(!obj.name().is_empty());
        }
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn gram_schedule_parses_and_round_trips() {
        assert_eq!("barrier".parse(), Ok(GramSchedule::Barrier));
        assert_eq!("pipelined".parse(), Ok(GramSchedule::Pipelined));
        assert!("fused".parse::<GramSchedule>().is_err());
        for s in [GramSchedule::Barrier, GramSchedule::Pipelined] {
            let v = serde::Serialize::to_value(&s);
            assert_eq!(serde::Deserialize::from_value(&v), Ok(s));
            assert_eq!(s.to_string().parse(), Ok(s));
        }
    }

    #[test]
    fn configs_without_schedule_field_still_deserialize() {
        // Configs serialised before the schedule knob existed have no
        // "schedule" key; they must load with the default.
        let text = serde_json::to_string(&CampaignConfig::default()).unwrap();
        let mut v = serde_json::from_str_value(&text).unwrap();
        if let serde::Value::Object(map) = &mut v {
            map.retain(|(k, _)| k != "schedule");
        }
        let cfg = <CampaignConfig as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(cfg.schedule, GramSchedule::Pipelined);
    }

    #[test]
    fn gram_approx_parses_and_round_trips() {
        assert_eq!("exact".parse(), Ok(GramApprox::Exact));
        assert_eq!("landmarks=16".parse(), Ok(GramApprox::Landmarks(16)));
        assert!("landmarks=0".parse::<GramApprox>().is_err());
        assert!("landmarks=".parse::<GramApprox>().is_err());
        assert!("nystrom".parse::<GramApprox>().is_err());
        for a in [GramApprox::Exact, GramApprox::Landmarks(32)] {
            let v = serde::Serialize::to_value(&a);
            assert_eq!(serde::Deserialize::from_value(&v), Ok(a));
            assert_eq!(a.to_string().parse(), Ok(a));
        }
    }

    #[test]
    fn configs_without_dot_or_approx_fields_still_deserialize() {
        // Configs serialised before the blocked-dot / approximation knobs
        // existed must load with the exact scalar defaults.
        let text = serde_json::to_string(&CampaignConfig::default()).unwrap();
        let mut v = serde_json::from_str_value(&text).unwrap();
        if let serde::Value::Object(map) = &mut v {
            map.retain(|(k, _)| k != "dot" && k != "approx");
        }
        let cfg = <CampaignConfig as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(cfg.dot, DotKind::Scalar);
        assert_eq!(cfg.approx, GramApprox::Exact);
    }

    #[test]
    fn dot_and_approx_round_trip_through_config_json() {
        let c = CampaignConfig::default()
            .dot(DotKind::Blocked)
            .approx(GramApprox::Landmarks(8));
        let text = serde_json::to_string(&c).unwrap();
        let v = serde_json::from_str_value(&text).unwrap();
        let back = <CampaignConfig as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(back, c);
    }
}
