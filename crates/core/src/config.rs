//! Campaign configuration: everything that defines one measurement.

use anacin_event_graph::LabelPolicy;
use anacin_kernels::prelude::*;
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::network::{DelayDistribution, NetworkConfig};
use anacin_mpisim::SimConfig;
use serde::{Deserialize, Serialize};

/// Which kernel a campaign measures with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelChoice {
    /// Weisfeiler–Lehman subtree kernel (ANACIN-X default).
    Wl {
        /// WL iteration depth.
        iterations: u32,
        /// Node-label policy.
        policy: LabelPolicy,
    },
    /// Vertex-histogram baseline.
    VertexHistogram {
        /// Node-label policy.
        policy: LabelPolicy,
    },
    /// Edge-histogram baseline.
    EdgeHistogram {
        /// Node-label policy.
        policy: LabelPolicy,
    },
    /// Bounded shortest-path kernel.
    ShortestPath {
        /// Node-label policy.
        policy: LabelPolicy,
        /// BFS horizon.
        max_distance: u32,
    },
}

impl Default for KernelChoice {
    fn default() -> Self {
        KernelChoice::Wl {
            iterations: 3,
            policy: LabelPolicy::default(),
        }
    }
}

impl KernelChoice {
    /// Materialise the kernel object.
    pub fn instantiate(&self) -> Box<dyn GraphKernel> {
        match *self {
            KernelChoice::Wl { iterations, policy } => Box::new(WlKernel {
                iterations,
                policy,
                edge_sensitive: false,
            }),
            KernelChoice::VertexHistogram { policy } => Box::new(VertexHistogramKernel { policy }),
            KernelChoice::EdgeHistogram { policy } => Box::new(EdgeHistogramKernel { policy }),
            KernelChoice::ShortestPath {
                policy,
                max_distance,
            } => Box::new(ShortestPathKernel {
                policy,
                max_distance,
            }),
        }
    }
}

/// One measurement campaign: run a pattern many times at a setting and
/// measure the kernel-distance sample — the unit of every figure in the
/// paper's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Which mini-application to run.
    pub pattern: Pattern,
    /// The mini-application's parameters.
    pub app: MiniAppConfig,
    /// Percentage of non-determinism, `[0, 100]`.
    pub nd_percent: f64,
    /// Number of simulated compute nodes.
    pub nodes: u32,
    /// Number of runs (the paper uses 20 per setting).
    pub runs: u32,
    /// Seed of the first run; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Worker threads for simulation and kernel evaluation.
    pub threads: usize,
    /// The measurement kernel.
    pub kernel: KernelChoice,
    /// The congestion-delay distribution (ablation knob; the default is
    /// tuned so reorder depth grows gradually with ND%, matching the
    /// paper's Figure-7 shape rather than saturating instantly).
    pub delay: DelayDistribution,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            pattern: Pattern::MessageRace,
            app: MiniAppConfig::default(),
            nd_percent: 100.0,
            nodes: 1,
            runs: 20,
            base_seed: 1,
            threads: default_threads(),
            kernel: KernelChoice::default(),
            delay: DelayDistribution::Exponential { mean_ns: 100.0 },
        }
    }
}

/// Available parallelism, bounded for laptop friendliness.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

impl CampaignConfig {
    /// A campaign for `pattern` with `procs` processes, other fields
    /// default.
    pub fn new(pattern: Pattern, procs: u32) -> Self {
        CampaignConfig {
            pattern,
            app: MiniAppConfig::with_procs(procs),
            ..Default::default()
        }
    }

    /// Builder-style: set the ND percentage.
    pub fn nd_percent(mut self, percent: f64) -> Self {
        self.nd_percent = percent;
        self
    }

    /// Builder-style: set the run count.
    pub fn runs(mut self, runs: u32) -> Self {
        self.runs = runs;
        self
    }

    /// Builder-style: set the iteration count of the app.
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.app.iterations = iterations;
        self
    }

    /// Builder-style: set the node count.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder-style: set the base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Builder-style: set the kernel.
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder-style: set the congestion-delay distribution.
    pub fn delay(mut self, delay: DelayDistribution) -> Self {
        self.delay = delay;
        self
    }

    /// The simulator configuration of run `i`.
    pub fn sim_config(&self, run: u32) -> SimConfig {
        let network = NetworkConfig::with_nd_percent(self.nd_percent)
            .nodes(self.nodes)
            .delay(self.delay);
        SimConfig {
            network,
            seed: self.base_seed + run as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_sim_config() {
        let c = CampaignConfig::new(Pattern::Amg2013, 8)
            .nd_percent(40.0)
            .runs(5)
            .iterations(2)
            .nodes(2)
            .base_seed(100);
        assert_eq!(c.app.procs, 8);
        assert_eq!(c.app.iterations, 2);
        let sc = c.sim_config(3);
        assert_eq!(sc.seed, 103);
        assert!((sc.network.nd_fraction - 0.4).abs() < 1e-12);
        assert_eq!(sc.network.nodes, 2);
    }

    #[test]
    fn kernel_choices_instantiate() {
        use anacin_event_graph::LabelPolicy;
        for k in [
            KernelChoice::default(),
            KernelChoice::VertexHistogram {
                policy: LabelPolicy::EventType,
            },
            KernelChoice::EdgeHistogram {
                policy: LabelPolicy::TypeAndPeer,
            },
            KernelChoice::ShortestPath {
                policy: LabelPolicy::TypeAndPeer,
                max_distance: 3,
            },
        ] {
            let obj = k.instantiate();
            assert!(!obj.name().is_empty());
        }
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
