//! Non-determinism measurements: typed results around the kernel-distance
//! sample.

use crate::campaign::CampaignResult;
use anacin_stats::prelude::*;
use serde::{Deserialize, Serialize};

/// The measured amount of non-determinism at one setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NdMeasurement {
    /// Label of the setting (e.g. "32 procs" or "nd=40%").
    pub label: String,
    /// All pairwise kernel distances between the runs.
    pub distances: Vec<f64>,
    /// Summary statistics of the distances.
    pub summary: Summary,
}

impl NdMeasurement {
    /// Build from a finished campaign.
    pub fn from_campaign(label: impl Into<String>, result: &CampaignResult) -> NdMeasurement {
        Self::from_matrix(label, &result.matrix)
    }

    /// Build straight from a kernel matrix — the constructor the streaming
    /// campaign path uses, since it retains no traces or graphs. Given the
    /// same matrix, the measurement is identical to [`Self::from_campaign`].
    pub fn from_matrix(
        label: impl Into<String>,
        matrix: &anacin_kernels::matrix::KernelMatrix,
    ) -> NdMeasurement {
        let distances = matrix.pairwise_distances();
        let summary = Summary::of(&distances).unwrap_or(Summary {
            n: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            q1: 0.0,
            median: 0.0,
            q3: 0.0,
            max: 0.0,
        });
        NdMeasurement {
            label: label.into(),
            distances,
            summary,
        }
    }

    /// Measure against a *reference run* instead of all pairs: distances
    /// from run `reference` to every other run. ANACIN-X supports both
    /// views; the reference view is natural when one run is the blessed
    /// baseline (e.g. the recorded run in a replay workflow).
    ///
    /// # Panics
    /// Panics when `reference` is out of range.
    pub fn from_reference(
        label: impl Into<String>,
        result: &CampaignResult,
        reference: usize,
    ) -> NdMeasurement {
        assert!(reference < result.matrix.len(), "reference out of range");
        let distances = result.matrix.distances_from(reference);
        let summary = Summary::of(&distances).unwrap_or(Summary {
            n: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            q1: 0.0,
            median: 0.0,
            q3: 0.0,
            max: 0.0,
        });
        NdMeasurement {
            label: label.into(),
            distances,
            summary,
        }
    }

    /// The violin summary used by renderers.
    pub fn violin(&self) -> Option<ViolinSummary> {
        ViolinSummary::from_sample(self.label.clone(), &self.distances)
    }

    /// Mean pairwise distance (the scalar the paper plots on Y axes).
    pub fn mean(&self) -> f64 {
        self.summary.mean
    }

    /// Is this setting significantly more non-deterministic than `other`?
    /// One-sided Mann–Whitney U at the given alpha.
    pub fn significantly_greater_than(&self, other: &NdMeasurement, alpha: f64) -> bool {
        if self.distances.is_empty() || other.distances.is_empty() {
            return false;
        }
        mann_whitney_u(&self.distances, &other.distances).p_greater < alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::config::CampaignConfig;
    use anacin_miniapps::Pattern;

    #[test]
    fn measurement_from_campaign() {
        let r = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 8).runs(8)).unwrap();
        let m = NdMeasurement::from_campaign("race", &r);
        assert_eq!(m.label, "race");
        assert_eq!(m.distances.len(), 28);
        assert_eq!(m.summary.n, 28);
        assert!(m.mean() > 0.0);
        assert!(m.violin().is_some());
    }

    #[test]
    fn reference_measurement() {
        let r = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 8).runs(8)).unwrap();
        let m = NdMeasurement::from_reference("vs run 0", &r, 0);
        assert_eq!(m.distances.len(), 7);
        assert!(m.mean() > 0.0);
        // Reference distances are a subset-like view; means differ from
        // the all-pairs view in general but stay the same order of
        // magnitude.
        let all = NdMeasurement::from_campaign("all pairs", &r);
        assert!(m.mean() < 4.0 * all.mean());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reference_out_of_range_panics() {
        let r = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 4).runs(3)).unwrap();
        NdMeasurement::from_reference("x", &r, 99);
    }

    #[test]
    fn high_nd_beats_zero_nd() {
        let hi = NdMeasurement::from_campaign(
            "100%",
            &run_campaign(&CampaignConfig::new(Pattern::MessageRace, 8).runs(10)).unwrap(),
        );
        let lo = NdMeasurement::from_campaign(
            "0%",
            &run_campaign(
                &CampaignConfig::new(Pattern::MessageRace, 8)
                    .runs(10)
                    .nd_percent(0.0),
            )
            .unwrap(),
        );
        assert!(hi.significantly_greater_than(&lo, 0.01));
        assert!(!lo.significantly_greater_than(&hi, 0.5));
    }
}
