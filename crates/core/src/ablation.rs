//! Kernel ablation: which kernels can measure communication
//! non-determinism, and at what cost? (DESIGN.md design choice #1.)
//!
//! For a fixed sample of runs, evaluate several kernels and report each
//! one's *separation* — the mean pairwise distance it assigns to runs
//! that are known to differ — normalised by its self-consistency (always
//! 0 for identical runs). A kernel that reports ≈ 0 on genuinely
//! different runs (vertex histograms on pure match reorderings) is blind
//! to the phenomenon, whatever its speed.

use crate::campaign::CampaignResult;
use crate::config::KernelChoice;
use anacin_event_graph::LabelPolicy;
use anacin_kernels::matrix::gram_matrix;
use serde::{Deserialize, Serialize};

/// One kernel's row in the ablation table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Kernel display name.
    pub kernel: String,
    /// Mean pairwise distance over the sample (the ND signal).
    pub mean_distance: f64,
    /// Fraction of run pairs the kernel separates (distance > 0).
    pub separated_fraction: f64,
    /// Wall-clock microseconds to evaluate the full kernel matrix.
    pub micros: u128,
}

/// The ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationReport {
    /// One row per kernel, in input order.
    pub rows: Vec<AblationRow>,
}

impl AblationReport {
    /// Rows sorted by descending signal.
    pub fn by_signal(&self) -> Vec<&AblationRow> {
        let mut rows: Vec<&AblationRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| {
            b.mean_distance
                .partial_cmp(&a.mean_distance)
                .expect("finite distances")
        });
        rows
    }

    /// Render as an aligned text table.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{:>28} {:>14} {:>12} {:>10}\n",
            "kernel", "mean distance", "separated", "time (us)"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:>28} {:>14.4} {:>11.0}% {:>10}",
                r.kernel,
                r.mean_distance,
                r.separated_fraction * 100.0,
                r.micros
            );
        }
        s
    }
}

/// The default kernel set for the ablation.
pub fn default_kernels() -> Vec<KernelChoice> {
    vec![
        KernelChoice::Wl {
            iterations: 3,
            policy: LabelPolicy::TypeAndPeer,
        },
        KernelChoice::Wl {
            iterations: 3,
            policy: LabelPolicy::EventType,
        },
        KernelChoice::VertexHistogram {
            policy: LabelPolicy::TypeAndPeer,
        },
        KernelChoice::EdgeHistogram {
            policy: LabelPolicy::TypeAndPeer,
        },
        KernelChoice::ShortestPath {
            policy: LabelPolicy::TypeAndPeer,
            max_distance: 4,
        },
    ]
}

/// Evaluate `kernels` over an existing campaign's graphs.
pub fn ablate(result: &CampaignResult, kernels: &[KernelChoice]) -> AblationReport {
    let rows = kernels
        .iter()
        .map(|kc| {
            let kernel = kc.instantiate();
            let start = std::time::Instant::now();
            let m = gram_matrix(kernel.as_ref(), &result.graphs, result.config.threads);
            let micros = start.elapsed().as_micros();
            let d = m.pairwise_distances();
            let separated = if d.is_empty() {
                0.0
            } else {
                d.iter().filter(|&&x| x > 1e-12).count() as f64 / d.len() as f64
            };
            AblationRow {
                kernel: kernel.name(),
                mean_distance: m.mean_pairwise_distance(),
                separated_fraction: separated,
                micros,
            }
        })
        .collect();
    AblationReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::config::CampaignConfig;
    use anacin_miniapps::Pattern;

    #[test]
    fn wl_peer_beats_histograms_on_the_race() {
        // The race's runs differ only by match order; histogram kernels
        // are blind to that, WL with peer labels is not.
        let r = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 8).runs(8)).unwrap();
        let report = ablate(&r, &default_kernels());
        let signal = |name_part: &str| {
            report
                .rows
                .iter()
                .find(|row| row.kernel.contains(name_part))
                .unwrap_or_else(|| panic!("{name_part} missing"))
        };
        let wl_peer = signal("wl(h=3,TypeAndPeer)");
        let vertex = signal("vertex-hist");
        assert!(wl_peer.mean_distance > 0.0);
        assert!(wl_peer.separated_fraction > 0.9);
        assert!(
            vertex.mean_distance < 1e-9,
            "vertex histogram should be blind: {}",
            vertex.mean_distance
        );
        // Ranking puts WL/peer variants on top.
        let top = report.by_signal()[0];
        assert!(top.kernel.contains("TypeAndPeer"), "top = {}", top.kernel);
    }

    #[test]
    fn table_renders_all_rows() {
        let r = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 5).runs(5)).unwrap();
        let report = ablate(&r, &default_kernels());
        let t = report.table();
        assert_eq!(t.lines().count(), 1 + report.rows.len());
        assert!(t.contains("mean distance"));
    }
}
