//! Serializable reports and plain-text rendering of campaign results.
//!
//! The JSON builders here ([`measurement_json`], [`sweep_text`], the
//! explore report structs) are shared between the batch CLI and the
//! `anacin serve` daemon: both construct their output through the same
//! functions, which is what makes a service `Result` frame byte-identical
//! to a local `anacin run --json` of the same request.

use crate::config::CampaignConfig;
use crate::explore::ExploreCoverage;
use crate::measure::NdMeasurement;
use crate::root_cause::CallstackRanking;
use crate::sweep::Sweep;
use anacin_kernels::matrix::KernelMatrix;
use anacin_mpisim::explore::{ExploreConfig, ExploreStats};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A serializable snapshot of a measurement (one violin).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementReport {
    /// Setting label.
    pub label: String,
    /// Sample size (pair count).
    pub n: usize,
    /// Mean pairwise kernel distance.
    pub mean: f64,
    /// Median pairwise kernel distance.
    pub median: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum distance.
    pub min: f64,
    /// Maximum distance.
    pub max: f64,
}

impl From<&NdMeasurement> for MeasurementReport {
    fn from(m: &NdMeasurement) -> Self {
        MeasurementReport {
            label: m.label.clone(),
            n: m.summary.n,
            mean: m.summary.mean,
            median: m.summary.median,
            std_dev: m.summary.std_dev,
            min: m.summary.min,
            max: m.summary.max,
        }
    }
}

/// Render a sweep as an aligned text table (one row per point).
pub fn sweep_table(sweep: &Sweep) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
        sweep.parameter, "mean", "median", "std", "max"
    );
    for p in &sweep.points {
        let m = &p.measurement.summary;
        let _ = writeln!(
            s,
            "{:>12}  {:>12.4}  {:>12.4}  {:>12.4}  {:>12.4}",
            p.x, m.mean, m.median, m.std_dev, m.max
        );
    }
    s
}

/// Render a callstack ranking as a text table.
pub fn ranking_table(ranking: &CallstackRanking, limit: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:>8}  {:>10}  callstack", "count", "rel.freq");
    for e in ranking.entries.iter().take(limit) {
        let _ = writeln!(s, "{:>8}  {:>10.4}  {}", e.count, e.frequency, e.stack);
    }
    s
}

/// Serialize any report type to pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> serde_json::Result<String> {
    serde_json::to_string_pretty(value)
}

/// The measurement label `anacin run` prints: `<pattern> @ <nd>%`.
pub fn campaign_label(config: &CampaignConfig) -> String {
    format!("{} @ {}%", config.pattern, config.nd_percent)
}

/// The exact `anacin run --json` payload for a campaign's kernel matrix.
pub fn measurement_json(
    config: &CampaignConfig,
    matrix: &KernelMatrix,
) -> serde_json::Result<String> {
    let m = NdMeasurement::from_matrix(campaign_label(config), matrix);
    to_json(&MeasurementReport::from(&m))
}

/// The exact `anacin sweep` stdout for a finished sweep: the point table
/// plus the Spearman monotonicity line.
pub fn sweep_text(sweep: &Sweep) -> String {
    format!(
        "{}Spearman rho = {:.3}\n",
        sweep_table(sweep),
        sweep.spearman_monotonicity()
    )
}

/// The explore half of a `run --explore --json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ExploreSection {
    /// The enumeration bounds the request asked for.
    pub config: ExploreConfig,
    /// What the enumeration found.
    pub stats: ExploreStats,
    /// How the sampled campaign relates to the enumerated space.
    pub coverage: ExploreCoverage,
}

/// `run --explore --json`: the sampled measurement plus the enumeration.
#[derive(Debug, Clone, Serialize)]
pub struct RunWithExploreReport {
    /// The sampled campaign's measurement.
    pub measurement: MeasurementReport,
    /// The schedule-space enumeration and coverage.
    pub explore: ExploreSection,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::config::CampaignConfig;
    use crate::root_cause::{analyze, RootCauseConfig};
    use crate::sweep::sweep_nd_percent;
    use anacin_miniapps::Pattern;

    #[test]
    fn measurement_report_round_trips_json() {
        let r = run_campaign(&CampaignConfig::new(Pattern::MessageRace, 6).runs(5)).unwrap();
        let m = NdMeasurement::from_campaign("demo", &r);
        let rep = MeasurementReport::from(&m);
        let json = to_json(&rep).unwrap();
        let back: MeasurementReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
        assert_eq!(back.label, "demo");
    }

    #[test]
    fn sweep_table_has_one_row_per_point() {
        let base = CampaignConfig::new(Pattern::MessageRace, 6).runs(5);
        let sweep = sweep_nd_percent(&base, &[0.0, 100.0]).unwrap();
        let table = sweep_table(&sweep);
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("nd_percent"));
    }

    #[test]
    fn ranking_table_limits_rows() {
        let r = run_campaign(&CampaignConfig::new(Pattern::Amg2013, 4).runs(6)).unwrap();
        let ranking = analyze(&r, &RootCauseConfig::default());
        let table = ranking_table(&ranking, 2);
        assert!(table.lines().count() <= 3);
        assert!(table.contains("rel.freq"));
    }
}
