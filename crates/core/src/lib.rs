//! # anacin-core
//!
//! The ANACIN-X analysis pipeline — the paper's primary contribution,
//! assembled from the substrate crates:
//!
//! 1. **Campaigns** ([`campaign`]): run a mini-application many times (in
//!    parallel, seeded) and build the event graph of every run.
//! 2. **Measurement** ([`measure`]): the pairwise kernel-distance sample
//!    over the runs is the measured amount of non-determinism.
//! 3. **Sweeps** ([`sweep`]): vary ND%, process count, or iteration count
//!    and measure at each setting — the paper's Figures 5, 6 and 7.
//! 4. **Root-cause analysis** ([`root_cause`]): localise the call paths
//!    active in the most-divergent logical-time windows — Figure 8.
//!
//! ```
//! use anacin_core::prelude::*;
//! use anacin_miniapps::Pattern;
//!
//! // Measure the non-determinism of an 8-process message race at 100% ND.
//! let cfg = CampaignConfig::new(Pattern::MessageRace, 8).runs(10);
//! let result = run_campaign(&cfg).unwrap();
//! assert!(result.mean_distance() > 0.0);
//!
//! // And at 0% the same program is perfectly deterministic.
//! let det = run_campaign(&cfg.clone().nd_percent(0.0)).unwrap();
//! assert_eq!(det.mean_distance(), 0.0);
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod campaign;
pub mod config;
pub mod explore;
pub mod incremental;
pub mod measure;
pub mod report;
pub mod root_cause;
pub mod sweep;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::ablation::{ablate, default_kernels, AblationReport, AblationRow};
    pub use crate::campaign::{
        run_campaign, run_campaign_cancellable, run_campaign_observed, run_campaign_streaming,
        run_campaign_streaming_cancellable, run_campaign_streaming_observed,
        run_campaign_with_metrics, run_traces, run_traces_cancellable, run_traces_observed,
        run_traces_with_metrics, CampaignError, CampaignResult, Interrupted,
        StreamingCampaignResult,
    };
    pub use crate::config::{
        default_threads, CampaignConfig, GramApprox, GramSchedule, KernelChoice,
    };
    pub use crate::explore::{
        explore_campaign, explore_campaign_incremental, explore_campaign_incremental_observed,
        explore_campaign_observed, explore_fingerprint, ExploreCampaignResult, ExploreCoverage,
    };
    pub use crate::incremental::{
        campaign_fingerprint, features_fingerprint, run_campaign_append,
        run_campaign_append_cancellable, run_campaign_append_with_metrics,
        run_campaign_incremental, run_campaign_incremental_cancellable,
        run_campaign_incremental_observed, run_campaign_incremental_with_metrics, run_fingerprint,
        IncrementalError, KEY_SCHEMA,
    };
    pub use crate::measure::NdMeasurement;
    pub use crate::report::{
        campaign_label, measurement_json, ranking_table, sweep_table, sweep_text, ExploreSection,
        MeasurementReport, RunWithExploreReport,
    };
    pub use crate::root_cause::{analyze, CallstackRanking, RootCauseConfig};
    pub use crate::sweep::{
        sweep_iterations, sweep_iterations_cancellable, sweep_iterations_instrumented,
        sweep_iterations_instrumented_cancellable, sweep_iterations_stored,
        sweep_iterations_stored_cancellable, sweep_iterations_with_metrics, sweep_nd_percent,
        sweep_nd_percent_cancellable, sweep_nd_percent_instrumented,
        sweep_nd_percent_instrumented_cancellable, sweep_nd_percent_stored,
        sweep_nd_percent_stored_cancellable, sweep_nd_percent_with_metrics, sweep_procs,
        sweep_procs_cancellable, sweep_procs_instrumented, sweep_procs_instrumented_cancellable,
        sweep_procs_stored, sweep_procs_stored_cancellable, sweep_procs_with_metrics, Sweep,
        SweepMetrics, SweepPoint, SweepPointMetrics,
    };
}

pub use campaign::{run_campaign, run_campaign_with_metrics, CampaignError, CampaignResult};
pub use config::{CampaignConfig, GramApprox, GramSchedule, KernelChoice};
pub use incremental::{run_campaign_incremental, IncrementalError};
pub use measure::NdMeasurement;
