//! Structured execution tracing: a bounded, non-blocking event ring plus
//! Chrome-trace and flamegraph exporters.
//!
//! The metrics registry ([`crate::MetricsRegistry`]) answers *how much* —
//! totals and span statistics. This module answers *when* and *where*:
//! it records individual events on a timeline, in two classes:
//!
//! * **Simulated-time MPI events** ([`SimEvent`]) — one per traced MPI
//!   call (`init`/`send`/`recv`/`finalize`), per rank, stamped with the
//!   *simulated* clock and tagged with the `(run, seed)` of the campaign
//!   run that produced it. Matched sends and receives share a
//!   [`message_id`], so viewers can draw inter-rank message arrows.
//! * **Wall-clock pipeline spans** ([`SpanMark`]) — begin/end marks
//!   emitted by [`crate::Span`] when a tracer is attached to the registry,
//!   stamped with the wall clock (nanoseconds since the tracer's epoch)
//!   and the recording OS thread. The span *path* already carries the
//!   nesting the thread-local span stack resolved (`campaign/simulate`),
//!   so the trace preserves the full stage tree.
//!
//! The ring is **bounded**: a fixed number of slots, claimed with one
//! atomic `fetch_add` and published with one uncontended `try_lock` per
//! record. Writers never block and never allocate beyond the record
//! itself; when the ring wraps, the *oldest* records are overwritten and
//! counted in [`Tracer::dropped`] — memory use is capped no matter how
//! long a campaign runs.
//!
//! Tracing is observability-only, like the rest of this crate: recording
//! reads finished state (the simulator emits its events *after* a run
//! completes, from the immutable trace) and therefore can never perturb
//! simulated time or the injection RNG. A traced run is bit-identical to
//! a plain run; `tests/tracing.rs` asserts this differentially.

use crate::sink::TraceSink;
use crate::MetricsReport;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity (records). At roughly 100 bytes per record this
/// bounds a tracer at ~25 MB.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Records per [`Tracer::pump`] drain batch: large enough to amortise the
/// drain lock, small enough to bound the copied chunk.
const DRAIN_BATCH: usize = 4096;

static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_ID: Cell<Option<u32>> = const { Cell::new(None) };
}

/// A small dense identifier of the calling OS thread, stable for the
/// thread's lifetime (used as the Chrome-trace `tid` of wall-clock
/// tracks).
pub fn current_thread_id() -> u32 {
    THREAD_ID.with(|id| match id.get() {
        Some(v) => v,
        None => {
            let v = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            id.set(Some(v));
            v
        }
    })
}

/// The deterministic identity of one matched message: mixes
/// `(run, src, dst, channel seq)` into a 64-bit id shared by the send and
/// the receive of the message (a splitmix64-style finalizer per word).
pub fn message_id(run: u32, src: u32, dst: u32, seq: u64) -> u64 {
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
    let mut h = 0x9e3779b97f4a7c15u64;
    for w in [run as u64, src as u64, dst as u64, seq] {
        h = mix(h ^ w).wrapping_add(0x9e3779b97f4a7c15);
    }
    h
}

/// What a simulated MPI event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEventKind {
    /// `MPI_Init`.
    Init,
    /// `MPI_Finalize`.
    Finalize,
    /// A message injection; `msg_id` is shared with the matching receive.
    Send {
        /// Matched-message identity ([`message_id`]).
        msg_id: u64,
    },
    /// A completed receive. Nonblocking receives complete at the wait
    /// that observes them, mirroring the simulator's trace placement.
    Recv {
        /// Matched-message identity ([`message_id`]).
        msg_id: u64,
        /// True when the receive was posted with a wildcard.
        wildcard: bool,
    },
}

impl SimEventKind {
    /// Short mnemonic, also the Chrome-trace event name.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            SimEventKind::Init => "init",
            SimEventKind::Finalize => "finalize",
            SimEventKind::Send { .. } => "send",
            SimEventKind::Recv { .. } => "recv",
        }
    }
}

/// One simulated-time MPI event.
#[derive(Debug, Clone, PartialEq)]
pub struct SimEvent {
    /// Campaign run index that produced the event.
    pub run: u32,
    /// Simulator seed of that run.
    pub seed: u64,
    /// Rank the event occurred on.
    pub rank: u32,
    /// Event index within the rank (program order).
    pub idx: u32,
    /// What happened.
    pub kind: SimEventKind,
    /// Simulated completion time, nanoseconds.
    pub t_ns: u64,
}

/// One wall-clock span boundary (begin or end).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanMark {
    /// Nesting-resolved span path, e.g. `campaign/simulate`.
    pub path: String,
    /// Recording OS thread ([`current_thread_id`]).
    pub thread: u32,
    /// Wall time, nanoseconds since the tracer's epoch.
    pub t_ns: u64,
}

/// One record in the ring.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A simulated-time MPI event.
    Sim(SimEvent),
    /// A pipeline span opened.
    SpanBegin(SpanMark),
    /// A pipeline span closed.
    SpanEnd(SpanMark),
}

/// A ring slot: the claim index plus the record written under it.
type Slot = Mutex<Option<(u64, TraceRecord)>>;

/// The chunked-drain consumer's position. The cursor is the next claim
/// index to hand out; `drained + lost == cursor` is the asserted
/// invariant — every index below the cursor was accounted exactly once.
#[derive(Debug, Default)]
struct DrainState {
    cursor: u64,
    drained: u64,
    lost: u64,
}

/// Accounting of the chunked drain consumer ([`Tracer::drain_stats`]).
///
/// `recorded == drained + lost + pending` always holds (the ISSUE-form
/// `recorded − dropped == drained + len` with `dropped = lost` and
/// `len = pending`): every record ever claimed is either delivered to
/// the consumer, lost (overwritten by wrap or never published), or still
/// ahead of the cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainStats {
    /// Records delivered to the consumer so far.
    pub drained: u64,
    /// Records the consumer will never see: overwritten by wrap before
    /// the cursor reached them, or written off as unpublished by
    /// [`Tracer::drain_remaining`].
    pub lost: u64,
    /// Records still ahead of the cursor at stat time.
    pub pending: u64,
}

struct TracerInner {
    epoch: Instant,
    capacity: u64,
    /// Total records ever claimed (monotone; `head % capacity` is the
    /// next slot).
    head: AtomicU64,
    /// Records discarded because their slot was mid-write (wrap
    /// collision). Overwritten-by-wrap drops are `head - capacity`.
    collisions: AtomicU64,
    /// Each slot holds `(claim index, record)`; `try_lock` keeps the
    /// write path non-blocking (a contended slot drops the record
    /// instead of waiting).
    slots: Box<[Slot]>,
    /// Chunked-drain consumer position (one consumer; sinks and manual
    /// drains share it).
    drain: Mutex<DrainState>,
    /// The attached streaming sink, if any.
    sink: Mutex<Option<Box<dyn TraceSink>>>,
    /// Fast-path flag mirroring `sink.is_some()`, so `pump()` costs one
    /// relaxed load when no sink is attached.
    has_sink: AtomicBool,
    /// First sink I/O error, if any; reported by [`Tracer::finish_sink`].
    sink_error: Mutex<Option<String>>,
}

/// A bounded, thread-safe execution tracer. Cloning yields another handle
/// onto the same ring.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer with the default capacity ([`DEFAULT_CAPACITY`] records).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer holding at most `capacity` records (clamped to ≥ 16).
    /// When more are recorded, the oldest are overwritten and counted as
    /// dropped.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        let slots = (0..capacity)
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                capacity: capacity as u64,
                head: AtomicU64::new(0),
                collisions: AtomicU64::new(0),
                slots,
                drain: Mutex::new(DrainState::default()),
                sink: Mutex::new(None),
                has_sink: AtomicBool::new(false),
                sink_error: Mutex::new(None),
            }),
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.inner.capacity as usize
    }

    /// Total records ever offered to the ring (recorded + dropped).
    pub fn recorded(&self) -> u64 {
        self.inner.head.load(Ordering::Relaxed)
    }

    /// Records no longer retrievable: overwritten by wrap-around
    /// (oldest-first) plus wrap collisions. [`TraceSnapshot::dropped`]
    /// is the exact count at snapshot time.
    pub fn dropped(&self) -> u64 {
        let head = self.inner.head.load(Ordering::Relaxed);
        head.saturating_sub(self.inner.capacity) + self.inner.collisions.load(Ordering::Relaxed)
    }

    /// Wall time in nanoseconds since this tracer was created (the epoch
    /// of every [`SpanMark`]).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Record one event. Never blocks: the slot is claimed with one
    /// atomic add, and if the slot is still being written by a lapped
    /// writer the record is dropped (counted) instead of waiting.
    pub fn record(&self, record: TraceRecord) {
        let inner = &*self.inner;
        let idx = inner.head.fetch_add(1, Ordering::Relaxed);
        let slot = &inner.slots[(idx % inner.capacity) as usize];
        match slot.try_lock() {
            Ok(mut guard) => *guard = Some((idx, record)),
            Err(_) => {
                inner.collisions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Convenience: record a span-begin mark on the current thread at the
    /// current wall time.
    pub fn span_begin(&self, path: &str) {
        self.record(TraceRecord::SpanBegin(SpanMark {
            path: path.to_string(),
            thread: current_thread_id(),
            t_ns: self.now_ns(),
        }));
    }

    /// Convenience: record a span-end mark on the current thread at the
    /// current wall time.
    pub fn span_end(&self, path: &str) {
        self.record(TraceRecord::SpanEnd(SpanMark {
            path: path.to_string(),
            thread: current_thread_id(),
            t_ns: self.now_ns(),
        }));
    }

    /// Snapshot the ring into export-ready, deterministically ordered
    /// data. Intended to be called after the traced work has finished;
    /// records written concurrently with the snapshot may be counted as
    /// dropped.
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Acquire);
        let start = head.saturating_sub(inner.capacity);
        let mut sim = Vec::new();
        let mut spans = Vec::new();
        let mut valid = 0u64;
        for idx in start..head {
            let slot = &inner.slots[(idx % inner.capacity) as usize];
            let rec = match slot.try_lock() {
                Ok(guard) => match &*guard {
                    Some((i, rec)) if *i == idx => Some(rec.clone()),
                    _ => None,
                },
                Err(_) => None,
            };
            if let Some(rec) = rec {
                valid += 1;
                match rec {
                    TraceRecord::Sim(e) => sim.push(e),
                    TraceRecord::SpanBegin(m) => spans.push((false, m)),
                    TraceRecord::SpanEnd(m) => spans.push((true, m)),
                }
            }
        }
        // Simulated events sort by (run, rank, idx): independent of which
        // worker thread simulated which run, so exports are reproducible.
        sim.sort_by_key(|e| (e.run, e.rank, e.idx));
        TraceSnapshot {
            sim,
            spans,
            recorded: head,
            dropped: head - valid,
        }
    }

    /// Drain up to `max` published records past the consumer cursor, in
    /// claim order. Stops early at the first slot still being written
    /// (concurrent drain is safe: the next call resumes there). Records
    /// the cursor was lapped past are counted as lost and skipped, so a
    /// slow consumer falls behind but never stalls the ring.
    ///
    /// Draining does not remove records from the ring — a later
    /// [`Tracer::snapshot`] still sees everything the ring retains.
    pub fn drain(&self, max: usize) -> Vec<TraceRecord> {
        self.drain_chunk(max, false)
    }

    /// Like [`Tracer::drain`], but treats unpublished slots as lost
    /// instead of stopping: a writer that collided on its slot never
    /// publishes it, which would stall a prefix-only drain forever. Call
    /// only once writers have quiesced (end of run).
    pub fn drain_remaining(&self, max: usize) -> Vec<TraceRecord> {
        self.drain_chunk(max, true)
    }

    fn drain_chunk(&self, max: usize, to_end: bool) -> Vec<TraceRecord> {
        let inner = &*self.inner;
        let mut st = inner.drain.lock().expect("drain state poisoned");
        let head = inner.head.load(Ordering::Acquire);
        let floor = head.saturating_sub(inner.capacity);
        let mut out = Vec::new();
        while st.cursor < head && out.len() < max {
            let i = st.cursor;
            if i < floor {
                // Lapped before the consumer got here: the slot now holds
                // (or will hold) a newer record.
                st.lost += 1;
                st.cursor += 1;
                continue;
            }
            let advanced = match inner.slots[(i % inner.capacity) as usize].try_lock() {
                Ok(guard) => match &*guard {
                    Some((ci, rec)) if *ci == i => {
                        out.push(rec.clone());
                        st.drained += 1;
                        true
                    }
                    Some((ci, _)) if *ci > i => {
                        // Overwritten between our head load and now.
                        st.lost += 1;
                        true
                    }
                    // Claimed but not yet published (writer between its
                    // fetch_add and its slot write, or a collision victim
                    // whose record will never arrive).
                    _ => {
                        if to_end {
                            st.lost += 1;
                        }
                        to_end
                    }
                },
                Err(_) => {
                    // Writer holds the slot lock right now.
                    if to_end {
                        st.lost += 1;
                    }
                    to_end
                }
            };
            if !advanced {
                break;
            }
            st.cursor += 1;
        }
        debug_assert_eq!(st.drained + st.lost, st.cursor, "drain cursor accounting");
        out
    }

    /// The chunked-drain consumer's accounting. The invariant
    /// `recorded == drained + lost + pending` holds at any quiescent
    /// point (and is what the drain property tests assert).
    pub fn drain_stats(&self) -> DrainStats {
        let st = self.inner.drain.lock().expect("drain state poisoned");
        let head = self.inner.head.load(Ordering::Acquire);
        DrainStats {
            drained: st.drained,
            lost: st.lost,
            pending: head - st.cursor,
        }
    }

    /// Attach a streaming sink: subsequent [`Tracer::pump`] calls drain
    /// the ring into it incrementally, and [`Tracer::finish_sink`] flushes
    /// the tail and finalises the output. One sink at a time; attaching
    /// replaces any previous one.
    pub fn attach_sink(&self, sink: Box<dyn TraceSink>) {
        *self.inner.sink.lock().expect("sink slot poisoned") = Some(sink);
        self.inner.has_sink.store(true, Ordering::Release);
    }

    /// Whether a sink is attached and healthy (one relaxed load — cheap
    /// enough for producers to call per record batch).
    pub fn has_sink(&self) -> bool {
        self.inner.has_sink.load(Ordering::Relaxed)
    }

    /// Drain every published record into the attached sink. Non-blocking
    /// for producers: with no sink it is one atomic load, and when
    /// another thread is already pumping it returns immediately (that
    /// thread will pick up the new records). Returns the records
    /// delivered by *this* call. Sink I/O errors disable further pumping
    /// and surface from [`Tracer::finish_sink`].
    pub fn pump(&self) -> u64 {
        if !self.has_sink() {
            return 0;
        }
        let Ok(mut guard) = self.inner.sink.try_lock() else {
            return 0;
        };
        let Some(sink) = guard.as_mut() else {
            return 0;
        };
        let mut delivered = 0u64;
        loop {
            let chunk = self.drain_chunk(DRAIN_BATCH, false);
            if chunk.is_empty() {
                break;
            }
            for rec in &chunk {
                if let Err(e) = sink.accept(rec) {
                    self.note_sink_error(&e);
                    return delivered;
                }
                delivered += 1;
            }
        }
        delivered
    }

    /// Drain the tail (including unpublished slots, written off as lost),
    /// finalise the sink, and detach it. Call once, after the traced work
    /// has finished. Returns the final drain accounting, or the first
    /// sink I/O error encountered anywhere in the stream.
    pub fn finish_sink(&self) -> Result<DrainStats, String> {
        let mut guard = self.inner.sink.lock().expect("sink slot poisoned");
        let Some(mut sink) = guard.take() else {
            return Err("no sink attached".to_string());
        };
        self.inner.has_sink.store(false, Ordering::Release);
        drop(guard);
        let failed =
            |e: &Mutex<Option<String>>| e.lock().expect("sink error slot poisoned").clone();
        loop {
            if let Some(e) = failed(&self.inner.sink_error) {
                return Err(e);
            }
            let chunk = self.drain_remaining(DRAIN_BATCH);
            if chunk.is_empty() {
                break;
            }
            for rec in &chunk {
                if let Err(e) = sink.accept(rec) {
                    return Err(format!("trace sink: {e}"));
                }
            }
        }
        let stats = self.drain_stats();
        sink.finish(&stats)
            .map_err(|e| format!("trace sink: {e}"))?;
        Ok(stats)
    }

    fn note_sink_error(&self, e: &std::io::Error) {
        let mut slot = self
            .inner
            .sink_error
            .lock()
            .expect("sink error slot poisoned");
        if slot.is_none() {
            *slot = Some(format!("trace sink: {e}"));
        }
        // Stop producers from pumping into a broken sink.
        self.inner.has_sink.store(false, Ordering::Release);
    }
}

/// A matched wall-clock span instance reconstructed from begin/end marks.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedSpan {
    /// Nesting-resolved span path.
    pub path: String,
    /// Recording OS thread.
    pub thread: u32,
    /// Begin wall time, nanoseconds since the tracer epoch.
    pub begin_ns: u64,
    /// End wall time, nanoseconds since the tracer epoch.
    pub end_ns: u64,
    /// Wall time spent in this span minus its nested child spans.
    pub self_ns: u64,
}

/// An export-ready snapshot of a [`Tracer`]'s ring.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Simulated MPI events, sorted by `(run, rank, idx)` — a
    /// deterministic order for a given program and seed set, independent
    /// of worker-thread scheduling.
    pub sim: Vec<SimEvent>,
    /// Span marks `(is_end, mark)` in ring (i.e. chronological-per-thread)
    /// order.
    pub spans: Vec<(bool, SpanMark)>,
    /// Total records offered to the ring.
    pub recorded: u64,
    /// Records lost to wrap-around or write collisions (oldest first).
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Reconstruct well-nested span instances per thread. Begin marks
    /// without a matching end (or vice versa — e.g. the counterpart was
    /// overwritten in the ring) are discarded, so the result is always
    /// balanced.
    pub fn matched_spans(&self) -> Vec<MatchedSpan> {
        matched_spans_of(&self.spans)
    }

    /// Export as Chrome Trace Event Format JSON (loadable in Perfetto /
    /// `chrome://tracing`).
    ///
    /// * One process per campaign run (`pid = 1000 + run`, named with the
    ///   run's seed), one track per simulated rank, in **simulated time**.
    ///   Matched messages carry flow events (`ph: "s"`/`"f"`) sharing the
    ///   message id, so viewers draw inter-rank arrows.
    /// * With `include_wall`, one extra process (`pid = 1`) holding one
    ///   track per OS thread in **wall time**, with balanced `B`/`E` pairs
    ///   for every completed pipeline span.
    ///
    /// With `include_wall = false` the output is byte-deterministic for a
    /// given program and seed set (simulated time only).
    pub fn chrome_trace(&self, include_wall: bool) -> String {
        let mut events: Vec<String> = Vec::new();
        // Run/rank track metadata, in sorted order.
        let mut runs: Vec<(u32, u64)> = self.sim.iter().map(|e| (e.run, e.seed)).collect();
        runs.sort_unstable();
        runs.dedup();
        for &(run, seed) in &runs {
            events.push(chrome_run_meta(run, seed));
            let mut ranks: Vec<u32> = self
                .sim
                .iter()
                .filter(|e| e.run == run)
                .map(|e| e.rank)
                .collect();
            ranks.sort_unstable();
            ranks.dedup();
            for r in ranks {
                events.push(chrome_rank_meta(run, r));
            }
        }
        // Simulated events: near-zero-duration slices (so flows can bind
        // to them) plus flow start/finish events for matched messages.
        for e in &self.sim {
            events.push(chrome_sim_slice(e));
            if let Some(flow) = chrome_sim_flow(e) {
                events.push(flow);
            }
        }
        if include_wall {
            events.extend(chrome_wall_events(&self.spans));
        }
        let mut out = String::from(CHROME_HEADER);
        out.push_str(&events.join(",\n"));
        out.push_str(CHROME_FOOTER);
        out
    }

    /// Export the wall-clock span tree as folded stacks (one line per
    /// stack, `a;b;c <self-time-µs>`), the input format of inferno /
    /// `flamegraph.pl`. Self time excludes nested child spans, so the
    /// flamegraph does not double-count.
    pub fn folded_stacks(&self) -> String {
        folded_from_spans(&self.spans)
    }

    /// Merge the spans into per-path totals (used by overhead accounting
    /// and the ASCII summary).
    pub fn span_totals(&self) -> Vec<(String, u64)> {
        let mut totals: Vec<(String, u64)> = Vec::new();
        for s in self.matched_spans() {
            let dur = s.end_ns - s.begin_ns;
            match totals.iter_mut().find(|(k, _)| *k == s.path) {
                Some((_, v)) => *v += dur,
                None => totals.push((s.path.clone(), dur)),
            }
        }
        totals.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        totals
    }

    /// Sanity cross-check used by tests: per-run simulated event counts.
    pub fn sim_events_per_run(&self) -> Vec<(u32, usize)> {
        let mut counts: Vec<(u32, usize)> = Vec::new();
        for e in &self.sim {
            match counts.iter_mut().find(|(r, _)| *r == e.run) {
                Some((_, c)) => *c += 1,
                None => counts.push((e.run, 1)),
            }
        }
        counts.sort_unstable();
        counts
    }
}

/// Opening bytes of a Chrome Trace Event Format export. Event objects
/// follow one per line, comma-separated; [`CHROME_FOOTER`] closes the
/// document. The streaming sink and [`TraceSnapshot::chrome_trace`]
/// share these so their outputs are line-for-line comparable.
pub const CHROME_HEADER: &str = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

/// Closing bytes of a Chrome Trace Event Format export.
pub const CHROME_FOOTER: &str = "\n]}\n";

/// Chrome-trace metadata naming the process of campaign run `run`
/// (`pid = 1000 + run`, labelled with the run's seed).
pub fn chrome_run_meta(run: u32, seed: u64) -> String {
    let pid = 1000 + run;
    format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"sim run {run} (seed {seed})\"}}}}"
    )
}

/// Chrome-trace metadata naming run `run`'s track for `rank`.
pub fn chrome_rank_meta(run: u32, rank: u32) -> String {
    let pid = 1000 + run;
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{rank},\
         \"args\":{{\"name\":\"rank {rank}\"}}}}"
    )
}

/// The near-zero-duration slice of one simulated MPI event (flows bind
/// to these).
pub fn chrome_sim_slice(e: &SimEvent) -> String {
    let pid = 1000 + e.run;
    let ts = micros(e.t_ns);
    let name = e.kind.mnemonic();
    let args = match e.kind {
        SimEventKind::Send { msg_id } => format!("{{\"msg\":{msg_id}}}"),
        SimEventKind::Recv { msg_id, wildcard } => {
            format!("{{\"msg\":{msg_id},\"wildcard\":{wildcard}}}")
        }
        _ => "{}".to_string(),
    };
    format!(
        "{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":{pid},\
         \"tid\":{},\"ts\":{ts},\"dur\":0.001,\"args\":{args}}}",
        e.rank
    )
}

/// The flow event of a matched message (`ph: "s"` at the send, `"f"` at
/// the receive); `None` for events that carry no message.
pub fn chrome_sim_flow(e: &SimEvent) -> Option<String> {
    let pid = 1000 + e.run;
    let ts = micros(e.t_ns);
    match e.kind {
        SimEventKind::Send { msg_id } => Some(format!(
            "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":{msg_id},\
             \"pid\":{pid},\"tid\":{},\"ts\":{ts}}}",
            e.rank
        )),
        SimEventKind::Recv { msg_id, .. } => Some(format!(
            "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\
             \"id\":{msg_id},\"pid\":{pid},\"tid\":{},\"ts\":{ts}}}",
            e.rank
        )),
        _ => None,
    }
}

/// Reconstruct well-nested span instances per thread from raw begin/end
/// marks in ring order. Begin marks without a matching end (or vice
/// versa — e.g. the counterpart was overwritten in the ring) are
/// discarded, so the result is always balanced.
pub fn matched_spans_of(spans: &[(bool, SpanMark)]) -> Vec<MatchedSpan> {
    // Per-thread stacks of (index into spans, begin time, child time).
    type OpenSpan = (usize, u64, u64);
    let mut stacks: Vec<(u32, Vec<OpenSpan>)> = Vec::new();
    let mut out = Vec::new();
    for (i, (is_end, m)) in spans.iter().enumerate() {
        let stack = match stacks.iter_mut().find(|(t, _)| *t == m.thread) {
            Some((_, s)) => s,
            None => {
                stacks.push((m.thread, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        if !*is_end {
            stack.push((i, m.t_ns, 0));
        } else if let Some(&(bi, begin_ns, child_ns)) = stack.last() {
            // Only a LIFO match closes a span; anything else means the
            // counterpart mark was lost, so the end mark is discarded.
            if let (false, bm) = &spans[bi] {
                if bm.path == m.path {
                    stack.pop();
                    let dur = m.t_ns.saturating_sub(begin_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += dur;
                    }
                    out.push(MatchedSpan {
                        path: m.path.clone(),
                        thread: m.thread,
                        begin_ns,
                        end_ns: m.t_ns,
                        self_ns: dur.saturating_sub(child_ns),
                    });
                }
            }
        }
    }
    out
}

/// Which marks belong to a matched begin/end pair (the same LIFO
/// matching as [`matched_spans_of`]), so exporters emit balanced B/E.
fn span_keep_mask(spans: &[(bool, SpanMark)]) -> Vec<bool> {
    let mut keep = vec![false; spans.len()];
    let mut stacks: Vec<(u32, Vec<usize>)> = Vec::new();
    for (i, (is_end, m)) in spans.iter().enumerate() {
        let stack = match stacks.iter_mut().find(|(t, _)| *t == m.thread) {
            Some((_, s)) => s,
            None => {
                stacks.push((m.thread, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        if !*is_end {
            stack.push(i);
        } else if let Some(&bi) = stack.last() {
            if spans[bi].1.path == m.path {
                stack.pop();
                keep[bi] = true;
                keep[i] = true;
            }
        }
    }
    keep
}

/// The wall-clock section of a Chrome export: process/thread metadata
/// for every thread that completed a span, then balanced `B`/`E` marks
/// in ring order. Shared by the snapshot exporter and the streaming
/// sink, so both emit byte-identical event lines.
pub fn chrome_wall_events(spans: &[(bool, SpanMark)]) -> Vec<String> {
    let mut events = Vec::new();
    let keep = span_keep_mask(spans);
    let mut threads: Vec<u32> = spans
        .iter()
        .enumerate()
        .filter(|(i, (is_end, _))| keep[*i] && *is_end)
        .map(|(_, (_, m))| m.thread)
        .collect();
    threads.sort_unstable();
    threads.dedup();
    if !threads.is_empty() {
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"pipeline (wall clock)\"}}"
                .to_string(),
        );
    }
    for t in threads {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\
             \"args\":{{\"name\":\"thread {t}\"}}}}"
        ));
    }
    for (i, (is_end, m)) in spans.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let ph = if *is_end { "E" } else { "B" };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"wall\",\"ph\":\"{ph}\",\"pid\":1,\
             \"tid\":{},\"ts\":{}}}",
            escape(&m.path),
            m.thread,
            micros(m.t_ns)
        ));
    }
    events
}

/// Fold raw span marks into flamegraph stacks (one line per stack,
/// `a;b;c <self-time-µs>`, the inferno / `flamegraph.pl` input). Self
/// time excludes nested child spans, so the flamegraph does not
/// double-count.
pub fn folded_from_spans(spans: &[(bool, SpanMark)]) -> String {
    let mut totals: Vec<(String, u64)> = Vec::new();
    for s in matched_spans_of(spans) {
        let key = s.path.replace('/', ";");
        match totals.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += s.self_ns,
            None => totals.push((key, s.self_ns)),
        }
    }
    totals.sort();
    let mut out = String::new();
    for (key, self_ns) in totals {
        let us = self_ns / 1_000;
        if us > 0 {
            out.push_str(&key);
            out.push(' ');
            out.push_str(&us.to_string());
            out.push('\n');
        }
    }
    out
}

/// Merge of [`MetricsReport`]s — see [`MetricsReport::merge`].
pub(crate) fn merge_reports(into: &mut MetricsReport, other: &MetricsReport) {
    for c in &other.counters {
        match into.counters.iter_mut().find(|x| x.name == c.name) {
            Some(x) => x.value += c.value,
            None => into.counters.push(c.clone()),
        }
    }
    for g in &other.gauges {
        match into.gauges.iter_mut().find(|x| x.name == g.name) {
            Some(x) => x.value = g.value,
            None => into.gauges.push(g.clone()),
        }
    }
    for s in &other.spans {
        match into.spans.iter_mut().find(|x| x.name == s.name) {
            Some(x) => {
                if x.count == 0 {
                    x.min_ns = s.min_ns;
                    x.max_ns = s.max_ns;
                } else if s.count > 0 {
                    x.min_ns = x.min_ns.min(s.min_ns);
                    x.max_ns = x.max_ns.max(s.max_ns);
                }
                x.count += s.count;
                x.total_ns += s.total_ns;
                x.mean_ns = if x.count == 0 {
                    0.0
                } else {
                    x.total_ns as f64 / x.count as f64
                };
                // Histograms add bucket-wise; quantiles re-derive from
                // the merged distribution, not from the inputs' quantiles
                // (quantiles do not compose, bucket counts do).
                crate::hist::merge_sparse(&mut x.hist, &s.hist);
                let (p50, p95, p99) = crate::hist::percentiles_sparse(&x.hist);
                x.p50_ns = p50;
                x.p95_ns = p95;
                x.p99_ns = p99;
            }
            None => into.spans.push(s.clone()),
        }
    }
    into.counters.sort_by(|a, b| a.name.cmp(&b.name));
    into.gauges.sort_by(|a, b| {
        a.name
            .partial_cmp(&b.name)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    into.spans.sort_by(|a, b| a.name.cmp(&b.name));
}

/// Nanoseconds → Chrome-trace microsecond timestamp (printed as an exact
/// short decimal, so equal inputs always print identically).
fn micros(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}.0")
    } else {
        let mut s = format!("{whole}.{frac:03}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(run: u32, rank: u32, idx: u32, t_ns: u64) -> TraceRecord {
        TraceRecord::Sim(SimEvent {
            run,
            seed: 7,
            rank,
            idx,
            kind: SimEventKind::Init,
            t_ns,
        })
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops_oldest_first() {
        let t = Tracer::with_capacity(16);
        for i in 0..40 {
            t.record(sim(0, 0, i, i as u64));
        }
        let snap = t.snapshot();
        assert_eq!(snap.recorded, 40);
        assert_eq!(snap.dropped, 24);
        assert_eq!(t.dropped(), 24);
        assert_eq!(snap.sim.len(), 16);
        // Oldest records (idx 0..24) were overwritten; the newest survive.
        let idxs: Vec<u32> = snap.sim.iter().map(|e| e.idx).collect();
        assert_eq!(idxs, (24..40).collect::<Vec<u32>>());
    }

    #[test]
    fn concurrent_recording_never_panics_and_accounts_every_record() {
        let t = Tracer::with_capacity(64);
        std::thread::scope(|s| {
            for th in 0..4u32 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..5_000u32 {
                        t.record(sim(th, 0, i, i as u64));
                    }
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.recorded, 20_000);
        assert_eq!(snap.sim.len() as u64 + snap.dropped, 20_000);
        assert!(snap.sim.len() <= 64);
    }

    #[test]
    fn capacity_is_clamped() {
        assert_eq!(Tracer::with_capacity(0).capacity(), 16);
    }

    #[test]
    fn message_id_is_deterministic_and_distinguishes_inputs() {
        assert_eq!(message_id(0, 1, 2, 3), message_id(0, 1, 2, 3));
        let ids = [
            message_id(0, 1, 2, 3),
            message_id(1, 1, 2, 3),
            message_id(0, 2, 1, 3),
            message_id(0, 1, 2, 4),
        ];
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn matched_spans_reconstruct_nesting_and_self_time() {
        let t = Tracer::with_capacity(64);
        t.record(TraceRecord::SpanBegin(SpanMark {
            path: "campaign".into(),
            thread: 0,
            t_ns: 0,
        }));
        t.record(TraceRecord::SpanBegin(SpanMark {
            path: "campaign/simulate".into(),
            thread: 0,
            t_ns: 10,
        }));
        t.record(TraceRecord::SpanEnd(SpanMark {
            path: "campaign/simulate".into(),
            thread: 0,
            t_ns: 40,
        }));
        t.record(TraceRecord::SpanEnd(SpanMark {
            path: "campaign".into(),
            thread: 0,
            t_ns: 100,
        }));
        let snap = t.snapshot();
        let spans = snap.matched_spans();
        assert_eq!(spans.len(), 2);
        let inner = spans
            .iter()
            .find(|s| s.path == "campaign/simulate")
            .unwrap();
        assert_eq!((inner.begin_ns, inner.end_ns, inner.self_ns), (10, 40, 30));
        let outer = spans.iter().find(|s| s.path == "campaign").unwrap();
        // Outer span lasted 100 ns, 30 of which belong to the child.
        assert_eq!(outer.self_ns, 70);
    }

    #[test]
    fn unbalanced_marks_are_discarded() {
        let t = Tracer::with_capacity(64);
        // An end without a begin (begin lost to wrap), then a clean pair.
        t.record(TraceRecord::SpanEnd(SpanMark {
            path: "orphan".into(),
            thread: 0,
            t_ns: 5,
        }));
        t.record(TraceRecord::SpanBegin(SpanMark {
            path: "ok".into(),
            thread: 0,
            t_ns: 10,
        }));
        t.record(TraceRecord::SpanEnd(SpanMark {
            path: "ok".into(),
            thread: 0,
            t_ns: 20,
        }));
        // A begin that never ends.
        t.record(TraceRecord::SpanBegin(SpanMark {
            path: "dangling".into(),
            thread: 0,
            t_ns: 30,
        }));
        let spans = t.snapshot().matched_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].path, "ok");
        // The chrome export stays balanced too.
        let json = t.snapshot().chrome_trace(true);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert!(!json.contains("orphan"));
        assert!(!json.contains("dangling"));
    }

    #[test]
    fn chrome_trace_has_one_track_per_rank_and_flows() {
        let t = Tracer::with_capacity(256);
        let msg = message_id(0, 1, 0, 0);
        for (rank, idx, kind, t_ns) in [
            (0u32, 0u32, SimEventKind::Init, 0u64),
            (1, 0, SimEventKind::Init, 0),
            (1, 1, SimEventKind::Send { msg_id: msg }, 100),
            (
                0,
                1,
                SimEventKind::Recv {
                    msg_id: msg,
                    wildcard: true,
                },
                250,
            ),
            (0, 2, SimEventKind::Finalize, 300),
            (1, 2, SimEventKind::Finalize, 300),
        ] {
            t.record(TraceRecord::Sim(SimEvent {
                run: 0,
                seed: 7,
                rank,
                idx,
                kind,
                t_ns,
            }));
        }
        let json = t.snapshot().chrome_trace(false);
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"name\":\"sim run 0 (seed 7)\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains(&format!("\"id\":{msg}")));
        // And it is valid JSON for the workspace parser.
        serde_json::from_str_value(&json).expect("well-formed JSON");
    }

    #[test]
    fn chrome_export_is_deterministic_across_record_order() {
        let a = Tracer::with_capacity(64);
        let b = Tracer::with_capacity(64);
        let e0 = SimEvent {
            run: 0,
            seed: 1,
            rank: 0,
            idx: 0,
            kind: SimEventKind::Init,
            t_ns: 0,
        };
        let e1 = SimEvent {
            run: 0,
            seed: 1,
            rank: 1,
            idx: 0,
            kind: SimEventKind::Init,
            t_ns: 0,
        };
        a.record(TraceRecord::Sim(e0.clone()));
        a.record(TraceRecord::Sim(e1.clone()));
        b.record(TraceRecord::Sim(e1));
        b.record(TraceRecord::Sim(e0));
        assert_eq!(
            a.snapshot().chrome_trace(false),
            b.snapshot().chrome_trace(false)
        );
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let t = Tracer::with_capacity(64);
        t.span_begin("campaign");
        t.record(TraceRecord::SpanBegin(SpanMark {
            path: "campaign/simulate".into(),
            thread: current_thread_id(),
            t_ns: t.now_ns(),
        }));
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.record(TraceRecord::SpanEnd(SpanMark {
            path: "campaign/simulate".into(),
            thread: current_thread_id(),
            t_ns: t.now_ns(),
        }));
        t.span_end("campaign");
        let folded = t.snapshot().folded_stacks();
        assert!(folded.contains("campaign;simulate "), "{folded}");
        for line in folded.lines() {
            let (_, n) = line.rsplit_split_once_compat();
            assert!(n.parse::<u64>().is_ok(), "{line}");
        }
    }

    trait RSplit {
        fn rsplit_split_once_compat(&self) -> (&str, &str);
    }
    impl RSplit for &str {
        fn rsplit_split_once_compat(&self) -> (&str, &str) {
            self.rsplit_once(' ').expect("space-separated folded line")
        }
    }

    #[test]
    fn micros_prints_exact_short_decimals() {
        assert_eq!(micros(0), "0.0");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(1_000), "1.0");
        assert_eq!(micros(1_500), "1.5");
        assert_eq!(micros(123_456), "123.456");
        assert_eq!(micros(120_000), "120.0");
    }

    #[test]
    fn thread_ids_are_distinct_across_threads() {
        let here = current_thread_id();
        let there = std::thread::spawn(current_thread_id).join().unwrap();
        assert_ne!(here, there);
        assert_eq!(here, current_thread_id());
    }
}
