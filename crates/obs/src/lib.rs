//! # anacin-obs
//!
//! Pipeline observability: a thread-safe metrics registry cheap enough to
//! leave on in production runs, plus a serialisable [`MetricsReport`].
//!
//! The paper's whole methodology is *measurement* — run campaigns and trust
//! the numbers — so the pipeline itself must be measurable. Afzal et al.
//! (PAPERS.md) treat timeline instrumentation as the analysis primitive,
//! and Hunold & Carpen-Amarie show that unrigorous timing produces
//! irreproducible performance claims; this crate is the substrate both
//! argue for, built before the perf work the ROADMAP calls for.
//!
//! Three instrument families:
//!
//! * **Counters** ([`Counter`]) — monotonic `u64` totals ("events
//!   executed", "dot products"). Handles are `Arc<AtomicU64>` clones, so
//!   incrementing is one relaxed atomic add; registry lookup happens once
//!   at handle creation, not per increment.
//! * **Gauges** — last-write-wins `f64` values ("effective thread count").
//! * **Spans** ([`Span`]) — scoped wall-time timers with nesting: a span
//!   started while another span is active *on the same thread* records
//!   under the path `parent/child`. Each named span accumulates count,
//!   total, min and max, so per-run timers ("sim") and per-stage timers
//!   ("campaign/simulate") coexist in one report.
//!
//! The registry is `Clone` (shared handle) and `Send + Sync`; worker
//! threads increment counters and record spans concurrently. Everything is
//! observability-only: no instrument feeds back into the pipeline, so
//! enabling metrics can never change a measurement.
//!
//! ```
//! use anacin_obs::MetricsRegistry;
//!
//! let m = MetricsRegistry::new();
//! {
//!     let _outer = m.span("campaign");
//!     let _inner = m.span("simulate"); // records as "campaign/simulate"
//!     m.counter("sim/events").add(42);
//! }
//! let report = m.report();
//! assert_eq!(report.counter("sim/events"), Some(42));
//! assert!(report.span("campaign/simulate").is_some());
//! ```

#![warn(missing_docs)]

pub mod hist;
pub mod progress;
pub mod shutdown;
pub mod sink;
pub mod tracer;

pub use hist::{HistBucket, LatencyHistogram};
pub use progress::{MetricsDelta, ProgressReporter};
pub use shutdown::{install_signal_handlers, request_shutdown, shutdown_requested, CancelToken};
pub use sink::{ChromeJsonSink, CountingWriter, FoldedSink, SharedBuffer, TraceSink};
pub use tracer::{
    current_thread_id, message_id, DrainStats, MatchedSpan, SimEvent, SimEventKind, SpanMark,
    TraceRecord, TraceSnapshot, Tracer, DEFAULT_CAPACITY,
};

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    /// Active span paths of the current thread, innermost last. Spans are
    /// guards, so well-formed code pushes and pops in LIFO order.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Accumulated statistics of one named span. The histogram is shared
/// (`Arc`) and bucket increments are lock-free atomics, so quantile
/// tracking adds one relaxed `fetch_add` to the span record path.
#[derive(Clone, Default)]
struct SpanAccum {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    hist: Arc<LatencyHistogram>,
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    spans: Mutex<BTreeMap<String, SpanAccum>>,
    tracer: Mutex<Option<Tracer>>,
}

/// A shared, thread-safe metrics registry.
///
/// Cloning yields another handle onto the same instruments — pass clones
/// (or `&MetricsRegistry`) into worker threads freely.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it at zero on first
    /// use. Hold the returned handle in hot loops: increments on the
    /// handle are a single relaxed atomic add with no lock.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("counter map poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut map = self.inner.gauges.lock().expect("gauge map poisoned");
        map.insert(name.to_string(), value);
    }

    /// Start a scoped wall-time span. The span records on drop; while it
    /// is alive, spans started on the same thread nest under it
    /// (`parent/child` paths). Drop spans in reverse order of creation
    /// (the natural guard pattern) for paths to come out right.
    ///
    /// When a [`Tracer`] is attached ([`MetricsRegistry::attach_tracer`]),
    /// the span also emits begin/end timeline marks, so the aggregate
    /// statistics and the trace stay in lock-step.
    pub fn span(&self, name: &str) -> Span {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        let tracer = self.tracer();
        if let Some(t) = &tracer {
            t.span_begin(&path);
        }
        Span {
            registry: self.clone(),
            path,
            tracer,
            start: Instant::now(),
        }
    }

    /// Attach a [`Tracer`]: from now on, every [`Span`] started from this
    /// registry also emits begin/end marks onto the tracer's timeline.
    /// Attaching is observability-only — span statistics and everything
    /// they measure are unchanged.
    pub fn attach_tracer(&self, tracer: &Tracer) {
        *self.inner.tracer.lock().expect("tracer slot poisoned") = Some(tracer.clone());
    }

    /// The currently attached tracer, if any.
    pub fn tracer(&self) -> Option<Tracer> {
        self.inner
            .tracer
            .lock()
            .expect("tracer slot poisoned")
            .clone()
    }

    /// Record one observation of `elapsed_ns` under the span `path`
    /// (what `Span::drop` calls; public so external timers can feed in).
    pub fn record_span(&self, path: &str, elapsed_ns: u64) {
        let mut map = self.inner.spans.lock().expect("span map poisoned");
        let acc = map.entry(path.to_string()).or_default();
        if acc.count == 0 {
            acc.min_ns = elapsed_ns;
            acc.max_ns = elapsed_ns;
        } else {
            acc.min_ns = acc.min_ns.min(elapsed_ns);
            acc.max_ns = acc.max_ns.max(elapsed_ns);
        }
        acc.count += 1;
        acc.total_ns += elapsed_ns;
        acc.hist.record(elapsed_ns);
    }

    /// Snapshot every instrument into a serialisable report. Entries are
    /// sorted by name, so two snapshots of identical state are equal.
    pub fn report(&self) -> MetricsReport {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(name, v)| CounterSample {
                name: name.clone(),
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(name, v)| GaugeSample {
                name: name.clone(),
                value: *v,
            })
            .collect();
        let spans = self
            .inner
            .spans
            .lock()
            .expect("span map poisoned")
            .iter()
            .map(|(name, a)| {
                let buckets = a.hist.sparse();
                let (p50_ns, p95_ns, p99_ns) = hist::percentiles_sparse(&buckets);
                SpanSample {
                    name: name.clone(),
                    count: a.count,
                    total_ns: a.total_ns,
                    mean_ns: if a.count == 0 {
                        0.0
                    } else {
                        a.total_ns as f64 / a.count as f64
                    },
                    min_ns: a.min_ns,
                    max_ns: a.max_ns,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                    hist: buckets,
                }
            })
            .collect();
        MetricsReport {
            counters,
            gauges,
            spans,
        }
    }
}

/// A monotonic counter handle (cheap to clone; increments are lock-free).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A scoped span timer; records its wall time into the registry on drop.
pub struct Span {
    registry: MetricsRegistry,
    path: String,
    tracer: Option<Tracer>,
    start: Instant,
}

impl Span {
    /// The full (nesting-resolved) path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO pop; tolerate out-of-order drops by removing this path
            // wherever it sits instead of corrupting the whole stack.
            if let Some(pos) = stack.iter().rposition(|p| p == &self.path) {
                stack.remove(pos);
            }
        });
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry.record_span(&self.path, elapsed);
        if let Some(t) = &self.tracer {
            t.span_end(&self.path);
        }
    }
}

// -------------------------------------------------------------- reporting

/// One counter in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Instrument name, e.g. `sim/events`.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Instrument name, e.g. `kernel/threads`.
    pub name: String,
    /// Last value written.
    pub value: f64,
}

/// One span in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSample {
    /// Nesting-resolved span path, e.g. `campaign/kernel/gram`.
    pub name: String,
    /// Number of recorded intervals.
    pub count: u64,
    /// Sum of interval durations, nanoseconds.
    pub total_ns: u64,
    /// Mean interval duration, nanoseconds.
    pub mean_ns: f64,
    /// Shortest interval, nanoseconds.
    pub min_ns: u64,
    /// Longest interval, nanoseconds.
    pub max_ns: u64,
    /// Median interval from the log-bucketed histogram (bucket lower
    /// bound — ≤ ~3.2% below the true quantile, never above the max).
    pub p50_ns: u64,
    /// 95th-percentile interval (same error bound as `p50_ns`).
    pub p95_ns: u64,
    /// 99th-percentile interval (same error bound as `p50_ns`).
    pub p99_ns: u64,
    /// Sparse latency histogram (non-empty buckets, index order); the
    /// source of truth for re-deriving quantiles after [`MetricsReport::merge`].
    pub hist: Vec<HistBucket>,
}

/// A point-in-time snapshot of a [`MetricsRegistry`], ready to serialise.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// All spans, sorted by path.
    pub spans: Vec<SpanSample>,
}

impl MetricsReport {
    /// The value of counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The span recorded under exactly `path`, if any.
    pub fn span(&self, path: &str) -> Option<&SpanSample> {
        self.spans.iter().find(|s| s.name == path)
    }

    /// The first span whose path ends with `suffix` (stage lookups that
    /// do not care about the nesting prefix).
    pub fn span_ending_with(&self, suffix: &str) -> Option<&SpanSample> {
        self.spans.iter().find(|s| s.name.ends_with(suffix))
    }

    /// Merge `other` into `self`: counters and span statistics add,
    /// gauges take `other`'s value (last write wins), and names absent
    /// from `self` are inserted. Means are recomputed from the merged
    /// totals (zero-count spans mean 0). Used to aggregate per-point
    /// sweep reports into one table.
    pub fn merge(&mut self, other: &MetricsReport) {
        tracer::merge_reports(self, other);
    }

    /// A human-readable summary table (what the CLI prints to stderr).
    /// Column widths adapt to the longest instrument name, and the mean
    /// is recomputed from `total_ns / count` (guarded for zero-count
    /// spans) so deserialised reports render consistently.
    pub fn render_table(&self) -> String {
        fn ms(ns: u64) -> f64 {
            ns as f64 / 1e6
        }
        let name_w = self
            .spans
            .iter()
            .map(|s| s.name.len())
            .chain(self.counters.iter().map(|c| c.name.len()))
            .chain(self.gauges.iter().map(|g| g.name.len()))
            .chain(["counter".len()])
            .max()
            .unwrap_or(0)
            .max(4);
        let mut s = String::new();
        if !self.spans.is_empty() {
            let _ = writeln!(
                s,
                "{:<name_w$} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
                "span", "count", "total(ms)", "mean(ms)", "p50(ms)", "p95(ms)", "p99(ms)"
            );
            for sp in &self.spans {
                let mean_ns = if sp.count == 0 {
                    0.0
                } else {
                    sp.total_ns as f64 / sp.count as f64
                };
                let _ = writeln!(
                    s,
                    "{:<name_w$} {:>8} {:>12.3} {:>12.3} {:>10.3} {:>10.3} {:>10.3}",
                    sp.name,
                    sp.count,
                    ms(sp.total_ns),
                    mean_ns / 1e6,
                    ms(sp.p50_ns),
                    ms(sp.p95_ns),
                    ms(sp.p99_ns)
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(s, "{:<name_w$} {:>12}", "counter", "value");
            for c in &self.counters {
                let _ = writeln!(s, "{:<name_w$} {:>12}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(s, "{:<name_w$} {:>12}", "gauge", "value");
            for g in &self.gauges {
                let _ = writeln!(s, "{:<name_w$} {:>12.2}", g.name, g.value);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    let c = m.counter("work/items");
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(m.report().counter("work/items"), Some(4000));
    }

    #[test]
    fn counter_handle_is_shared_with_registry() {
        let m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(m.report().counter("x"), Some(7));
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        m.set_gauge("threads", 4.0);
        m.set_gauge("threads", 8.0);
        assert_eq!(m.report().gauge("threads"), Some(8.0));
    }

    #[test]
    fn spans_nest_by_thread_scope() {
        let m = MetricsRegistry::new();
        {
            let outer = m.span("campaign");
            assert_eq!(outer.path(), "campaign");
            {
                let inner = m.span("simulate");
                assert_eq!(inner.path(), "campaign/simulate");
                let leaf = m.span("sim");
                assert_eq!(leaf.path(), "campaign/simulate/sim");
            }
            let sibling = m.span("kernel");
            assert_eq!(sibling.path(), "campaign/kernel");
        }
        let r = m.report();
        for path in [
            "campaign",
            "campaign/simulate",
            "campaign/simulate/sim",
            "campaign/kernel",
        ] {
            let sp = r.span(path).unwrap_or_else(|| panic!("missing {path}"));
            assert_eq!(sp.count, 1, "{path}");
        }
    }

    #[test]
    fn spans_on_other_threads_do_not_inherit_nesting() {
        let m = MetricsRegistry::new();
        let _outer = m.span("campaign");
        std::thread::scope(|s| {
            let m = m.clone();
            s.spawn(move || {
                let sp = m.span("sim");
                assert_eq!(sp.path(), "sim");
            });
        });
        assert!(m.report().span("sim").is_some());
    }

    #[test]
    fn span_statistics_accumulate() {
        let m = MetricsRegistry::new();
        m.record_span("stage", 10);
        m.record_span("stage", 30);
        m.record_span("stage", 20);
        let r = m.report();
        let sp = r.span("stage").unwrap();
        assert_eq!(sp.count, 3);
        assert_eq!(sp.total_ns, 60);
        assert_eq!(sp.min_ns, 10);
        assert_eq!(sp.max_ns, 30);
        assert!((sp.mean_ns - 20.0).abs() < 1e-9);
        assert_eq!(r.span_ending_with("age").map(|s| s.count), Some(3));
    }

    #[test]
    fn report_round_trips_json() {
        let m = MetricsRegistry::new();
        m.counter("a/b").add(7);
        m.set_gauge("g", 1.5);
        m.record_span("s/t", 123);
        let rep = m.report();
        let json = serde_json::to_string_pretty(&rep).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn render_table_mentions_every_instrument() {
        let m = MetricsRegistry::new();
        m.counter("sim/events").add(12);
        m.set_gauge("kernel/threads", 8.0);
        m.record_span("campaign/simulate", 1_000_000);
        let t = m.report().render_table();
        assert!(t.contains("sim/events"));
        assert!(t.contains("kernel/threads"));
        assert!(t.contains("campaign/simulate"));
    }

    #[test]
    fn empty_report_renders_empty() {
        assert!(MetricsRegistry::new().report().render_table().is_empty());
    }

    #[test]
    fn render_table_pads_to_longest_name_and_guards_zero_count_mean() {
        let long = "campaign/kernel/a-very-long-span-path/that-overflows-fixed-columns";
        let rep = MetricsReport {
            counters: vec![],
            gauges: vec![],
            spans: vec![
                SpanSample {
                    name: long.to_string(),
                    count: 0,
                    total_ns: 0,
                    mean_ns: f64::NAN, // hostile deserialised input
                    min_ns: 0,
                    max_ns: 0,
                    p50_ns: 0,
                    p95_ns: 0,
                    p99_ns: 0,
                    hist: vec![],
                },
                SpanSample {
                    name: "sim".to_string(),
                    count: 2,
                    total_ns: 4_000_000,
                    mean_ns: 2_000_000.0,
                    min_ns: 1,
                    max_ns: 3,
                    p50_ns: 1,
                    p95_ns: 3,
                    p99_ns: 3,
                    hist: vec![],
                },
            ],
        };
        let t = rep.render_table();
        assert!(!t.contains("NaN"), "zero-count mean must render as 0:\n{t}");
        // Every row is padded to the same column positions: with equal-width
        // numeric cells, all span rows (and the header) have equal length.
        let lens: Vec<usize> = t.lines().map(str::len).collect();
        assert_eq!(lens.len(), 3);
        assert!(lens.iter().all(|l| *l == lens[0]), "{t}");
    }

    #[test]
    fn attached_tracer_receives_balanced_span_marks() {
        let m = MetricsRegistry::new();
        let t = Tracer::with_capacity(64);
        m.attach_tracer(&t);
        {
            let _outer = m.span("campaign");
            let _inner = m.span("simulate");
        }
        let spans = t.snapshot().matched_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.path == "campaign"));
        assert!(spans.iter().any(|s| s.path == "campaign/simulate"));
        // The registry's own statistics are unchanged by attaching.
        assert_eq!(
            m.report().span("campaign/simulate").map(|s| s.count),
            Some(1)
        );
    }

    #[test]
    fn spans_without_tracer_emit_nothing() {
        let m = MetricsRegistry::new();
        let _ = m.span("quiet");
        assert!(m.tracer().is_none());
    }

    #[test]
    fn merge_adds_counters_and_span_stats() {
        let a = MetricsRegistry::new();
        a.counter("c").add(3);
        a.record_span("s", 10);
        let b = MetricsRegistry::new();
        b.counter("c").add(4);
        b.counter("only-b").add(1);
        b.record_span("s", 30);
        b.set_gauge("g", 2.0);
        let mut merged = a.report();
        merged.merge(&b.report());
        assert_eq!(merged.counter("c"), Some(7));
        assert_eq!(merged.counter("only-b"), Some(1));
        assert_eq!(merged.gauge("g"), Some(2.0));
        let sp = merged.span("s").unwrap();
        assert_eq!(
            (sp.count, sp.total_ns, sp.min_ns, sp.max_ns),
            (2, 40, 10, 30)
        );
        assert!((sp.mean_ns - 20.0).abs() < 1e-9);
    }
}
