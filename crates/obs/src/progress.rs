//! Live progress reporting: periodic registry snapshots, deltas between
//! them, and a one-line stderr renderer.
//!
//! The primitive is [`MetricsReport::delta_since`]: two point-in-time
//! reports subtract into a [`MetricsDelta`] — what happened *this
//! interval* — which is serialisable and therefore exactly what a
//! future `anacin serve` streams to clients. The CLI's `--progress`
//! flag drives the same machinery locally: a [`ProgressReporter`]
//! thread snapshots the registry a few times a second and rewrites one
//! stderr status line (runs done, events simulated, the currently
//! hottest stage, ETA).
//!
//! Everything here is observability-only: the reporter thread reads the
//! registry and writes stderr; it cannot perturb a measurement.

use crate::{CounterSample, GaugeSample, MetricsRegistry, MetricsReport, SpanSample};
use serde::Serialize;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What changed between two [`MetricsReport`] snapshots: counter values
/// are increments, span counts/totals are increments (min/max/quantiles
/// carry the *current* cumulative values — interval quantiles would need
/// interval histograms), gauges carry their latest value.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsDelta {
    /// Counter increments over the interval (zero-increment counters
    /// are omitted).
    pub counters: Vec<CounterSample>,
    /// Current gauge values.
    pub gauges: Vec<GaugeSample>,
    /// Span activity over the interval (spans with no new intervals and
    /// no new time are omitted; `hist` is left empty to keep deltas
    /// small).
    pub spans: Vec<SpanSample>,
}

impl MetricsReport {
    /// The delta from `prev` (an earlier snapshot of the same registry)
    /// to `self`. Instruments that did not change are omitted, so an
    /// idle interval serialises to almost nothing.
    pub fn delta_since(&self, prev: &MetricsReport) -> MetricsDelta {
        let counters = self
            .counters
            .iter()
            .filter_map(|c| {
                let before = prev.counter(&c.name).unwrap_or(0);
                let diff = c.value.saturating_sub(before);
                (diff > 0).then(|| CounterSample {
                    name: c.name.clone(),
                    value: diff,
                })
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|s| {
                let (pc, pt) = prev
                    .span(&s.name)
                    .map(|p| (p.count, p.total_ns))
                    .unwrap_or((0, 0));
                let count = s.count.saturating_sub(pc);
                let total_ns = s.total_ns.saturating_sub(pt);
                (count > 0 || total_ns > 0).then(|| SpanSample {
                    name: s.name.clone(),
                    count,
                    total_ns,
                    mean_ns: if count == 0 {
                        0.0
                    } else {
                        total_ns as f64 / count as f64
                    },
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                    p50_ns: s.p50_ns,
                    p95_ns: s.p95_ns,
                    p99_ns: s.p99_ns,
                    hist: Vec::new(),
                })
            })
            .collect();
        MetricsDelta {
            counters,
            gauges: self.gauges.clone(),
            spans,
        }
    }
}

/// Format `n` with a compact magnitude suffix (`1.2M`, `340k`).
fn compact(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Render one status line from a cumulative report plus the latest
/// interval delta. Pure, so the format is unit-testable: runs done out
/// of `total_runs` (from the `sim/runs` counter), events simulated with
/// the current rate, the span that consumed the most wall time this
/// interval, and a linear ETA once at least one run has finished.
pub fn render_progress_line(
    report: &MetricsReport,
    delta: &MetricsDelta,
    total_runs: u64,
    elapsed: Duration,
) -> String {
    let done = report.counter("sim/runs").unwrap_or(0).min(total_runs);
    let events = report.counter("sim/events").unwrap_or(0);
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 {
        format!(" ({}/s)", compact((events as f64 / secs) as u64))
    } else {
        String::new()
    };
    let stage = delta
        .spans
        .iter()
        .max_by_key(|s| s.total_ns)
        .map(|s| format!(" · {}", s.name))
        .unwrap_or_default();
    let eta = if done > 0 && done < total_runs {
        let remaining = secs * (total_runs - done) as f64 / done as f64;
        format!(" · ETA {remaining:.0}s")
    } else {
        String::new()
    };
    format!(
        "[{done}/{total_runs} runs] {} events{rate}{stage}{eta}",
        compact(events)
    )
}

/// A background thread that renders [`render_progress_line`] onto one
/// `\r`-rewritten stderr line every `interval` until finished or
/// dropped.
pub struct ProgressReporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressReporter {
    /// Start reporting on `registry`. `total_runs` scales the run
    /// counter and the ETA.
    pub fn start(registry: &MetricsRegistry, total_runs: u64, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let reg = registry.clone();
        let handle = std::thread::Builder::new()
            .name("anacin-progress".to_string())
            .spawn(move || {
                let started = Instant::now();
                let mut prev = reg.report();
                let mut last_len = 0usize;
                let tick = Duration::from_millis(25).min(interval);
                let mut since_render = interval; // render immediately
                while !flag.load(Ordering::Relaxed) {
                    if since_render >= interval {
                        since_render = Duration::ZERO;
                        let cur = reg.report();
                        let delta = cur.delta_since(&prev);
                        let line =
                            render_progress_line(&cur, &delta, total_runs, started.elapsed());
                        // Pad with spaces so a shorter line fully
                        // overwrites the previous one (no ANSI needed).
                        let pad = last_len.saturating_sub(line.len());
                        last_len = line.len();
                        eprint!("\r{line}{}", " ".repeat(pad));
                        let _ = std::io::stderr().flush();
                        prev = cur;
                    }
                    std::thread::sleep(tick);
                    since_render += tick;
                }
                if last_len > 0 {
                    // Clear the status line so final output starts clean.
                    eprint!("\r{}\r", " ".repeat(last_len));
                    let _ = std::io::stderr().flush();
                }
            })
            .expect("spawn progress reporter");
        ProgressReporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the reporter and clear the status line.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_keeps_only_what_changed() {
        let m = MetricsRegistry::new();
        m.counter("sim/events").add(10);
        m.counter("idle").add(5);
        m.record_span("stage", 100);
        let before = m.report();
        m.counter("sim/events").add(32);
        m.record_span("stage", 300);
        m.record_span("fresh", 50);
        let after = m.report();
        let d = after.delta_since(&before);
        assert_eq!(
            d.counters
                .iter()
                .map(|c| (c.name.as_str(), c.value))
                .collect::<Vec<_>>(),
            vec![("sim/events", 32)]
        );
        let stage = d.spans.iter().find(|s| s.name == "stage").unwrap();
        assert_eq!((stage.count, stage.total_ns), (1, 300));
        let fresh = d.spans.iter().find(|s| s.name == "fresh").unwrap();
        assert_eq!((fresh.count, fresh.total_ns), (1, 50));
        assert_eq!(d.spans.len(), 2);
    }

    #[test]
    fn delta_of_identical_reports_is_empty() {
        let m = MetricsRegistry::new();
        m.counter("c").add(3);
        m.record_span("s", 10);
        let r = m.report();
        let d = r.delta_since(&r);
        assert!(d.counters.is_empty());
        assert!(d.spans.is_empty());
    }

    #[test]
    fn delta_serialises() {
        let m = MetricsRegistry::new();
        m.counter("c").add(3);
        let d = m.report().delta_since(&MetricsReport::default());
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"counters\""), "{json}");
    }

    #[test]
    fn progress_line_reports_runs_events_stage_and_eta() {
        let m = MetricsRegistry::new();
        m.counter("sim/runs").add(4);
        m.counter("sim/events").add(1_200_000);
        m.record_span("campaign/simulate", 900);
        m.record_span("campaign/kernel", 100);
        let report = m.report();
        let delta = report.delta_since(&MetricsReport::default());
        let line = render_progress_line(&report, &delta, 16, Duration::from_secs(8));
        assert!(line.starts_with("[4/16 runs]"), "{line}");
        assert!(line.contains("1.2M events"), "{line}");
        assert!(line.contains("campaign/simulate"), "{line}");
        assert!(line.contains("ETA 24s"), "{line}");
    }

    #[test]
    fn progress_line_omits_eta_when_done_or_idle() {
        let m = MetricsRegistry::new();
        let report = m.report();
        let delta = MetricsDelta::default();
        let idle = render_progress_line(&report, &delta, 8, Duration::from_secs(1));
        assert!(idle.starts_with("[0/8 runs]"), "{idle}");
        assert!(!idle.contains("ETA"), "{idle}");
        m.counter("sim/runs").add(8);
        let done = render_progress_line(&m.report(), &delta, 8, Duration::from_secs(1));
        assert!(done.starts_with("[8/8 runs]"), "{done}");
        assert!(!done.contains("ETA"), "{done}");
    }

    #[test]
    fn reporter_starts_and_stops_cleanly() {
        let m = MetricsRegistry::new();
        let p = ProgressReporter::start(&m, 4, Duration::from_millis(10));
        m.counter("sim/runs").add(2);
        std::thread::sleep(Duration::from_millis(30));
        p.finish();
    }

    /// Two jobs hammering the same registry while a third thread
    /// snapshots it: every delta must stay non-negative (counters are
    /// monotone, so `delta_since` with a saturating subtraction can
    /// never go below zero even when a snapshot races a writer), and
    /// the deltas must add up to exactly what was written — no
    /// increment lost, none double-counted.
    #[test]
    fn delta_since_is_safe_under_two_concurrent_writers() {
        const PER_WRITER: u64 = 20_000;
        let m = MetricsRegistry::new();
        let mut prev = m.report();
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let c = m.counter("sim/events");
                std::thread::spawn(move || {
                    for _ in 0..PER_WRITER {
                        c.add(1);
                    }
                })
            })
            .collect();
        let mut total: u64 = 0;
        loop {
            let now = m.report();
            let delta = now.delta_since(&prev);
            for c in &delta.counters {
                assert!(
                    c.value <= 2 * PER_WRITER,
                    "delta {}={} exceeds everything ever written: underflow",
                    c.name,
                    c.value
                );
                total += c.value;
            }
            let done = writers.iter().all(|w| w.is_finished());
            prev = now;
            if done {
                break;
            }
            std::thread::yield_now();
        }
        // One final snapshot after both writers joined.
        for w in writers {
            w.join().unwrap();
        }
        let delta = m.report().delta_since(&prev);
        for c in &delta.counters {
            total += c.value;
        }
        assert_eq!(
            total,
            2 * PER_WRITER,
            "interval deltas must sum to the total"
        );
    }
}
