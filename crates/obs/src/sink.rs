//! Streaming trace sinks: incremental, bounded-memory export of the
//! tracer ring.
//!
//! A [`TraceSink`] consumes [`TraceRecord`]s as the chunked drain
//! ([`crate::Tracer::pump`]) hands them over, so a campaign's trace goes
//! to disk *during* the run instead of accumulating for one end-of-run
//! snapshot — the difference between tracing working and not working at
//! 1024 ranks / tens of millions of events.
//!
//! Two file formats, matching the snapshot exporters byte-for-byte:
//!
//! * [`ChromeJsonSink`] — Chrome Trace Event JSON. Simulated events are
//!   written the moment they drain (memory stays O(runs × ranks) for the
//!   track-metadata dedup sets); wall-clock span marks are buffered
//!   (O(runs × stages), tiny) because begin/end balancing needs the
//!   whole sequence. Every event line is produced by the same formatting
//!   helpers as [`crate::TraceSnapshot::chrome_trace`], so the streamed
//!   file equals the snapshot export after a canonical line sort.
//! * [`FoldedSink`] — folded flamegraph stacks, byte-identical to
//!   [`crate::TraceSnapshot::folded_stacks`] (derived wholly from the
//!   buffered span marks).
//!
//! [`CountingWriter`] backs overhead benchmarks: full formatting work,
//! bytes counted and discarded.

use crate::tracer::{
    chrome_rank_meta, chrome_run_meta, chrome_sim_flow, chrome_sim_slice, chrome_wall_events,
    folded_from_spans, DrainStats, SpanMark, TraceRecord, CHROME_FOOTER, CHROME_HEADER,
};
use std::collections::HashSet;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A consumer of drained trace records (see [`crate::Tracer::attach_sink`]).
///
/// `accept` is called once per record in claim order; `finish` exactly
/// once after the final drain, with the drain accounting. Implementations
/// must tolerate `accept` never being called (empty trace).
pub trait TraceSink: Send {
    /// Consume one record.
    fn accept(&mut self, record: &TraceRecord) -> io::Result<()>;
    /// Finalise the output (write trailers, flush).
    fn finish(&mut self, stats: &DrainStats) -> io::Result<()>;
}

/// Incremental Chrome Trace Event JSON writer.
pub struct ChromeJsonSink<W: Write + Send> {
    w: W,
    include_wall: bool,
    wrote_event: bool,
    seen_runs: HashSet<u32>,
    seen_tracks: HashSet<(u32, u32)>,
    spans: Vec<(bool, SpanMark)>,
}

impl ChromeJsonSink<BufWriter<std::fs::File>> {
    /// Create `path` and stream a Chrome JSON trace into it (wall-clock
    /// span section included, matching the CLI snapshot export).
    pub fn create(path: &str) -> io::Result<Self> {
        Self::new(BufWriter::new(std::fs::File::create(path)?), true)
    }
}

impl<W: Write + Send> ChromeJsonSink<W> {
    /// Wrap `w`; writes the document header immediately. `include_wall`
    /// controls whether the wall-clock span section is emitted at
    /// finish.
    pub fn new(mut w: W, include_wall: bool) -> io::Result<Self> {
        w.write_all(CHROME_HEADER.as_bytes())?;
        Ok(ChromeJsonSink {
            w,
            include_wall,
            wrote_event: false,
            seen_runs: HashSet::new(),
            seen_tracks: HashSet::new(),
            spans: Vec::new(),
        })
    }

    fn write_event(&mut self, event: &str) -> io::Result<()> {
        if self.wrote_event {
            self.w.write_all(b",\n")?;
        }
        self.wrote_event = true;
        self.w.write_all(event.as_bytes())
    }
}

impl<W: Write + Send> TraceSink for ChromeJsonSink<W> {
    fn accept(&mut self, record: &TraceRecord) -> io::Result<()> {
        match record {
            TraceRecord::Sim(e) => {
                if self.seen_runs.insert(e.run) {
                    let meta = chrome_run_meta(e.run, e.seed);
                    self.write_event(&meta)?;
                }
                if self.seen_tracks.insert((e.run, e.rank)) {
                    let meta = chrome_rank_meta(e.run, e.rank);
                    self.write_event(&meta)?;
                }
                let slice = chrome_sim_slice(e);
                self.write_event(&slice)?;
                if let Some(flow) = chrome_sim_flow(e) {
                    self.write_event(&flow)?;
                }
            }
            TraceRecord::SpanBegin(m) => {
                if self.include_wall {
                    self.spans.push((false, m.clone()));
                }
            }
            TraceRecord::SpanEnd(m) => {
                if self.include_wall {
                    self.spans.push((true, m.clone()));
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self, _stats: &DrainStats) -> io::Result<()> {
        if self.include_wall {
            for event in chrome_wall_events(&self.spans) {
                self.write_event(&event)?;
            }
        }
        self.w.write_all(CHROME_FOOTER.as_bytes())?;
        self.w.flush()
    }
}

/// Incremental folded-stacks writer. Span marks are buffered (small —
/// two per pipeline span instance) because self-time needs matched
/// pairs; simulated events are discarded on arrival, so memory stays
/// bounded at any event volume.
pub struct FoldedSink<W: Write + Send> {
    w: W,
    spans: Vec<(bool, SpanMark)>,
}

impl FoldedSink<BufWriter<std::fs::File>> {
    /// Create `path` and stream folded stacks into it.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write + Send> FoldedSink<W> {
    /// Wrap `w`; the file is written at finish.
    pub fn new(w: W) -> Self {
        FoldedSink {
            w,
            spans: Vec::new(),
        }
    }
}

impl<W: Write + Send> TraceSink for FoldedSink<W> {
    fn accept(&mut self, record: &TraceRecord) -> io::Result<()> {
        match record {
            TraceRecord::SpanBegin(m) => self.spans.push((false, m.clone())),
            TraceRecord::SpanEnd(m) => self.spans.push((true, m.clone())),
            TraceRecord::Sim(_) => {}
        }
        Ok(())
    }

    fn finish(&mut self, _stats: &DrainStats) -> io::Result<()> {
        self.w
            .write_all(folded_from_spans(&self.spans).as_bytes())?;
        self.w.flush()
    }
}

/// A `Write` that counts bytes and discards them; the shared counter
/// outlives the sink. Backs trace-overhead benchmarks: the full
/// formatting cost is paid, nothing touches the filesystem.
#[derive(Clone)]
pub struct CountingWriter {
    bytes: Arc<AtomicU64>,
}

impl CountingWriter {
    /// A writer feeding the shared byte counter `bytes`.
    pub fn new(bytes: Arc<AtomicU64>) -> Self {
        CountingWriter { bytes }
    }
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A `Write` into a shared in-memory buffer, retrievable after the sink
/// is consumed (tests compare streamed output against snapshots).
#[derive(Clone, Default)]
pub struct SharedBuffer {
    buf: Arc<std::sync::Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far, as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock().expect("shared buffer poisoned")).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf
            .lock()
            .expect("shared buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{SimEvent, SimEventKind, Tracer};

    fn sim(run: u32, rank: u32, idx: u32) -> TraceRecord {
        TraceRecord::Sim(SimEvent {
            run,
            seed: 7,
            rank,
            idx,
            kind: SimEventKind::Init,
            t_ns: idx as u64 * 10,
        })
    }

    /// Strip trailing commas and sort: the canonical form under which a
    /// streamed export equals the snapshot export.
    fn canonical_lines(s: &str) -> Vec<String> {
        let mut v: Vec<String> = s
            .lines()
            .map(|l| l.trim_end_matches(',').to_string())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn streamed_chrome_equals_snapshot_after_sort() {
        let t = Tracer::with_capacity(256);
        let buf = SharedBuffer::new();
        t.attach_sink(Box::new(ChromeJsonSink::new(buf.clone(), true).unwrap()));
        t.span_begin("campaign");
        for run in 0..2 {
            for rank in 0..3 {
                for idx in 0..4 {
                    t.record(sim(run, rank, idx));
                }
            }
            t.pump();
        }
        t.span_end("campaign");
        let stats = t.finish_sink().unwrap();
        assert_eq!(stats.lost, 0);
        assert_eq!(stats.pending, 0);
        let snap = t.snapshot().chrome_trace(true);
        assert_eq!(canonical_lines(&buf.contents()), canonical_lines(&snap));
    }

    #[test]
    fn streamed_folded_is_byte_identical_to_snapshot() {
        let t = Tracer::with_capacity(64);
        let buf = SharedBuffer::new();
        t.attach_sink(Box::new(FoldedSink::new(buf.clone())));
        t.span_begin("campaign");
        t.record(TraceRecord::SpanBegin(SpanMark {
            path: "campaign/simulate".into(),
            thread: crate::current_thread_id(),
            t_ns: t.now_ns(),
        }));
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.record(TraceRecord::SpanEnd(SpanMark {
            path: "campaign/simulate".into(),
            thread: crate::current_thread_id(),
            t_ns: t.now_ns(),
        }));
        t.span_end("campaign");
        t.finish_sink().unwrap();
        assert_eq!(buf.contents(), t.snapshot().folded_stacks());
        assert!(buf.contents().contains("campaign;simulate "));
    }

    #[test]
    fn empty_stream_is_a_valid_document() {
        let t = Tracer::with_capacity(16);
        let buf = SharedBuffer::new();
        t.attach_sink(Box::new(ChromeJsonSink::new(buf.clone(), true).unwrap()));
        t.finish_sink().unwrap();
        assert_eq!(buf.contents(), t.snapshot().chrome_trace(true));
    }

    #[test]
    fn counting_writer_counts_formatted_bytes() {
        let bytes = Arc::new(AtomicU64::new(0));
        let t = Tracer::with_capacity(64);
        t.attach_sink(Box::new(
            ChromeJsonSink::new(CountingWriter::new(Arc::clone(&bytes)), false).unwrap(),
        ));
        for idx in 0..8 {
            t.record(sim(0, 0, idx));
        }
        t.finish_sink().unwrap();
        let expected = t.snapshot().chrome_trace(false).len() as u64;
        assert_eq!(bytes.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn failing_sink_surfaces_from_finish() {
        struct Failing;
        impl TraceSink for Failing {
            fn accept(&mut self, _r: &TraceRecord) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
            fn finish(&mut self, _s: &DrainStats) -> io::Result<()> {
                Ok(())
            }
        }
        let t = Tracer::with_capacity(16);
        t.attach_sink(Box::new(Failing));
        t.record(sim(0, 0, 0));
        let err = t.finish_sink().unwrap_err();
        assert!(err.contains("disk full"), "{err}");
    }

    #[test]
    fn finish_without_sink_is_an_error() {
        let t = Tracer::with_capacity(16);
        assert!(t.finish_sink().is_err());
    }
}
