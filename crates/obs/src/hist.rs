//! Log-bucketed latency histograms: fixed-footprint, lock-free, and
//! mergeable.
//!
//! Every span timer in the registry feeds one of these so reports can
//! quote p50/p95/p99 — Hunold & Carpen-Amarie's point (PAPERS.md) that
//! run-to-run *distributions*, not means, are what make performance
//! claims defensible. The layout is the HDR-histogram idea at fixed
//! size: values below [`SUB_BUCKETS`] get an exact bucket each; above
//! that, each power of two is split into [`SUB_BUCKETS`] linear
//! sub-buckets, so a bucket's width is at most `1/32` of its value —
//! ≤ ~3.2% relative quantile error, well inside the ~4% budget, from a
//! flat array of [`BUCKET_COUNT`] (= 1920) `AtomicU64`s (~15 KiB).
//!
//! Recording is one relaxed `fetch_add` on the bucket — no locks, no
//! allocation — so histograms piggyback on the span hot path without
//! changing what it measures.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two (and the exact-bucket range floor).
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = 5;

/// Total buckets: 32 exact + 32 per octave for exponents 5..=63.
pub const BUCKET_COUNT: usize = (SUB_BUCKETS as usize) * 60;

/// The bucket index of `value` (nanoseconds). Total order: larger values
/// never map to smaller indices.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        value as usize
    } else {
        let e = 63 - value.leading_zeros();
        let mantissa = (value >> (e - SUB_BITS)) as usize; // in [32, 64)
        (SUB_BUCKETS as usize) * (e - SUB_BITS) as usize + mantissa
    }
}

/// The smallest value that maps to bucket `index` — the representative
/// used when reading quantiles back out. Using the lower bound keeps
/// every reported quantile ≤ the true maximum, so `p50 ≤ p95 ≤ p99 ≤
/// max` holds structurally.
pub fn bucket_lower_bound(index: usize) -> u64 {
    let sub = SUB_BUCKETS as usize;
    if index < sub {
        index as u64
    } else {
        let octave = index / sub; // ≥ 1
        let mantissa = (index % sub + sub) as u64;
        mantissa << (octave - 1)
    }
}

/// One non-empty bucket of a serialised histogram (`i` = bucket index,
/// `n` = observations). Reports store histograms sparsely — typical span
/// distributions occupy a few dozen buckets out of 1920.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistBucket {
    /// Bucket index (see [`bucket_index`]).
    pub i: u32,
    /// Observations in the bucket.
    pub n: u64,
}

/// A lock-free log-bucketed histogram of `u64` values (nanoseconds, by
/// convention). Cloning the owning `Arc` shares the buckets.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram ([`BUCKET_COUNT`] zeroed buckets).
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one observation: a single relaxed atomic add.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The non-empty buckets, in index order — the serialised form.
    pub fn sparse(&self) -> Vec<HistBucket> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some(HistBucket { i: i as u32, n })
            })
            .collect()
    }
}

/// The `q`-quantile (`0 < q ≤ 1`) of a sparse histogram, as the lower
/// bound of the bucket holding the target rank. Returns 0 for an empty
/// histogram.
pub fn quantile_sparse(buckets: &[HistBucket], q: f64) -> u64 {
    let total: u64 = buckets.iter().map(|b| b.n).sum();
    if total == 0 {
        return 0;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for b in buckets {
        cumulative += b.n;
        if cumulative >= target {
            return bucket_lower_bound(b.i as usize);
        }
    }
    bucket_lower_bound(buckets.last().map(|b| b.i as usize).unwrap_or(0))
}

/// The (p50, p95, p99) triple of a sparse histogram.
pub fn percentiles_sparse(buckets: &[HistBucket]) -> (u64, u64, u64) {
    (
        quantile_sparse(buckets, 0.50),
        quantile_sparse(buckets, 0.95),
        quantile_sparse(buckets, 0.99),
    )
}

/// Merge `other` into `into`, keeping index order and summing counts —
/// the histogram half of [`crate::MetricsReport::merge`].
pub fn merge_sparse(into: &mut Vec<HistBucket>, other: &[HistBucket]) {
    for b in other {
        match into.binary_search_by_key(&b.i, |x| x.i) {
            Ok(pos) => into[pos].n += b.n,
            Err(pos) => into.insert(pos, *b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut values = Vec::new();
        for shift in 0..64u32 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(off << shift.saturating_sub(3)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= last, "v={v} idx={idx} last={last}");
            assert!(idx < BUCKET_COUNT);
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn lower_bound_inverts_index() {
        for idx in 0..BUCKET_COUNT {
            let lo = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lo), idx, "idx={idx} lo={lo}");
            if lo > 0 {
                assert!(bucket_index(lo - 1) == idx - 1, "idx={idx} lo={lo}");
            }
        }
    }

    #[test]
    fn relative_error_stays_under_four_percent() {
        // Every value ≥ 32 sits in a bucket whose width ≤ value / 32.
        for v in [33u64, 100, 999, 12_345, 1 << 20, (1 << 40) + 7] {
            let lo = bucket_lower_bound(bucket_index(v));
            assert!(lo <= v);
            let err = (v - lo) as f64 / v as f64;
            assert!(err < 0.04, "v={v} lo={lo} err={err}");
        }
    }

    #[test]
    fn quantiles_order_and_stay_below_max() {
        let h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40, 50, 1_000, 5_000, 100_000] {
            h.record(v);
        }
        let s = h.sparse();
        assert_eq!(h.count(), 8);
        assert_eq!(s.iter().map(|b| b.n).sum::<u64>(), 8);
        let (p50, p95, p99) = percentiles_sparse(&s);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= 100_000);
        assert_eq!(
            quantile_sparse(&s, 1.0),
            bucket_lower_bound(bucket_index(100_000))
        );
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.sparse().is_empty());
        assert_eq!(percentiles_sparse(&[]), (0, 0, 0));
    }

    #[test]
    fn merge_sums_counts_in_index_order() {
        let mut a = vec![HistBucket { i: 1, n: 2 }, HistBucket { i: 5, n: 1 }];
        let b = vec![HistBucket { i: 0, n: 3 }, HistBucket { i: 5, n: 4 }];
        merge_sparse(&mut a, &b);
        assert_eq!(
            a,
            vec![
                HistBucket { i: 0, n: 3 },
                HistBucket { i: 1, n: 2 },
                HistBucket { i: 5, n: 5 },
            ]
        );
    }

    #[test]
    fn concurrent_recording_conserves_count() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4_000);
    }
}
