//! Cooperative shutdown and cancellation.
//!
//! One process-wide shutdown flag, set from a signal handler, plus
//! [`CancelToken`]s that long-running pipelines poll between units of
//! work. Two flavours share the type:
//!
//! - [`CancelToken::for_shutdown`] observes the global flag — the batch
//!   CLI hands these to campaigns so Ctrl-C finishes the current run,
//!   flushes `--metrics`/`--trace` sinks, and exits nonzero.
//! - [`CancelToken::new`] is purely local — the `anacin serve` daemon
//!   gives every job its own so a drain (SIGTERM) can stop *admitting*
//!   work without killing jobs already in flight, and so one client's
//!   `Cancel` frame never touches another client's job.
//!
//! The signal handler itself only performs an atomic store (the one
//! thing that is async-signal-safe); a second signal while the first is
//! still draining hard-exits with status 130, so a wedged process can
//! always be killed from the keyboard.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Process-wide "a shutdown signal arrived" flag.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once SIGINT/SIGTERM has been received (or [`request_shutdown`]
/// was called programmatically).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Set the global shutdown flag without a signal — used by the daemon's
/// tests and by anything that wants to trigger a drain in-process.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clear the global flag. Only tests should need this: the flag is
/// process-wide, and test binaries run many tests in one process.
pub fn reset_shutdown_for_tests() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// A cooperative cancellation handle. Cloning shares the underlying
/// flag; `is_cancelled` is a single atomic load (plus one more for
/// shutdown-following tokens), cheap enough to poll per run.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    local: Arc<AtomicBool>,
    follow_shutdown: bool,
}

impl CancelToken {
    /// A token that only fires when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally fires once the process-wide shutdown
    /// flag is set (SIGINT/SIGTERM).
    pub fn for_shutdown() -> Self {
        CancelToken {
            local: Arc::new(AtomicBool::new(false)),
            follow_shutdown: true,
        }
    }

    /// Fire this token (and every clone of it).
    pub fn cancel(&self) {
        self.local.store(true, Ordering::SeqCst);
    }

    /// Has this token (or, for shutdown-following tokens, the process)
    /// been asked to stop?
    pub fn is_cancelled(&self) -> bool {
        self.local.load(Ordering::SeqCst) || (self.follow_shutdown && shutdown_requested())
    }
}

#[cfg(unix)]
mod sys {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    // std already links libc; declaring the two symbols we need avoids
    // a dependency on a libc crate the offline container doesn't have.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn _exit(status: i32) -> !;
    }

    extern "C" fn on_signal(_signum: i32) {
        // swap + store are async-signal-safe; everything else (locks,
        // allocation, printing) is not, so nothing else happens here.
        if SHUTDOWN.swap(true, Ordering::SeqCst) {
            // Second signal while the first drain is still running:
            // the conventional 128+SIGINT exit status.
            unsafe { _exit(130) }
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Install SIGINT/SIGTERM handlers that set the global shutdown flag
/// (first signal) or hard-exit 130 (second signal), and return a token
/// observing that flag. On non-unix targets this installs nothing and
/// the returned token only fires on explicit [`request_shutdown`].
pub fn install_signal_handlers() -> CancelToken {
    #[cfg(unix)]
    sys::install();
    CancelToken::for_shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_token_is_isolated_from_shutdown() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled(), "clones share the flag");
        assert!(
            !CancelToken::new().is_cancelled(),
            "fresh tokens start clear"
        );
    }

    #[test]
    fn shutdown_following_token_sees_global_flag() {
        reset_shutdown_for_tests();
        let t = CancelToken::for_shutdown();
        let local_only = CancelToken::new();
        assert!(!t.is_cancelled());
        request_shutdown();
        assert!(t.is_cancelled());
        assert!(
            !local_only.is_cancelled(),
            "local tokens ignore the global flag: a daemon drain must not kill in-flight jobs"
        );
        reset_shutdown_for_tests();
        assert!(!t.is_cancelled());
    }
}
