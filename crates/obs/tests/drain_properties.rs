//! Property tests for the tracer ring's chunked-drain consumer.
//!
//! Arbitrary interleavings of record batches and drain calls must keep
//! the conservation invariant `recorded == drained + lost + pending`,
//! and the concatenation of drained chunks must reproduce the recorded
//! sequence: exactly when the ring never overflows, and as an
//! order-preserving subsequence when it does.

use anacin_obs::tracer::{SimEvent, SimEventKind, TraceRecord, Tracer};
use proptest::prelude::*;

/// A record whose `t_ns` encodes its global sequence number, so drained
/// output can be checked for order and identity.
fn seq_record(seq: u64) -> TraceRecord {
    TraceRecord::Sim(SimEvent {
        run: 0,
        seed: 1,
        rank: (seq % 7) as u32,
        idx: seq as u32,
        kind: SimEventKind::Init,
        t_ns: seq,
    })
}

fn seq_of(r: &TraceRecord) -> u64 {
    match r {
        TraceRecord::Sim(e) => e.t_ns,
        _ => panic!("property test only records Sim events"),
    }
}

/// One step of the single-threaded interleaving: record a burst, then
/// drain up to `drain_max` records (0 = skip the drain).
fn op_strategy() -> impl Strategy<Value = (usize, usize)> {
    (0usize..40, 0usize..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With capacity far above the total volume nothing is ever lost:
    /// the drained chunks concatenate to exactly the recorded sequence.
    #[test]
    fn lossless_ring_drains_every_record_in_order(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        let tracer = Tracer::with_capacity(4096);
        let mut next_seq = 0u64;
        let mut drained: Vec<u64> = Vec::new();
        for (burst, drain_max) in ops {
            for _ in 0..burst {
                tracer.record(seq_record(next_seq));
                next_seq += 1;
            }
            if drain_max > 0 {
                drained.extend(tracer.drain(drain_max).iter().map(seq_of));
            }
        }
        loop {
            let chunk = tracer.drain_remaining(64);
            if chunk.is_empty() {
                break;
            }
            drained.extend(chunk.iter().map(seq_of));
        }

        prop_assert_eq!(tracer.dropped(), 0);
        let stats = tracer.drain_stats();
        prop_assert_eq!(stats.lost, 0);
        prop_assert_eq!(stats.pending, 0);
        prop_assert_eq!(stats.drained, next_seq);
        prop_assert_eq!(drained, (0..next_seq).collect::<Vec<_>>());
    }

    /// A tiny ring overflows constantly; drains must still conserve
    /// every claim (`recorded == drained + lost + pending`) and emit an
    /// order-preserving subsequence of what was recorded.
    #[test]
    fn overflowing_ring_conserves_claims_and_order(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        let tracer = Tracer::with_capacity(16);
        let mut next_seq = 0u64;
        let mut drained: Vec<u64> = Vec::new();
        for (burst, drain_max) in ops {
            for _ in 0..burst {
                tracer.record(seq_record(next_seq));
                next_seq += 1;
            }
            if drain_max > 0 {
                drained.extend(tracer.drain(drain_max).iter().map(seq_of));
            }
            let stats = tracer.drain_stats();
            prop_assert_eq!(
                stats.drained + stats.lost + stats.pending,
                tracer.recorded(),
                "mid-run conservation"
            );
        }
        loop {
            let chunk = tracer.drain_remaining(64);
            if chunk.is_empty() {
                break;
            }
            drained.extend(chunk.iter().map(seq_of));
        }

        let stats = tracer.drain_stats();
        prop_assert_eq!(stats.pending, 0);
        prop_assert_eq!(stats.drained + stats.lost, next_seq);
        prop_assert_eq!(stats.drained, drained.len() as u64);
        // Strictly increasing sequence numbers ⇒ an order-preserving
        // subsequence of the recorded stream with no duplicates.
        prop_assert!(drained.windows(2).all(|w| w[0] < w[1]), "{:?}", drained);
        prop_assert!(drained.iter().all(|&s| s < next_seq));
    }
}

/// Concurrent writers against one drainer: conservation must hold even
/// while records are in flight, and after the writers finish a final
/// `drain_remaining` accounts for every claim.
#[test]
fn concurrent_record_and_drain_conserves_claims() {
    let tracer = std::sync::Arc::new(Tracer::with_capacity(64));
    let total_per_writer = 2_000u64;
    std::thread::scope(|s| {
        for w in 0..3u64 {
            let t = std::sync::Arc::clone(&tracer);
            s.spawn(move || {
                for i in 0..total_per_writer {
                    t.record(seq_record(w * total_per_writer + i));
                }
            });
        }
        let t = std::sync::Arc::clone(&tracer);
        s.spawn(move || {
            for _ in 0..200 {
                t.drain(32);
                std::thread::yield_now();
            }
        });
    });
    let mut drained = tracer.drain_stats().drained;
    loop {
        let chunk = tracer.drain_remaining(256);
        if chunk.is_empty() {
            break;
        }
        drained += chunk.len() as u64;
    }
    let stats = tracer.drain_stats();
    assert_eq!(stats.pending, 0);
    assert_eq!(stats.drained, drained);
    assert_eq!(stats.drained + stats.lost, tracer.recorded());
    assert_eq!(tracer.recorded(), 3 * total_per_writer);
}
