//! Property-based tests of the frame protocol: any frame round-trips
//! through encode → decode bit-for-bit, and no mangled wire input —
//! truncated, oversized, or garbage — ever panics the decoder. The
//! same discipline as the store's wire proptests: a hostile or corrupt
//! peer produces errors, never undefined behaviour.

use anacin_core::prelude::CampaignConfig;
use anacin_miniapps::Pattern;
use anacin_serve::frame::{decode_frame, encode_frame, read_frame, FrameError, MAX_FRAME_LEN};
use anacin_serve::proto::{Frame, JobSpec};
use proptest::prelude::*;

fn short_string() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/;_ \"\\\n{}";
    prop::collection::vec(0usize..ALPHABET.len(), 0..32)
        .prop_map(|ix| ix.iter().map(|&i| ALPHABET[i] as char).collect())
}

fn config() -> impl Strategy<Value = CampaignConfig> {
    (
        (0usize..5, 2u32..64, 0u32..=100),
        (1u32..40, 1u32..4, 0u64..u64::MAX),
    )
        .prop_map(|((pat, procs, nd), (runs, iterations, seed))| {
            let pattern = [
                Pattern::MessageRace,
                Pattern::Amg2013,
                Pattern::UnstructuredMesh,
                Pattern::Collectives,
                Pattern::Stencil2d,
            ][pat];
            CampaignConfig::new(pattern, procs)
                .nd_percent(nd as f64)
                .runs(runs)
                .iterations(iterations)
                .base_seed(seed)
        })
}

fn job() -> impl Strategy<Value = JobSpec> {
    prop_oneof![
        config().prop_map(|config| JobSpec::Campaign { config }),
        (config(), 0usize..3).prop_map(|(config, k)| JobSpec::Sweep {
            kind: ["nd", "procs", "iterations"][k].to_string(),
            config,
        }),
        (config(), 1usize..10_000, 0u8..2).prop_map(|(config, budget, brute)| {
            JobSpec::Explore {
                config,
                budget,
                brute_force: brute == 1,
            }
        }),
    ]
}

/// `Option<u64>` via a presence coin plus a value range (the stand-in
/// has no `prop::option`).
fn maybe_ms() -> impl Strategy<Value = Option<u64>> {
    (0u8..2, 0u64..1_000_000).prop_map(|(some, v)| (some == 1).then_some(v))
}

fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0u16..=u16::MAX, short_string()).prop_map(|(schema, peer)| Frame::Hello { schema, peer }),
        (0u64..u64::MAX, job()).prop_map(|(id, job)| Frame::Submit { id, job }),
        (
            (0u64..u64::MAX, 0u64..1_000, 0u64..1_000, 0u64..u64::MAX),
            (0.0f64..1e9, short_string(), maybe_ms()),
        )
            .prop_map(
                |((id, done_runs, total_runs, events), (event_rate, hottest, eta_ms))| {
                    Frame::Progress {
                        id,
                        done_runs,
                        total_runs,
                        events,
                        event_rate,
                        hottest,
                        eta_ms,
                    }
                }
            ),
        (
            (0u64..u64::MAX, short_string(), 0u64..u64::MAX),
            (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        )
            .prop_map(
                |((id, payload, elapsed_ms), (store_hits, store_misses, store_puts))| {
                    Frame::Result {
                        id,
                        payload,
                        elapsed_ms,
                        store_hits,
                        store_misses,
                        store_puts,
                    }
                }
            ),
        (0u64..u64::MAX, short_string()).prop_map(|(id, message)| Frame::Error { id, message }),
        (0u64..u64::MAX).prop_map(|id| Frame::Cancel { id }),
        (0u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(id, retry_after_ms)| Frame::Busy { id, retry_after_ms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frame shape round-trips through the wire encoding exactly,
    /// consuming exactly its own bytes.
    #[test]
    fn any_frame_round_trips(f in frame()) {
        let bytes = encode_frame(&f).expect("encode");
        let (back, used) = decode_frame(&bytes).expect("decode");
        prop_assert_eq!(back, f);
        prop_assert_eq!(used, bytes.len());
    }

    /// Truncating an encoded frame anywhere yields a clean Truncated
    /// error — never a panic, never a bogus frame.
    #[test]
    fn truncated_frames_error_cleanly(f in frame(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_frame(&f).expect("encode");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(matches!(
                decode_frame(&bytes[..cut]),
                Err(FrameError::Truncated)
            ));
        }
    }

    /// A header declaring an over-cap payload is rejected before any
    /// allocation, whatever bytes follow it.
    #[test]
    fn oversized_headers_are_rejected(
        excess in 1u64..(u32::MAX as u64 - MAX_FRAME_LEN as u64),
        tail in prop::collection::vec(0u8..=u8::MAX, 0..64),
    ) {
        let len = (MAX_FRAME_LEN as u64 + excess) as u32;
        let mut wire = len.to_be_bytes().to_vec();
        wire.extend(tail);
        prop_assert!(matches!(decode_frame(&wire), Err(FrameError::TooLarge(_))));
    }

    /// Arbitrary garbage never panics the reader: any byte soup decodes
    /// to a frame, errors, or reports clean EOF.
    #[test]
    fn garbage_bytes_never_panic(bytes in prop::collection::vec(0u8..=u8::MAX, 0..256)) {
        let mut r: &[u8] = &bytes;
        let _ = read_frame(&mut r);
    }

    /// Back-to-back frames on one stream each read back intact.
    #[test]
    fn concatenated_frames_stream_back(frames in prop::collection::vec(frame(), 0..6)) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend(encode_frame(f).expect("encode"));
        }
        let mut r: &[u8] = &wire;
        for f in &frames {
            prop_assert_eq!(read_frame(&mut r).expect("read").as_ref(), Some(f));
        }
        prop_assert!(read_frame(&mut r).expect("clean eof").is_none());
    }
}
