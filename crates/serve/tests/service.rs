//! End-to-end tests of the campaign service over real Unix-domain
//! sockets: payload byte-identity with the local CLI path, cross-client
//! warm sharing, fairness under a single worker, backpressure at
//! capacity, cancellation, per-job timeouts, graceful drain, and the
//! Hello handshake.

use anacin_core::prelude::*;
use anacin_miniapps::Pattern;
use anacin_serve::client::{Client, Outcome};
use anacin_serve::frame::{read_frame, write_frame};
use anacin_serve::proto::{Frame, JobSpec, PROTOCOL_SCHEMA};
use anacin_serve::server::{Server, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A scratch directory per test (removed on success; left for
/// inspection on panic).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anacin_serve_test_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn start(tag: &str, cfg_of: impl FnOnce(ServerConfig) -> ServerConfig) -> (PathBuf, ServerHandle) {
    let dir = scratch(tag);
    let cfg = cfg_of(ServerConfig::new(dir.join("store")));
    let handle = Server::bind_unix(dir.join("serve.sock"), cfg)
        .expect("bind unix socket")
        .spawn();
    (dir, handle)
}

fn connect(dir: &std::path::Path, peer: &str) -> Client {
    Client::connect_unix(dir.join("serve.sock"), peer).expect("connect")
}

fn done(outcome: Outcome) -> anacin_serve::client::JobResult {
    match outcome {
        Outcome::Done(r) => r,
        other => panic!("expected Done, got {other:?}"),
    }
}

/// The acceptance oracle: a served campaign's payload is byte-identical
/// to the local `anacin run --json` output — cold (first client, empty
/// store) AND warm (second client, artifacts published by the first) —
/// and the warm hits are attributed to cross-client sharing.
#[test]
fn result_payload_matches_local_json_cold_and_warm_across_clients() {
    let cfg = CampaignConfig::new(Pattern::Amg2013, 16).runs(6);
    // What `anacin run --json` prints for this campaign: the pretty
    // report plus println!'s newline.
    let result = run_campaign(&cfg).expect("local campaign");
    let expected = format!(
        "{}\n",
        measurement_json(&cfg, &result.matrix).expect("local json")
    );

    let (dir, handle) = start("identity", |c| c.workers(2));
    let job = JobSpec::Campaign {
        config: cfg.clone(),
    };
    let mut alice = connect(&dir, "alice");
    let cold = done(alice.run(1, job.clone(), |_| {}).expect("cold job"));
    assert_eq!(cold.payload, expected, "cold payload must match local CLI");
    assert_eq!(cold.store_hits, 0, "first run of an empty store is cold");
    assert!(cold.store_puts > 0, "cold run publishes artifacts");

    let mut bob = connect(&dir, "bob");
    let warm = done(bob.run(1, job, |_| {}).expect("warm job"));
    assert_eq!(warm.payload, expected, "warm payload must match local CLI");
    assert!(
        warm.store_hits >= 1,
        "bob's run must be served from alice's artifacts, got {} hits",
        warm.store_hits
    );

    let report = handle.join();
    assert_eq!(report.counter("serve/jobs_completed"), Some(2));
    assert!(
        report.counter("serve/cross_client_hits").unwrap_or(0) >= warm.store_hits,
        "warm hits by a second client count as cross-client sharing"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// With one worker and round-robin admission, a client submitting a
/// single job is never starved behind another client's burst: bob's
/// one job completes before alice's burst finishes.
#[test]
fn single_job_client_is_not_starved_by_a_burst() {
    let (dir, handle) = start("fairness", |c| c.workers(1));
    let burst = 4u64;
    let alice_thread = {
        let dir = dir.clone();
        std::thread::spawn(move || {
            let mut alice = connect(&dir, "alice");
            for id in 0..burst {
                // Distinct seeds: every burst job is cold work.
                let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 16)
                    .runs(6)
                    .base_seed(100 + id);
                alice
                    .submit(id, JobSpec::Campaign { config: cfg })
                    .expect("submit");
            }
            let mut finished = Vec::new();
            for id in 0..burst {
                done(alice.wait(id, |_| {}).expect("burst job"));
                finished.push(Instant::now());
            }
            finished
        })
    };
    // Give alice's burst a head start in the queue, then submit one job.
    std::thread::sleep(Duration::from_millis(10));
    let mut bob = connect(&dir, "bob");
    let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 16)
        .runs(6)
        .base_seed(999);
    bob.submit(7, JobSpec::Campaign { config: cfg })
        .expect("submit");
    done(bob.wait(7, |_| {}).expect("bob's job"));
    let bob_done = Instant::now();
    let alice_done = alice_thread.join().expect("alice thread");
    assert!(
        bob_done < *alice_done.last().expect("burst completions"),
        "round-robin must serve bob before alice's burst drains"
    );
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// At queue capacity the server refuses with `Busy{retry_after_ms}`
/// instead of buffering without bound. Zero workers pin the queue.
#[test]
fn submits_beyond_capacity_get_busy() {
    let (dir, handle) = start("backpressure", |c| c.workers(0).queue_capacity(2));
    let mut client = connect(&dir, "greedy");
    let cfg = CampaignConfig::new(Pattern::MessageRace, 4).runs(2);
    for id in 1..=2 {
        client
            .submit(
                id,
                JobSpec::Campaign {
                    config: cfg.clone(),
                },
            )
            .expect("submit within capacity");
    }
    match client
        .run(3, JobSpec::Campaign { config: cfg }, |_| {})
        .expect("third submit")
    {
        Outcome::Rejected { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("expected Busy at capacity, got {other:?}"),
    }
    let report = handle.join();
    assert_eq!(report.counter("serve/jobs_admitted"), Some(2));
    assert_eq!(report.counter("serve/jobs_rejected"), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

/// A `Busy` answer is not fatal when the client retries: with the
/// one-slot queue pinned full behind a long job, `run_with_retry`
/// sleeps the server-suggested backoff between attempts and lands the
/// job once capacity frees — and the interim refusals are counted.
#[test]
fn busy_submit_succeeds_after_server_suggested_backoff() {
    let (dir, handle) = start("retry", |c| {
        c.workers(1).queue_capacity(1).retry_after_ms(20)
    });
    let mut alice = connect(&dir, "alice");
    // A long job the single worker picks up…
    let long = CampaignConfig::new(Pattern::UnstructuredMesh, 32).runs(40);
    alice
        .submit(1, JobSpec::Campaign { config: long })
        .expect("submit long job");
    while handle.metrics().counter("serve/jobs_admitted").unwrap_or(0) < 1 {
        std::thread::sleep(Duration::from_millis(1));
    }
    // …give the worker a beat to pop it, then pin the queue's one slot.
    std::thread::sleep(Duration::from_millis(20));
    let quick = CampaignConfig::new(Pattern::MessageRace, 4).runs(2);
    alice
        .submit(
            2,
            JobSpec::Campaign {
                config: quick.clone(),
            },
        )
        .expect("submit queued job");
    // A second client retrying into the full queue eventually lands.
    let mut bob = connect(&dir, "bob");
    let outcome = bob
        .run_with_retry(7, JobSpec::Campaign { config: quick }, 500, |_| {})
        .expect("retrying job");
    done(outcome);
    done(alice.wait(1, |_| {}).expect("long job"));
    done(alice.wait(2, |_| {}).expect("queued job"));
    let report = handle.join();
    assert!(
        report.counter("serve/jobs_rejected").unwrap_or(0) >= 1,
        "the full queue must have refused at least one attempt"
    );
    assert_eq!(report.counter("serve/jobs_completed"), Some(3));
    std::fs::remove_dir_all(&dir).ok();
}

/// An `Append` job's payload is byte-identical to the equivalent
/// `Campaign` job (and the local CLI) whether the store holds a prefix
/// to grow or not — append is a schedule, never a different answer.
#[test]
fn append_job_payload_matches_campaign_job() {
    let base = CampaignConfig::new(Pattern::Amg2013, 16).runs(6);
    let grown = base.clone().runs(7);
    let expected = {
        let result = run_campaign(&grown).expect("local campaign");
        format!(
            "{}\n",
            measurement_json(&grown, &result.matrix).expect("local json")
        )
    };

    let (dir, handle) = start("append", |c| c.workers(1));
    let mut client = connect(&dir, "appender");
    // Cold append — no stored prefix — falls back to the full
    // incremental path and still answers the CLI-identical payload.
    let cold = done(
        client
            .run(
                1,
                JobSpec::Append {
                    config: base.clone(),
                },
                |_| {},
            )
            .expect("cold append"),
    );
    let local_base = run_campaign(&base).expect("local base campaign");
    assert_eq!(
        cold.payload,
        format!(
            "{}\n",
            measurement_json(&base, &local_base.matrix).expect("local base json")
        ),
        "cold append payload must match the local CLI"
    );
    // Warm append — grow the stored 6-run campaign by one run.
    let warm = done(
        client
            .run(2, JobSpec::Append { config: grown }, |_| {})
            .expect("warm append"),
    );
    assert_eq!(
        warm.payload, expected,
        "appended payload must match a cold recompute byte-for-byte"
    );
    assert!(warm.store_hits > 0, "append must reuse the stored prefix");
    let report = handle.join();
    assert_eq!(report.counter("serve/jobs_completed"), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

/// Cancelling a job — queued or already running — answers an Error
/// frame naming the cancellation; the worker pool survives.
#[test]
fn cancel_stops_a_job_with_an_error_frame() {
    let (dir, handle) = start("cancel", |c| c.workers(1));
    let mut client = connect(&dir, "impatient");
    let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 32).runs(40);
    client
        .submit(5, JobSpec::Campaign { config: cfg })
        .expect("submit");
    client.cancel(5).expect("cancel");
    match client.wait(5, |_| {}).expect("terminal frame") {
        Outcome::Failed { message } => {
            assert!(
                message.contains("cancel"),
                "expected a cancellation message, got '{message}'"
            );
        }
        other => panic!("expected Failed after cancel, got {other:?}"),
    }
    // The worker is free again: a fresh job still completes.
    let quick = CampaignConfig::new(Pattern::MessageRace, 4).runs(2);
    done(
        client
            .run(6, JobSpec::Campaign { config: quick }, |_| {})
            .expect("post-cancel job"),
    );
    let report = handle.join();
    assert!(report.counter("serve/jobs_cancelled").unwrap_or(0) >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// A per-job timeout cancels cooperatively and reports it.
#[test]
fn job_timeout_cancels_with_a_timeout_error() {
    let (dir, handle) = start("timeout", |c| {
        c.workers(1).job_timeout(Duration::from_millis(1))
    });
    let mut client = connect(&dir, "slow");
    let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 32).runs(60);
    match client
        .run(1, JobSpec::Campaign { config: cfg }, |_| {})
        .expect("terminal frame")
    {
        Outcome::Failed { message } => assert!(
            message.contains("timed out"),
            "expected a timeout message, got '{message}'"
        ),
        other => panic!("expected Failed on timeout, got {other:?}"),
    }
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Draining refuses new submits but still delivers the result of a job
/// that was already admitted — no in-flight work is lost.
#[test]
fn drain_delivers_admitted_jobs_and_refuses_new_ones() {
    let (dir, handle) = start("drain", |c| c.workers(1));
    let mut client = connect(&dir, "drained");
    let cfg = CampaignConfig::new(Pattern::Amg2013, 16).runs(6);
    client
        .submit(
            1,
            JobSpec::Campaign {
                config: cfg.clone(),
            },
        )
        .expect("submit before drain");
    // Drain only once the job is actually admitted (the Submit frame is
    // processed by a reader thread, racing a bare drain call).
    while handle.metrics().counter("serve/jobs_admitted").unwrap_or(0) == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.drain();
    // Admitted before the drain: its result must still arrive.
    let result = done(client.wait(1, |_| {}).expect("drained job"));
    assert!(!result.payload.is_empty());
    // Submitted after the drain: refused, not queued.
    match client
        .run(2, JobSpec::Campaign { config: cfg }, |_| {})
        .expect("post-drain submit")
    {
        Outcome::Rejected { .. } => {}
        other => panic!("expected Busy while draining, got {other:?}"),
    }
    let report = handle.join();
    assert_eq!(report.counter("serve/jobs_completed"), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

/// A long cold job streams Progress frames while it runs, with a
/// stable total and monotone done counts.
#[test]
fn progress_frames_stream_while_a_job_runs() {
    let (dir, handle) = start("progress", |c| {
        c.workers(1).progress_interval(Duration::from_millis(5))
    });
    let mut client = connect(&dir, "watcher");
    let runs = 24u32;
    let cfg = CampaignConfig::new(Pattern::UnstructuredMesh, 32).runs(runs);
    let mut seen = 0u32;
    let mut last_done = 0u64;
    let result = client
        .run(1, JobSpec::Campaign { config: cfg }, |frame| {
            if let Frame::Progress {
                done_runs,
                total_runs,
                ..
            } = frame
            {
                seen += 1;
                assert_eq!(*total_runs, runs as u64);
                assert!(*done_runs >= last_done, "done count must not go backwards");
                last_done = *done_runs;
            }
        })
        .expect("job");
    done(result);
    assert!(seen >= 1, "a multi-run cold job must stream progress");
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The first frame must be Hello, and the server answers with the
/// minimum schema both sides speak.
#[test]
fn hello_negotiates_the_minimum_schema() {
    let (dir, handle) = start("hello", |c| c.workers(0));
    // A future client speaking schema 99 still converses at ours.
    let mut stream =
        std::os::unix::net::UnixStream::connect(dir.join("serve.sock")).expect("connect");
    write_frame(
        &mut stream,
        &Frame::Hello {
            schema: 99,
            peer: "from-the-future".into(),
        },
    )
    .expect("send hello");
    match read_frame(&mut stream).expect("read hello") {
        Some(Frame::Hello { schema, .. }) => assert_eq!(schema, PROTOCOL_SCHEMA),
        other => panic!("expected Hello, got {other:?}"),
    }
    drop(stream);
    // Skipping Hello is a protocol error answered before disconnect.
    let mut rude =
        std::os::unix::net::UnixStream::connect(dir.join("serve.sock")).expect("connect");
    write_frame(&mut rude, &Frame::Cancel { id: 1 }).expect("send non-hello");
    match read_frame(&mut rude).expect("read error") {
        Some(Frame::Error { id, message }) => {
            assert_eq!(id, 0);
            assert!(message.contains("Hello"), "got '{message}'");
        }
        other => panic!("expected Error for missing Hello, got {other:?}"),
    }
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The service also listens on TCP (`--listen`): the same handshake
/// and job path work over an ephemeral localhost port.
#[test]
fn tcp_transport_serves_jobs_too() {
    let dir = scratch("tcp");
    let handle = Server::bind_tcp(
        "127.0.0.1:0",
        ServerConfig::new(dir.join("store")).workers(1),
    )
    .expect("bind tcp")
    .spawn();
    let addr = handle.local_addr().expect("tcp address");
    let mut client = Client::connect_tcp(&addr.to_string(), "tcp-client").expect("connect");
    let cfg = CampaignConfig::new(Pattern::MessageRace, 4).runs(2);
    let result = done(
        client
            .run(1, JobSpec::Campaign { config: cfg }, |_| {})
            .expect("tcp job"),
    );
    assert!(!result.payload.is_empty());
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}
