//! Submit→result latency through the service socket, for
//! `anacin bench baseline`'s `serve` row.
//!
//! Spins up an in-process daemon on a scratch Unix socket with a fresh
//! store, runs the same campaign twice over the wire, and reports both
//! times: the first submit is cold (every artifact computed and
//! published), the second is warm (every artifact read back). The
//! cold/warm ratio through the *socket* is the service-path speedup the
//! bench-trend gate watches.

use crate::client::{Client, Outcome};
use crate::proto::JobSpec;
use crate::server::{Server, ServerConfig};
use anacin_core::prelude::CampaignConfig;
use anacin_miniapps::Pattern;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Cold and warm submit→result wall times through the socket.
#[derive(Debug, Clone, Copy)]
pub struct ServeLatency {
    /// First submission: empty store, everything computed.
    pub cold_ms: f64,
    /// Second submission of the identical campaign: fully warm.
    pub warm_ms: f64,
}

/// A unique scratch directory (process id + counter keeps concurrent
/// bench invocations and repeated calls apart).
fn scratch_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("anacin-serve-bench-{}-{n}", std::process::id()))
}

/// Measure cold and warm submit→result latency for one campaign
/// through a freshly started daemon. The daemon, store, and socket are
/// torn down before returning.
pub fn measure_serve_latency(
    pattern: Pattern,
    procs: u32,
    runs: u32,
) -> Result<ServeLatency, String> {
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let result = run_measurement(&dir, pattern, procs, runs);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn run_measurement(
    dir: &std::path::Path,
    pattern: Pattern,
    procs: u32,
    runs: u32,
) -> Result<ServeLatency, String> {
    let socket = dir.join("serve.sock");
    let handle = Server::bind_unix(&socket, ServerConfig::new(dir.join("store")).workers(1))
        .map_err(|e| e.to_string())?
        .spawn();
    let config = CampaignConfig::new(pattern, procs).runs(runs);
    let mut client = Client::connect_unix(&socket, "anacin-bench").map_err(|e| e.to_string())?;
    let mut times_ms = [0.0f64; 2];
    for (i, slot) in times_ms.iter_mut().enumerate() {
        let job = JobSpec::Campaign {
            config: config.clone(),
        };
        let begun = Instant::now();
        match client.run(i as u64 + 1, job, |_| {}) {
            Ok(Outcome::Done(_)) => *slot = begun.elapsed().as_secs_f64() * 1e3,
            Ok(other) => return Err(format!("serve bench job did not complete: {other:?}")),
            Err(e) => return Err(e.to_string()),
        }
    }
    drop(client);
    handle.join();
    Ok(ServeLatency {
        cold_ms: times_ms[0],
        warm_ms: times_ms[1],
    })
}
