//! Multi-tenant campaign service: a long-running daemon that accepts
//! campaign, sweep, and explore jobs from many concurrent clients and
//! runs them against one shared warm artifact store.
//!
//! The pieces, bottom-up:
//!
//! - [`proto`] — the versioned frame vocabulary ([`proto::Frame`],
//!   [`proto::JobSpec`]) both sides speak.
//! - [`frame`] — the length-prefixed JSON transport those frames ride
//!   on, hardened against truncation and hostile lengths.
//! - [`queue`] — the bounded admission queue with round-robin
//!   per-client fairness and explicit backpressure.
//! - [`server`] — the daemon: connection handling, worker pool, shared
//!   store, streaming progress, graceful drain.
//! - [`client`] — a small synchronous client used by `anacin client`
//!   and the tests.
//! - [`bench`] — submit→result latency measurement for
//!   `anacin bench baseline`.
//!
//! The load-bearing invariant: a job's `Result` payload is
//! byte-identical to the stdout of the equivalent local CLI invocation
//! (`anacin run --json`, `anacin sweep`), because both paths call the
//! same formatting helpers in `anacin_core::report`. The service adds
//! scheduling and sharing, never a second output format.

#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod frame;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::Client;
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use proto::{Frame, JobSpec, PROTOCOL_SCHEMA};
pub use queue::{AdmissionQueue, AdmitError};
pub use server::{Server, ServerConfig, ServerHandle};
