//! Bounded admission queue with per-client fairness.
//!
//! Jobs are held in one FIFO per client; workers pop round-robin across
//! clients with queued work, so a client submitting a burst of 50 jobs
//! cannot starve a client submitting one. Total capacity is bounded:
//! at capacity, [`AdmissionQueue::push`] refuses and the server answers
//! `Busy{retry_after_ms}` — explicit backpressure instead of unbounded
//! buffering.

use crate::proto::JobSpec;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A job admitted to the queue, with everything a worker needs to run
/// and answer it.
pub struct QueuedJob {
    /// The submitting connection.
    pub client: u64,
    /// Client-chosen job id.
    pub id: u64,
    /// What to run.
    pub spec: JobSpec,
    /// When the job was admitted (queue-wait histogram).
    pub enqueued: Instant,
}

/// The queue refused a push.
#[derive(Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Total capacity reached; tell the client to back off.
    Full,
    /// The queue is closed (server draining); nothing new is admitted.
    Closed,
}

struct Inner {
    /// One FIFO per client, in client arrival order. Entries are removed
    /// when their deque empties, so the vec stays proportional to
    /// clients with queued work.
    per_client: Vec<(u64, VecDeque<QueuedJob>)>,
    /// Round-robin cursor into `per_client`.
    cursor: usize,
    /// Total queued jobs across all clients.
    len: usize,
    closed: bool,
}

/// See the module docs.
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` jobs in total.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                per_client: Vec::new(),
                cursor: 0,
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Jobs currently queued (not those already popped by workers).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit a job: FIFO within its client. Refuses when at capacity or
    /// closed.
    pub fn push(&self, job: QueuedJob) -> Result<(), AdmitError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(AdmitError::Closed);
        }
        if inner.len >= self.capacity {
            return Err(AdmitError::Full);
        }
        match inner.per_client.iter_mut().find(|(c, _)| *c == job.client) {
            Some((_, q)) => q.push_back(job),
            None => {
                let client = job.client;
                let mut q = VecDeque::new();
                q.push_back(job);
                inner.per_client.push((client, q));
            }
        }
        inner.len += 1;
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Pop the next job round-robin across clients, blocking while the
    /// queue is empty. `None` once the queue is closed *and* drained —
    /// the worker-thread exit signal.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.len > 0 {
                let idx = inner.cursor % inner.per_client.len();
                let (_, q) = &mut inner.per_client[idx];
                let job = q.pop_front().expect("non-empty client queues only");
                if q.is_empty() {
                    inner.per_client.remove(idx);
                    // The next client now sits at `idx`; leaving the
                    // cursor there continues the rotation.
                    if !inner.per_client.is_empty() {
                        inner.cursor = idx % inner.per_client.len();
                    } else {
                        inner.cursor = 0;
                    }
                } else {
                    inner.cursor = (idx + 1) % inner.per_client.len();
                }
                inner.len -= 1;
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Stop admitting; queued jobs still drain through [`pop`](Self::pop),
    /// after which every popping worker receives `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Drop every queued job of a disconnected client, returning them so
    /// the server can account for the cancellations.
    pub fn remove_client(&self, client: u64) -> Vec<QueuedJob> {
        let mut inner = self.inner.lock().unwrap();
        let mut removed = Vec::new();
        if let Some(idx) = inner.per_client.iter().position(|(c, _)| *c == client) {
            let (_, q) = inner.per_client.remove(idx);
            inner.len -= q.len();
            removed.extend(q);
            if inner.cursor > idx {
                inner.cursor -= 1;
            }
            if !inner.per_client.is_empty() {
                inner.cursor %= inner.per_client.len();
            } else {
                inner.cursor = 0;
            }
        }
        removed
    }

    /// Drop one queued job (a `Cancel` frame that arrived before a
    /// worker claimed it). True when the job was found and removed.
    pub fn remove_job(&self, client: u64, id: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(idx) = inner.per_client.iter().position(|(c, _)| *c == client) else {
            return false;
        };
        let (_, q) = &mut inner.per_client[idx];
        let Some(pos) = q.iter().position(|j| j.id == id) else {
            return false;
        };
        q.remove(pos);
        inner.len -= 1;
        if inner.per_client[idx].1.is_empty() {
            inner.per_client.remove(idx);
            if inner.cursor > idx {
                inner.cursor -= 1;
            }
            if !inner.per_client.is_empty() {
                inner.cursor %= inner.per_client.len();
            } else {
                inner.cursor = 0;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_core::prelude::CampaignConfig;
    use anacin_miniapps::Pattern;

    fn job(client: u64, id: u64) -> QueuedJob {
        QueuedJob {
            client,
            id,
            spec: JobSpec::Campaign {
                config: CampaignConfig::new(Pattern::MessageRace, 4).runs(2),
            },
            enqueued: Instant::now(),
        }
    }

    fn pop_order(q: &AdmissionQueue, n: usize) -> Vec<(u64, u64)> {
        (0..n)
            .map(|_| {
                let j = q.pop().unwrap();
                (j.client, j.id)
            })
            .collect()
    }

    #[test]
    fn round_robin_across_clients_fifo_within() {
        let q = AdmissionQueue::new(16);
        // Client 1 floods; client 2 then submits one job.
        for id in 0..4 {
            q.push(job(1, id)).unwrap();
        }
        q.push(job(2, 100)).unwrap();
        // Client 2's single job is served second, not fifth.
        assert_eq!(
            pop_order(&q, 5),
            vec![(1, 0), (2, 100), (1, 1), (1, 2), (1, 3)]
        );
    }

    #[test]
    fn three_clients_interleave_fairly() {
        let q = AdmissionQueue::new(16);
        for id in 0..2 {
            for client in 1..=3 {
                q.push(job(client, id)).unwrap();
            }
        }
        assert_eq!(
            pop_order(&q, 6),
            vec![(1, 0), (2, 0), (3, 0), (1, 1), (2, 1), (3, 1)]
        );
    }

    #[test]
    fn capacity_refuses_with_full() {
        let q = AdmissionQueue::new(2);
        q.push(job(1, 0)).unwrap();
        q.push(job(1, 1)).unwrap();
        assert_eq!(q.push(job(1, 2)), Err(AdmitError::Full));
        assert_eq!(q.push(job(2, 0)), Err(AdmitError::Full));
        // Popping frees capacity again.
        q.pop().unwrap();
        q.push(job(2, 0)).unwrap();
    }

    #[test]
    fn close_drains_then_signals_workers() {
        let q = AdmissionQueue::new(4);
        q.push(job(1, 0)).unwrap();
        q.close();
        assert_eq!(q.push(job(1, 1)), Err(AdmitError::Closed));
        assert_eq!(pop_order(&q, 1), vec![(1, 0)]);
        assert!(q.pop().is_none(), "closed and drained");
    }

    #[test]
    fn disconnect_removes_only_that_client() {
        let q = AdmissionQueue::new(8);
        q.push(job(1, 0)).unwrap();
        q.push(job(2, 0)).unwrap();
        q.push(job(1, 1)).unwrap();
        let dropped = q.remove_client(1);
        assert_eq!(dropped.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(pop_order(&q, 1), vec![(2, 0)]);
    }

    #[test]
    fn cancel_removes_one_queued_job() {
        let q = AdmissionQueue::new(8);
        q.push(job(1, 0)).unwrap();
        q.push(job(1, 1)).unwrap();
        assert!(q.remove_job(1, 0));
        assert!(!q.remove_job(1, 0), "already gone");
        assert_eq!(pop_order(&q, 1), vec![(1, 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        use std::sync::Arc;
        let q = Arc::new(AdmissionQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().map(|j| j.id));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(job(1, 7)).unwrap();
        assert_eq!(h.join().unwrap(), Some(7));
    }
}
