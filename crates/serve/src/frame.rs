//! Length-prefixed frame transport.
//!
//! A frame on the wire is a 4-byte big-endian payload length followed by
//! that many bytes of JSON (one serialized [`Frame`]). The length cap
//! ([`MAX_FRAME_LEN`]) is checked *before* allocating, so a corrupt or
//! hostile header can never balloon memory; a truncated stream is a
//! clean [`FrameError`], never a panic — the same discipline as the
//! store's wire primitives.

use crate::proto::Frame;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a frame's payload bytes. Generous: the largest real
/// payload is a pretty-printed sweep or explore report, well under a
/// megabyte; 16 MiB leaves room without letting a bad header allocate
/// the machine.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The stream ended inside a frame (mid-header or mid-payload).
    Truncated,
    /// A header declared a payload longer than [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload was not valid JSON for a [`Frame`].
    Decode(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport failed: {e}"),
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::Decode(e) => write!(f, "frame payload undecodable: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Serialize `frame` to its wire bytes (header + JSON payload).
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, FrameError> {
    let json = serde_json::to_string(frame).map_err(|e| FrameError::Decode(e.to_string()))?;
    let payload = json.as_bytes();
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(payload.len()));
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decode one frame from the front of `bytes`, returning it and the
/// number of bytes consumed. Any prefix of a valid encoding errors
/// cleanly (never panics).
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    let mut cursor = io::Cursor::new(bytes);
    match read_frame(&mut cursor)? {
        Some(f) => Ok((f, cursor.position() as usize)),
        None => Err(FrameError::Truncated),
    }
}

/// Write one frame and flush, so the peer sees it immediately (progress
/// frames are only useful live).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), FrameError> {
    let bytes = encode_frame(frame)?;
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. `Ok(None)` is a clean end of stream (the peer closed
/// between frames); ending *inside* a frame is [`FrameError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| FrameError::Decode(format!("payload is not UTF-8: {e}")))?;
    let frame = serde_json::from_str(text).map_err(|e| FrameError::Decode(e.to_string()))?;
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::PROTOCOL_SCHEMA;

    fn hello() -> Frame {
        Frame::Hello {
            schema: PROTOCOL_SCHEMA,
            peer: "test".into(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let bytes = encode_frame(&hello()).unwrap();
        let (back, used) = decode_frame(&bytes).unwrap();
        assert_eq!(back, hello());
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn clean_eof_is_none_and_mid_frame_eof_is_truncated() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));
        let bytes = encode_frame(&hello()).unwrap();
        for cut in 1..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_header_errors_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        bytes.extend_from_slice(b"whatever");
        assert!(matches!(decode_frame(&bytes), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn garbage_payload_is_a_decode_error() {
        let payload = b"not json at all";
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        bytes.extend_from_slice(payload);
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Decode(_))));
    }

    #[test]
    fn frames_concatenate_on_the_wire() {
        let a = hello();
        let b = Frame::Cancel { id: 3 };
        let mut wire = encode_frame(&a).unwrap();
        wire.extend(encode_frame(&b).unwrap());
        let mut r: &[u8] = &wire;
        assert_eq!(read_frame(&mut r).unwrap(), Some(a));
        assert_eq!(read_frame(&mut r).unwrap(), Some(b));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }
}
