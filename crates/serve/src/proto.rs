//! The wire vocabulary of the campaign service: job specifications and
//! the versioned frame set both sides speak.
//!
//! Every message is one [`Frame`], carried over the length-prefixed
//! transport in [`crate::frame`]. The conversation is:
//!
//! ```text
//! client                          server
//!   Hello{schema, peer}   ─────▶
//!                         ◀─────   Hello{schema: min(ours, yours), peer}
//!   Submit{id, job}       ─────▶
//!                         ◀─────   Progress{id, ...}   (repeated)
//!                         ◀─────   Result{id, ...} | Error{id, ...} | Busy{id, ...}
//!   Cancel{id}            ─────▶   (any time after Submit)
//! ```
//!
//! Schema negotiation: each side sends the highest schema it speaks in
//! `Hello`; both then use the minimum. Frames added in later schemas
//! must only ever *extend* the enum, so a v1 peer never receives a
//! frame it cannot decode.

use anacin_core::prelude::CampaignConfig;
use serde::{Deserialize, Serialize};

/// Highest protocol schema this build speaks.
pub const PROTOCOL_SCHEMA: u16 = 1;

/// What a client asks the service to run. Mirrors the batch CLI: a
/// campaign (`anacin run`), a parameter sweep (`anacin sweep --kind`),
/// or a campaign with schedule-space exploration (`anacin run
/// --explore`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobSpec {
    /// One measurement campaign, run incrementally against the server's
    /// shared artifact store.
    Campaign {
        /// The campaign to run.
        config: CampaignConfig,
    },
    /// A parameter sweep; `kind` is `nd`, `procs`, or `iterations`,
    /// with the same default point sets as the CLI.
    Sweep {
        /// Swept parameter: `nd`, `procs`, or `iterations`.
        kind: String,
        /// The base configuration each point derives from.
        config: CampaignConfig,
    },
    /// A campaign plus schedule-space enumeration (`run --explore`).
    Explore {
        /// The campaign to run.
        config: CampaignConfig,
        /// Explored-schedule cap (the CLI's `--schedule-budget`).
        budget: usize,
        /// Disable partial-order reduction (the CLI's `--brute-force`).
        brute_force: bool,
    },
    /// One measurement campaign, appending onto the server's stored
    /// prefix of the same run set (`anacin run --append-to`): the kernel
    /// stage reuses the largest stored Gram matrix and computes only the
    /// new rows/columns. The result payload is byte-identical to
    /// `Campaign` for the same config.
    Append {
        /// The campaign to run.
        config: CampaignConfig,
    },
}

impl JobSpec {
    /// The campaign configuration behind any job kind.
    pub fn config(&self) -> &CampaignConfig {
        match self {
            JobSpec::Campaign { config }
            | JobSpec::Sweep { config, .. }
            | JobSpec::Explore { config, .. }
            | JobSpec::Append { config } => config,
        }
    }

    /// Total runs the job will execute, for progress denominators.
    /// Sweeps multiply by their point count.
    pub fn total_runs(&self) -> u64 {
        match self {
            JobSpec::Campaign { config }
            | JobSpec::Explore { config, .. }
            | JobSpec::Append { config } => config.runs as u64,
            JobSpec::Sweep { kind, config } => {
                let points = match kind.as_str() {
                    "nd" => 11,
                    "procs" | "iterations" => 3,
                    _ => 1,
                };
                config.runs as u64 * points
            }
        }
    }
}

/// One protocol message. Externally tagged JSON, e.g.
/// `{"Cancel": {"id": 7}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Connection opener, sent by both sides; carries the highest
    /// schema the sender speaks and a human-readable peer name.
    Hello {
        /// Highest schema the sender understands.
        schema: u16,
        /// Peer name, for logs (`anacin-client`, `anacin-serve`).
        peer: String,
    },
    /// Client → server: run this job. `id` is client-chosen and scopes
    /// every later frame about the job; it need only be unique within
    /// the connection.
    Submit {
        /// Client-chosen job id.
        id: u64,
        /// What to run.
        job: JobSpec,
    },
    /// Server → client: the job moved. Built from
    /// `MetricsReport::delta_since` snapshots of the job's registry —
    /// the same data the local `--progress` line renders.
    Progress {
        /// The job this frame describes.
        id: u64,
        /// Runs finished so far (store hits count immediately).
        done_runs: u64,
        /// Total runs the job will execute.
        total_runs: u64,
        /// Events simulated so far.
        events: u64,
        /// Events per second over the last interval.
        event_rate: f64,
        /// Stage that consumed the most wall time this interval
        /// (empty when idle).
        hottest: String,
        /// Estimated remaining milliseconds; absent until at least one
        /// run has finished.
        eta_ms: Option<u64>,
    },
    /// Server → client: the job finished. `payload` is byte-identical
    /// to the stdout of the equivalent batch CLI invocation (`anacin
    /// run --json` for campaigns).
    Result {
        /// The finished job.
        id: u64,
        /// The CLI-equivalent output, verbatim.
        payload: String,
        /// Wall-clock execution time (queue wait excluded).
        elapsed_ms: u64,
        /// Artifacts this job read from the shared store.
        store_hits: u64,
        /// Artifacts this job looked up but had to compute.
        store_misses: u64,
        /// Artifacts this job published.
        store_puts: u64,
    },
    /// Server → client: the job failed, was cancelled, or a frame was
    /// malformed (`id` 0 when no job is attributable).
    Error {
        /// The affected job, or 0.
        id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// Client → server: stop a queued or running job. Queued jobs are
    /// dropped immediately; running jobs finish their in-flight run and
    /// stop. Answered with `Error{message: "cancelled"}`.
    Cancel {
        /// The job to stop.
        id: u64,
    },
    /// Server → client: admission refused — the queue is full or the
    /// server is draining. The job was not admitted; retry after the
    /// suggested backoff.
    Busy {
        /// The refused job.
        id: u64,
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
}

impl Frame {
    /// The job id this frame concerns (`Hello` has none).
    pub fn job_id(&self) -> Option<u64> {
        match self {
            Frame::Hello { .. } => None,
            Frame::Submit { id, .. }
            | Frame::Progress { id, .. }
            | Frame::Result { id, .. }
            | Frame::Error { id, .. }
            | Frame::Cancel { id }
            | Frame::Busy { id, .. } => Some(*id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_miniapps::Pattern;

    #[test]
    fn frames_round_trip_through_json() {
        let cfg = CampaignConfig::new(Pattern::Amg2013, 16).runs(6);
        let frames = vec![
            Frame::Hello {
                schema: PROTOCOL_SCHEMA,
                peer: "anacin-client".into(),
            },
            Frame::Submit {
                id: 1,
                job: JobSpec::Campaign {
                    config: cfg.clone(),
                },
            },
            Frame::Submit {
                id: 2,
                job: JobSpec::Sweep {
                    kind: "nd".into(),
                    config: cfg.clone(),
                },
            },
            Frame::Submit {
                id: 3,
                job: JobSpec::Explore {
                    config: cfg.clone(),
                    budget: 64,
                    brute_force: false,
                },
            },
            Frame::Submit {
                id: 4,
                job: JobSpec::Append { config: cfg },
            },
            Frame::Progress {
                id: 1,
                done_runs: 3,
                total_runs: 6,
                events: 120_000,
                event_rate: 1.5e6,
                hottest: "campaign/simulate".into(),
                eta_ms: Some(420),
            },
            Frame::Result {
                id: 1,
                // Payloads are pretty-printed JSON: embedded newlines and
                // quotes must survive the trip.
                payload: "{\n  \"label\": \"amg2013 @ 100%\"\n}".into(),
                elapsed_ms: 17,
                store_hits: 19,
                store_misses: 0,
                store_puts: 0,
            },
            Frame::Error {
                id: 9,
                message: "cancelled".into(),
            },
            Frame::Cancel { id: 9 },
            Frame::Busy {
                id: 4,
                retry_after_ms: 250,
            },
        ];
        for f in frames {
            let json = serde_json::to_string(&f).unwrap();
            let back: Frame = serde_json::from_str(&json).unwrap();
            assert_eq!(back, f, "round-trip failed for {json}");
        }
    }

    #[test]
    fn sweep_total_runs_counts_points() {
        let cfg = CampaignConfig::new(Pattern::MessageRace, 8).runs(10);
        assert_eq!(
            JobSpec::Campaign {
                config: cfg.clone()
            }
            .total_runs(),
            10
        );
        assert_eq!(
            JobSpec::Sweep {
                kind: "nd".into(),
                config: cfg
            }
            .total_runs(),
            110
        );
    }
}
