//! The campaign daemon: accept loop, per-connection readers, a shared
//! worker pool, and one shared artifact store.
//!
//! Thread shape (all plain `std::thread`, no async runtime):
//!
//! - one **accept** thread polling the listener (non-blocking, so a
//!   drain request is noticed within ~25 ms);
//! - one **reader** thread per connection, decoding frames and feeding
//!   the admission queue;
//! - `workers` **worker** threads popping the queue and executing jobs;
//! - one **ticker** thread per running job, snapshotting the job's
//!   registry every `progress_interval` and streaming `Progress`
//!   frames (it also enforces the per-job timeout).
//!
//! Every job opens its own [`ArtifactStore`] handle on the shared root
//! and gets a fresh [`MetricsRegistry`], so per-job progress deltas and
//! per-job hit/miss counts never interleave across concurrent jobs —
//! while the *disk* is shared, which is what makes client B's campaign
//! warm after client A ran the same configuration cold.
//!
//! Graceful drain ([`ServerHandle::drain`]): stop admitting (`Busy`),
//! close the queue, let workers finish everything queued and in flight,
//! then join. A result that had begun streaming is always delivered.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{Frame, JobSpec, PROTOCOL_SCHEMA};
use crate::queue::{AdmissionQueue, QueuedJob};
use anacin_core::prelude::*;
use anacin_core::report::to_json;
use anacin_mpisim::explore::ExploreConfig;
use anacin_obs::{CancelToken, MetricsDelta, MetricsRegistry, MetricsReport};
use anacin_store::{ArtifactStore, Fingerprint};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How a daemon behaves: where the shared store lives, how much it
/// runs at once, and when it pushes back.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root of the shared artifact store all jobs read and publish to.
    pub store_dir: PathBuf,
    /// Worker threads executing jobs. `0` is legal (jobs queue but
    /// never run) and exists for backpressure tests.
    pub workers: usize,
    /// Total queued-job capacity; beyond it submits get `Busy`.
    pub queue_capacity: usize,
    /// Cancel a job cooperatively once it has run this long.
    pub job_timeout: Option<Duration>,
    /// How often a running job streams a `Progress` frame.
    pub progress_interval: Duration,
    /// Backoff suggested in `Busy` frames.
    pub retry_after_ms: u64,
}

impl ServerConfig {
    /// Defaults: workers from available parallelism (capped at 4),
    /// capacity 64, no timeout, 250 ms progress, 250 ms retry hint.
    pub fn new(store_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            store_dir: store_dir.into(),
            workers: thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
            queue_capacity: 64,
            job_timeout: None,
            progress_interval: Duration::from_millis(250),
            retry_after_ms: 250,
        }
    }

    /// Set the worker-thread count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set the queued-job capacity.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Set the per-job timeout.
    pub fn job_timeout(mut self, t: Duration) -> Self {
        self.job_timeout = Some(t);
        self
    }

    /// Set the progress-frame interval.
    pub fn progress_interval(mut self, t: Duration) -> Self {
        self.progress_interval = t;
        self
    }

    /// Set the backoff suggested in `Busy` frames.
    pub fn retry_after_ms(mut self, ms: u64) -> Self {
        self.retry_after_ms = ms;
        self
    }
}

/// A connected byte stream, Unix-domain or TCP.
pub(crate) enum Stream {
    /// Unix-domain socket (the default transport).
    Unix(UnixStream),
    /// TCP socket (`--listen`).
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn connect_unix(path: &Path) -> io::Result<Stream> {
        UnixStream::connect(path).map(Stream::Unix)
    }

    pub(crate) fn connect_tcp(addr: &str) -> io::Result<Stream> {
        TcpStream::connect(addr).map(Stream::Tcp)
    }

    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        let stream = match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s))?,
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s))?,
        };
        // The listener polls non-blocking; accepted connections must
        // block (readers park in read_frame between requests).
        match &stream {
            Stream::Unix(s) => s.set_nonblocking(false)?,
            Stream::Tcp(s) => s.set_nonblocking(false)?,
        }
        Ok(stream)
    }
}

/// The half-open frame writer of one connection, shared between its
/// reader thread (Busy/Error replies) and whichever workers run its
/// jobs (Progress/Result frames). The mutex serialises whole frames,
/// so concurrent jobs of one client never interleave bytes.
type SharedWriter = Arc<Mutex<Stream>>;

fn send(writer: &SharedWriter, frame: &Frame) -> bool {
    write_frame(&mut *writer.lock().unwrap(), frame).is_ok()
}

struct Shared {
    cfg: ServerConfig,
    queue: AdmissionQueue,
    /// Server-level counters and histograms (`serve/*`, queue wait).
    reg: MetricsRegistry,
    draining: AtomicBool,
    /// First client to run each campaign fingerprint — later warm hits
    /// by a *different* client count as cross-client sharing.
    producers: Mutex<HashMap<Fingerprint, u64>>,
    /// Cancellation tokens of running jobs, keyed (client, job id).
    running: Mutex<HashMap<(u64, u64), CancelToken>>,
    /// Live connection writers, keyed by client id.
    writers: Mutex<HashMap<u64, SharedWriter>>,
    next_client: AtomicU64,
}

/// A bound, not-yet-running daemon. [`Server::spawn`] starts the
/// threads and yields the [`ServerHandle`] used to drain and join.
pub struct Server {
    listener: Listener,
    cfg: ServerConfig,
    addr: Option<SocketAddr>,
}

impl Server {
    /// Bind a Unix-domain socket at `path` (a stale socket file from a
    /// previous daemon is removed first).
    pub fn bind_unix(path: impl AsRef<Path>, cfg: ServerConfig) -> io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener: Listener::Unix(listener, path),
            cfg,
            addr: None,
        })
    }

    /// Bind a TCP listener, e.g. `127.0.0.1:0` for an ephemeral port
    /// (read it back with [`Server::local_addr`]).
    pub fn bind_tcp(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener: Listener::Tcp(listener),
            cfg,
            addr: Some(addr),
        })
    }

    /// The bound TCP address (`None` for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Start the accept loop and worker pool.
    pub fn spawn(self) -> ServerHandle {
        let Server {
            listener,
            cfg,
            addr,
        } = self;
        let reg = MetricsRegistry::new();
        // Touch every serve counter so a drained daemon's report lists
        // the full set even when some never fired.
        for name in [
            "serve/clients",
            "serve/jobs_admitted",
            "serve/jobs_rejected",
            "serve/jobs_completed",
            "serve/jobs_failed",
            "serve/jobs_cancelled",
            "serve/store_hits",
            "serve/store_misses",
            "serve/store_puts",
            "serve/cross_client_hits",
        ] {
            reg.counter(name);
        }
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            reg,
            draining: AtomicBool::new(false),
            producers: Mutex::new(HashMap::new()),
            running: Mutex::new(HashMap::new()),
            writers: Mutex::new(HashMap::new()),
            next_client: AtomicU64::new(1),
            cfg,
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept = {
            let sh = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&sh, listener))
                .expect("spawn accept thread")
        };
        ServerHandle {
            shared,
            accept: Some(accept),
            workers,
            addr,
        }
    }
}

/// A running daemon. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::join`] for a graceful drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    addr: Option<SocketAddr>,
}

impl ServerHandle {
    /// The bound TCP address (`None` for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// A point-in-time snapshot of the server registry (`serve/*`
    /// counters, queue-wait and execution histograms).
    pub fn metrics(&self) -> MetricsReport {
        self.shared.reg.report()
    }

    /// Begin a graceful drain: refuse new submits with `Busy`, close
    /// the queue. Everything already queued or running still finishes
    /// and delivers its `Result`.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.close();
    }

    /// Drain and wait for the accept loop and every worker to finish,
    /// returning the final metrics snapshot.
    pub fn join(mut self) -> MetricsReport {
        self.drain();
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.reg.report()
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: Listener) {
    while !shared.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(stream) => {
                let client = shared.next_client.fetch_add(1, Ordering::Relaxed);
                let sh = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name(format!("serve-client-{client}"))
                    .spawn(move || handle_client(&sh, stream, client));
                if spawned.is_err() {
                    // Out of threads: the connection drops; the client
                    // sees EOF and can retry.
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
            }
            Err(_) => thread::sleep(Duration::from_millis(25)),
        }
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

fn handle_client(shared: &Arc<Shared>, stream: Stream, client: u64) {
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    // The first frame must be Hello; answer with the negotiated schema
    // (the minimum both sides speak).
    match read_frame(&mut reader) {
        Ok(Some(Frame::Hello { schema, .. })) => {
            let negotiated = schema.min(PROTOCOL_SCHEMA);
            let hello = Frame::Hello {
                schema: negotiated,
                peer: "anacin-serve".into(),
            };
            if !send(&writer, &hello) {
                return;
            }
        }
        _ => {
            send(
                &writer,
                &Frame::Error {
                    id: 0,
                    message: "protocol error: expected Hello as the first frame".into(),
                },
            );
            return;
        }
    }
    shared.reg.counter("serve/clients").inc();
    shared
        .writers
        .lock()
        .unwrap()
        .insert(client, Arc::clone(&writer));
    loop {
        match read_frame(&mut reader) {
            Ok(Some(Frame::Submit { id, job })) => {
                let refused = shared.draining.load(Ordering::Acquire)
                    || shared
                        .queue
                        .push(QueuedJob {
                            client,
                            id,
                            spec: job,
                            enqueued: Instant::now(),
                        })
                        .is_err();
                if refused {
                    shared.reg.counter("serve/jobs_rejected").inc();
                    send(
                        &writer,
                        &Frame::Busy {
                            id,
                            retry_after_ms: shared.cfg.retry_after_ms,
                        },
                    );
                } else {
                    shared.reg.counter("serve/jobs_admitted").inc();
                }
            }
            Ok(Some(Frame::Cancel { id })) => {
                if shared.queue.remove_job(client, id) {
                    // Never started: answer immediately.
                    shared.reg.counter("serve/jobs_cancelled").inc();
                    send(
                        &writer,
                        &Frame::Error {
                            id,
                            message: "cancelled".into(),
                        },
                    );
                } else if let Some(token) = shared.running.lock().unwrap().get(&(client, id)) {
                    // Running: fire the token; the worker answers once
                    // the in-flight run finishes.
                    token.cancel();
                } else {
                    send(
                        &writer,
                        &Frame::Error {
                            id,
                            message: "no such job".into(),
                        },
                    );
                }
            }
            Ok(Some(other)) => {
                send(
                    &writer,
                    &Frame::Error {
                        id: other.job_id().unwrap_or(0),
                        message: "protocol error: unexpected frame from client".into(),
                    },
                );
            }
            Ok(None) => break,
            Err(FrameError::Decode(e)) => {
                send(
                    &writer,
                    &Frame::Error {
                        id: 0,
                        message: format!("protocol error: {e}"),
                    },
                );
                break;
            }
            Err(_) => break,
        }
    }
    // Disconnect: drop this client's queued jobs and cancel its running
    // ones — nobody is left to receive the results.
    shared.writers.lock().unwrap().remove(&client);
    let dropped = shared.queue.remove_client(client);
    if !dropped.is_empty() {
        shared
            .reg
            .counter("serve/jobs_cancelled")
            .add(dropped.len() as u64);
    }
    for (key, token) in shared.running.lock().unwrap().iter() {
        if key.0 == client {
            token.cancel();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared
            .reg
            .record_span("serve/queue_wait", job.enqueued.elapsed().as_nanos() as u64);
        execute_job(shared, job);
    }
}

enum JobOutcome {
    Done {
        payload: String,
        hits: u64,
        misses: u64,
        puts: u64,
    },
    Cancelled,
    Failed(String),
}

fn execute_job(shared: &Arc<Shared>, job: QueuedJob) {
    let QueuedJob {
        client, id, spec, ..
    } = job;
    let writer = shared.writers.lock().unwrap().get(&client).cloned();
    let cancel = CancelToken::new();
    shared
        .running
        .lock()
        .unwrap()
        .insert((client, id), cancel.clone());
    // A fresh registry per job: progress deltas and store counts are
    // exactly this job's, even with many jobs in flight.
    let reg = MetricsRegistry::new();
    let start = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let timed_out = Arc::new(AtomicBool::new(false));
    let ticker = spawn_ticker(TickerSetup {
        writer: writer.clone(),
        reg: reg.clone(),
        id,
        total_runs: spec.total_runs(),
        cancel: cancel.clone(),
        stop: Arc::clone(&stop),
        timed_out: Arc::clone(&timed_out),
        job_timeout: shared.cfg.job_timeout,
        interval: shared.cfg.progress_interval,
        start,
    });
    let outcome = run_spec(shared, &spec, &reg, &cancel);
    stop.store(true, Ordering::Release);
    let _ = ticker.join();
    shared.running.lock().unwrap().remove(&(client, id));
    let elapsed = start.elapsed();
    shared
        .reg
        .record_span("serve/job_exec", elapsed.as_nanos() as u64);
    let response = match outcome {
        JobOutcome::Done {
            payload,
            hits,
            misses,
            puts,
        } => {
            shared.reg.counter("serve/jobs_completed").inc();
            shared.reg.counter("serve/store_hits").add(hits);
            shared.reg.counter("serve/store_misses").add(misses);
            shared.reg.counter("serve/store_puts").add(puts);
            attribute_sharing(shared, &spec, client, hits);
            Frame::Result {
                id,
                payload,
                elapsed_ms: elapsed.as_millis() as u64,
                store_hits: hits,
                store_misses: misses,
                store_puts: puts,
            }
        }
        JobOutcome::Cancelled => {
            shared.reg.counter("serve/jobs_cancelled").inc();
            let message = if timed_out.load(Ordering::Acquire) {
                format!(
                    "job timed out after {} ms",
                    shared
                        .cfg
                        .job_timeout
                        .map(|t| t.as_millis() as u64)
                        .unwrap_or(0)
                )
            } else {
                "cancelled".to_string()
            };
            Frame::Error { id, message }
        }
        JobOutcome::Failed(message) => {
            shared.reg.counter("serve/jobs_failed").inc();
            Frame::Error { id, message }
        }
    };
    if let Some(w) = &writer {
        send(w, &response);
    }
}

/// Credit warm hits to cross-client sharing when a *different* client
/// first produced this campaign's artifacts.
fn attribute_sharing(shared: &Shared, spec: &JobSpec, client: u64, hits: u64) {
    let fp = campaign_fingerprint(spec.config());
    let mut producers = shared.producers.lock().unwrap();
    match producers.get(&fp) {
        Some(&producer) => {
            if producer != client && hits > 0 {
                shared.reg.counter("serve/cross_client_hits").add(hits);
            }
        }
        None => {
            producers.insert(fp, client);
        }
    }
}

/// Run the job body. Every path opens its own handle on the shared
/// store root and mirrors store activity into the job registry.
fn run_spec(
    shared: &Shared,
    spec: &JobSpec,
    reg: &MetricsRegistry,
    cancel: &CancelToken,
) -> JobOutcome {
    let store = match ArtifactStore::open(&shared.cfg.store_dir) {
        Ok(s) => s,
        Err(e) => return JobOutcome::Failed(format!("store unavailable: {e}")),
    };
    store.attach_metrics(reg);
    let payload = match spec {
        JobSpec::Campaign { config } => {
            match run_campaign_incremental_cancellable(
                config,
                &store,
                Some(reg),
                None,
                0,
                Some(cancel),
            ) {
                Ok(result) => match measurement_json(config, &result.matrix) {
                    Ok(json) => format!("{json}\n"),
                    Err(e) => return JobOutcome::Failed(e.to_string()),
                },
                Err(Interrupted::Cancelled { .. }) => return JobOutcome::Cancelled,
                Err(Interrupted::Failed(e)) => return JobOutcome::Failed(e.to_string()),
            }
        }
        JobSpec::Append { config } => {
            // Same payload shape as `Campaign`; only the kernel stage
            // differs (stored-prefix reuse), and append-then-read is
            // byte-identical to a cold recompute, so the result payload
            // is too.
            match run_campaign_append_cancellable(config, &store, Some(reg), None, 0, Some(cancel))
            {
                Ok(result) => match measurement_json(config, &result.matrix) {
                    Ok(json) => format!("{json}\n"),
                    Err(e) => return JobOutcome::Failed(e.to_string()),
                },
                Err(Interrupted::Cancelled { .. }) => return JobOutcome::Cancelled,
                Err(Interrupted::Failed(e)) => return JobOutcome::Failed(e.to_string()),
            }
        }
        JobSpec::Sweep { kind, config } => {
            // The same default point sets as `anacin sweep --kind`.
            let swept = match kind.as_str() {
                "nd" => {
                    let percents: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
                    sweep_nd_percent_stored_cancellable(
                        config,
                        &percents,
                        &store,
                        Some(reg),
                        Some(cancel),
                    )
                }
                "procs" => {
                    let p = config.app.procs;
                    sweep_procs_stored_cancellable(
                        config,
                        &[(p / 2).max(2), p, p * 2],
                        &store,
                        Some(reg),
                        Some(cancel),
                    )
                }
                "iterations" => sweep_iterations_stored_cancellable(
                    config,
                    &[1, 2, 4],
                    &store,
                    Some(reg),
                    Some(cancel),
                ),
                other => return JobOutcome::Failed(format!("unknown sweep kind '{other}'")),
            };
            match swept {
                Ok(sweep) => sweep_text(&sweep),
                Err(Interrupted::Cancelled { .. }) => return JobOutcome::Cancelled,
                Err(Interrupted::Failed(e)) => return JobOutcome::Failed(e.to_string()),
            }
        }
        JobSpec::Explore {
            config,
            budget,
            brute_force,
        } => {
            let mut xcfg = ExploreConfig::with_budget(*budget);
            if *brute_force {
                xcfg = xcfg.brute_force();
            }
            let result = match run_campaign_incremental_cancellable(
                config,
                &store,
                Some(reg),
                None,
                0,
                Some(cancel),
            ) {
                Ok(r) => r,
                Err(Interrupted::Cancelled { .. }) => return JobOutcome::Cancelled,
                Err(Interrupted::Failed(e)) => return JobOutcome::Failed(e.to_string()),
            };
            if cancel.is_cancelled() {
                return JobOutcome::Cancelled;
            }
            let xr = match explore_campaign_incremental_observed(config, &xcfg, &store, Some(reg)) {
                Ok(x) => x,
                Err(e) => return JobOutcome::Failed(e.to_string()),
            };
            let coverage = xr.coverage_of(&result);
            let m = NdMeasurement::from_campaign(campaign_label(config), &result);
            let report = RunWithExploreReport {
                measurement: MeasurementReport::from(&m),
                explore: ExploreSection {
                    config: xcfg,
                    stats: xr.report.stats,
                    coverage,
                },
            };
            match to_json(&report) {
                Ok(json) => format!("{json}\n"),
                Err(e) => return JobOutcome::Failed(e.to_string()),
            }
        }
    };
    let activity = store.activity();
    JobOutcome::Done {
        payload,
        hits: activity.hits,
        misses: activity.misses,
        puts: activity.puts,
    }
}

struct TickerSetup {
    writer: Option<SharedWriter>,
    reg: MetricsRegistry,
    id: u64,
    total_runs: u64,
    cancel: CancelToken,
    stop: Arc<AtomicBool>,
    timed_out: Arc<AtomicBool>,
    job_timeout: Option<Duration>,
    interval: Duration,
    start: Instant,
}

/// Stream `Progress` frames from registry deltas while the job runs,
/// and enforce the per-job timeout. Wakes every few milliseconds (so a
/// short timeout fires promptly) but emits at `interval`.
fn spawn_ticker(setup: TickerSetup) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name(format!("serve-progress-{}", setup.id))
        .spawn(move || {
            let TickerSetup {
                writer,
                reg,
                id,
                total_runs,
                cancel,
                stop,
                timed_out,
                job_timeout,
                interval,
                start,
            } = setup;
            let mut prev = reg.report();
            let mut last_emit = Instant::now();
            while !stop.load(Ordering::Acquire) {
                if let Some(limit) = job_timeout {
                    if start.elapsed() > limit && !cancel.is_cancelled() {
                        timed_out.store(true, Ordering::Release);
                        cancel.cancel();
                    }
                }
                if last_emit.elapsed() >= interval {
                    let now = reg.report();
                    let delta = now.delta_since(&prev);
                    let frame = progress_frame(
                        id,
                        total_runs,
                        &now,
                        &delta,
                        last_emit.elapsed(),
                        start.elapsed(),
                    );
                    prev = now;
                    last_emit = Instant::now();
                    if let Some(w) = &writer {
                        if !send(w, &frame) {
                            // The client is unreachable; stop burning
                            // compute on a result nobody will read.
                            cancel.cancel();
                            break;
                        }
                    }
                }
                thread::sleep(Duration::from_millis(5));
            }
        })
        .expect("spawn progress ticker")
}

/// One `Progress` frame from a cumulative report plus the interval
/// delta — the same inputs the local `--progress` line renders from.
fn progress_frame(
    id: u64,
    total_runs: u64,
    report: &MetricsReport,
    delta: &MetricsDelta,
    interval: Duration,
    elapsed: Duration,
) -> Frame {
    let done_runs = report.counter("sim/runs").unwrap_or(0).min(total_runs);
    let events = report.counter("sim/events").unwrap_or(0);
    let interval_events = delta
        .counters
        .iter()
        .find(|c| c.name == "sim/events")
        .map(|c| c.value)
        .unwrap_or(0);
    let secs = interval.as_secs_f64();
    let event_rate = if secs > 0.0 {
        interval_events as f64 / secs
    } else {
        0.0
    };
    let hottest = delta
        .spans
        .iter()
        .max_by_key(|s| s.total_ns)
        .map(|s| s.name.clone())
        .unwrap_or_default();
    let eta_ms = (done_runs > 0 && done_runs < total_runs).then(|| {
        let remaining = elapsed.as_secs_f64() * (total_runs - done_runs) as f64 / done_runs as f64;
        (remaining * 1000.0) as u64
    });
    Frame::Progress {
        id,
        done_runs,
        total_runs,
        events,
        event_rate,
        hottest,
        eta_ms,
    }
}
