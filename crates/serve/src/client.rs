//! A small synchronous client for the campaign service, used by
//! `anacin client`, the benchmark, and the integration tests.
//!
//! One [`Client`] is one connection: connect, exchange `Hello`s, then
//! submit jobs and read frames. The blocking read loop is fine here —
//! a client waiting on a job has nothing better to do — and keeps the
//! client dependency-free.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{Frame, JobSpec, PROTOCOL_SCHEMA};
use crate::server::Stream;
use std::fmt;
use std::io;
use std::path::Path;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed or a frame was malformed.
    Frame(FrameError),
    /// Connecting failed.
    Io(io::Error),
    /// The peer violated the protocol (no Hello, early close, …).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A finished job's `Result` frame, unpacked.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Output byte-identical to the equivalent local CLI invocation.
    pub payload: String,
    /// Server-side execution time (queue wait excluded).
    pub elapsed_ms: u64,
    /// Artifacts read from the shared store.
    pub store_hits: u64,
    /// Artifacts looked up but computed.
    pub store_misses: u64,
    /// Artifacts published.
    pub store_puts: u64,
}

/// How a submitted job ended.
#[derive(Debug)]
pub enum Outcome {
    /// The job ran to completion.
    Done(JobResult),
    /// Admission was refused (queue full or server draining).
    Rejected {
        /// Server-suggested backoff.
        retry_after_ms: u64,
    },
    /// The job failed or was cancelled; `message` says why.
    Failed {
        /// Human-readable cause from the server.
        message: String,
    },
}

/// One connection to a campaign daemon.
pub struct Client {
    reader: Stream,
    writer: Stream,
    schema: u16,
}

impl Client {
    /// Connect over a Unix-domain socket and exchange `Hello`s. `peer`
    /// names this client in server logs.
    pub fn connect_unix(path: impl AsRef<Path>, peer: &str) -> Result<Client, ClientError> {
        Self::handshake(Stream::connect_unix(path.as_ref())?, peer)
    }

    /// Connect over TCP (`host:port`) and exchange `Hello`s.
    pub fn connect_tcp(addr: &str, peer: &str) -> Result<Client, ClientError> {
        Self::handshake(Stream::connect_tcp(addr)?, peer)
    }

    fn handshake(stream: Stream, peer: &str) -> Result<Client, ClientError> {
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: stream,
            writer,
            schema: PROTOCOL_SCHEMA,
        };
        client.send(&Frame::Hello {
            schema: PROTOCOL_SCHEMA,
            peer: peer.to_string(),
        })?;
        match client.recv()? {
            Some(Frame::Hello { schema, .. }) => {
                client.schema = schema.min(PROTOCOL_SCHEMA);
                Ok(client)
            }
            Some(Frame::Error { message, .. }) => Err(ClientError::Protocol(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Hello from server, got {other:?}"
            ))),
        }
    }

    /// The schema both sides agreed on in the `Hello` exchange.
    pub fn schema(&self) -> u16 {
        self.schema
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame(&mut self.writer, frame)?;
        Ok(())
    }

    /// Submit a job under a client-chosen id (unique per connection).
    pub fn submit(&mut self, id: u64, job: JobSpec) -> Result<(), ClientError> {
        self.send(&Frame::Submit { id, job })
    }

    /// Ask the server to stop a queued or running job.
    pub fn cancel(&mut self, id: u64) -> Result<(), ClientError> {
        self.send(&Frame::Cancel { id })
    }

    /// Read the next frame from the server (blocking). `None` means
    /// the server closed the connection.
    pub fn recv(&mut self) -> Result<Option<Frame>, ClientError> {
        Ok(read_frame(&mut self.reader)?)
    }

    /// Submit `job` and block until its terminal frame, invoking
    /// `on_progress` for each `Progress` frame on the way.
    pub fn run(
        &mut self,
        id: u64,
        job: JobSpec,
        on_progress: impl FnMut(&Frame),
    ) -> Result<Outcome, ClientError> {
        self.submit(id, job)?;
        self.wait(id, on_progress)
    }

    /// Submit `job` and block until a terminal frame, retrying refused
    /// admissions up to `retries` times. Each `Busy` answer is followed
    /// by a sleep of the server-suggested `retry_after_ms` before the
    /// job is resubmitted under a fresh id (`id`, `id + 1`, …), so the
    /// backoff is always the server's current suggestion, not a guess.
    /// When every attempt is refused the final `Rejected` outcome is
    /// returned so callers can report how long the server asked for.
    pub fn run_with_retry(
        &mut self,
        id: u64,
        job: JobSpec,
        retries: u32,
        mut on_progress: impl FnMut(&Frame),
    ) -> Result<Outcome, ClientError> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.run(id + attempt as u64, job.clone(), &mut on_progress)?;
            match outcome {
                Outcome::Rejected { retry_after_ms } if attempt < retries => {
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(retry_after_ms));
                }
                other => return Ok(other),
            }
        }
    }

    /// Block until job `id` reaches a terminal frame (`Result`,
    /// `Error`, or `Busy`). Frames about other job ids are skipped, so
    /// callers can interleave jobs and wait for each in turn.
    pub fn wait(
        &mut self,
        id: u64,
        mut on_progress: impl FnMut(&Frame),
    ) -> Result<Outcome, ClientError> {
        loop {
            let frame = match self.recv()? {
                Some(f) => f,
                None => {
                    return Err(ClientError::Protocol(
                        "server closed the connection before the job finished".into(),
                    ))
                }
            };
            match frame {
                Frame::Progress { id: fid, .. } if fid == id => on_progress(&frame),
                Frame::Result {
                    id: fid,
                    payload,
                    elapsed_ms,
                    store_hits,
                    store_misses,
                    store_puts,
                } if fid == id => {
                    return Ok(Outcome::Done(JobResult {
                        payload,
                        elapsed_ms,
                        store_hits,
                        store_misses,
                        store_puts,
                    }))
                }
                Frame::Error { id: fid, message } if fid == id || fid == 0 => {
                    return Ok(Outcome::Failed { message })
                }
                Frame::Busy {
                    id: fid,
                    retry_after_ms,
                } if fid == id => return Ok(Outcome::Rejected { retry_after_ms }),
                _ => {}
            }
        }
    }
}
