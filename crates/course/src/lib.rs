//! # anacin-course
//!
//! The research-based course module itself — the paper's deliverable —
//! encoded as data and executable lessons:
//!
//! * [`levels`] — the three levels and their learning objectives
//!   (paper Table I);
//! * [`prereqs`] — prerequisite knowledge per level (paper Table II);
//! * [`lessons`] — Use Cases 1–3 as *executable* lessons: each runs the
//!   real pipeline and machine-checks the observation students are asked
//!   to make (runs differ at 100% ND; more processes/iterations ⇒ more
//!   ND; the ND% knob is monotone; racy receives top the callstack
//!   ranking);
//! * [`quiz`] — the comprehension questions each use case opens with,
//!   with reference answers.
//!
//! ```
//! use anacin_course::prelude::*;
//!
//! // Table I is data, not prose:
//! assert_eq!(goals_of(Level::Advanced).len(), 2);
//! // And the lessons actually run (scaled down here for speed):
//! let cfg = LessonConfig { procs_small: 4, procs_large: 8, runs: 5, threads: 2 };
//! let report = use_case_1(&cfg);
//! assert!(report.passed());
//! ```

#![warn(missing_docs)]

pub mod exercises;
pub mod lessons;
pub mod levels;
pub mod prereqs;
pub mod quiz;
pub mod related_work;
pub mod tutorial;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::exercises::{by_id as exercise_by_id, Exercise, EXERCISES};
    pub use crate::lessons::{
        run_all, use_case_1, use_case_2, use_case_3, use_case_4, Check, LessonConfig, LessonReport,
    };
    pub use crate::levels::{goals_of, table_i, Goal, Level, GOALS};
    pub use crate::prereqs::{prereqs_of, table_ii, Prerequisite, PREREQUISITES};
    pub use crate::quiz::{questions_of, Question, QUESTIONS};
    pub use crate::related_work::{comparison, Tool, TOOLS};
    pub use crate::tutorial::{agenda, total_minutes, Session, HALF_DAY};
}

pub use lessons::{LessonConfig, LessonReport};
pub use levels::Level;
