//! The half-day tutorial plan.
//!
//! The paper positions the module as usable "as part of a parallel
//! computing course or as a half-day tutorial" (§V). This module encodes
//! a runnable tutorial agenda: timed sessions, each tied to a level, its
//! goals, the commands the audience runs, and the observation they should
//! walk away with. `anacin course` prints it; instructors can re-time it.

use crate::levels::Level;
use serde::Serialize;
use std::fmt;

/// One timed tutorial session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Session {
    /// Session title.
    pub title: &'static str,
    /// Level the session teaches.
    pub level: Level,
    /// Goals covered (paper Table I ids).
    pub goals: &'static [&'static str],
    /// Duration in minutes.
    pub minutes: u32,
    /// Hands-on commands the audience runs.
    pub commands: &'static [&'static str],
    /// The observation the session must land.
    pub takeaway: &'static str,
}

/// The default half-day (≈ 3.5 h) agenda.
pub const HALF_DAY: [Session; 6] = [
    Session {
        title: "Message passing and event graphs",
        level: Level::Beginner,
        goals: &["A.1"],
        minutes: 40,
        commands: &[
            "anacin graph --pattern race --procs 4",
            "anacin graph --pattern amg2013 --procs 2 --format svg --out fig3.svg",
            "anacin inspect --pattern mesh --procs 8",
        ],
        takeaway: "an execution is a graph: MPI calls are nodes, program order and \
                   messages are edges",
    },
    Session {
        title: "Seeing non-determinism",
        level: Level::Beginner,
        goals: &["A.2"],
        minutes: 30,
        commands: &[
            "anacin graph --pattern race --procs 4 --nd 100 --seed 1",
            "anacin graph --pattern race --procs 4 --nd 100 --seed 3",
            "anacin diff --pattern race --procs 4 --seed-a 1 --seed-b 3",
        ],
        takeaway: "same code, same input, different message orders — that is \
                   communication non-determinism",
    },
    Session {
        title: "Measuring it: kernel distances",
        level: Level::Intermediate,
        goals: &["B.1"],
        minutes: 35,
        commands: &[
            "anacin distance --pattern race --procs 8",
            "anacin run --pattern mesh --procs 16 --runs 20",
            "anacin run --pattern mesh --procs 32 --runs 20",
        ],
        takeaway: "the kernel distance between event graphs is a scalar proxy for \
                   non-determinism; more processes ⇒ larger distances",
    },
    Session {
        title: "What makes it worse",
        level: Level::Intermediate,
        goals: &["B.2"],
        minutes: 30,
        commands: &[
            "anacin sweep --kind iterations --pattern mesh --procs 16 --runs 10",
            "anacin reduction --procs 16 --runs 20",
        ],
        takeaway: "iterations accumulate non-determinism, and arrival-order \
                   reductions turn it into different numerical results",
    },
    Session {
        title: "Controlling the knob",
        level: Level::Advanced,
        goals: &["C.1"],
        minutes: 35,
        commands: &[
            "anacin sweep --kind nd --pattern amg2013 --procs 16 --runs 10",
            "anacin figure 7",
        ],
        takeaway: "the fraction of delay-prone messages directly controls the \
                   measured amount of non-determinism (monotone trend)",
    },
    Session {
        title: "Finding the root source",
        level: Level::Advanced,
        goals: &["C.2"],
        minutes: 40,
        commands: &[
            "anacin root-cause --pattern amg2013 --procs 16 --runs 10",
            "anacin exercise fix-the-deadlock --solve",
            "anacin replay --pattern mesh --procs 8",
        ],
        takeaway: "slice the event graphs, rank call paths in divergent windows — \
                   the wildcard receives are the root sources; replay pins them",
    },
];

/// Total scheduled minutes.
pub fn total_minutes() -> u32 {
    HALF_DAY.iter().map(|s| s.minutes).sum()
}

impl fmt::Display for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{} min, level {}, goals {}]",
            self.title,
            self.minutes,
            self.level.code(),
            self.goals.join(", ")
        )?;
        for c in self.commands {
            writeln!(f, "    $ {c}")?;
        }
        writeln!(f, "    ⇒ {}", self.takeaway)
    }
}

/// Render the whole agenda.
pub fn agenda() -> String {
    let mut s = format!(
        "Half-day tutorial agenda ({} sessions, {} minutes + breaks)\n\n",
        HALF_DAY.len(),
        total_minutes()
    );
    for (i, session) in HALF_DAY.iter().enumerate() {
        s.push_str(&format!("{}. {session}\n", i + 1));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::goals_of;

    #[test]
    fn fits_a_half_day() {
        let t = total_minutes();
        assert!((180..=240).contains(&t), "total {t} minutes");
    }

    #[test]
    fn covers_every_goal() {
        let covered: std::collections::HashSet<&str> = HALF_DAY
            .iter()
            .flat_map(|s| s.goals.iter().copied())
            .collect();
        for level in Level::ALL {
            for g in goals_of(level) {
                assert!(covered.contains(g.id), "goal {} uncovered", g.id);
            }
        }
    }

    #[test]
    fn levels_appear_in_order() {
        let order: Vec<char> = HALF_DAY.iter().map(|s| s.level.code()).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "sessions must progress A → B → C");
    }

    #[test]
    fn agenda_renders_commands() {
        let a = agenda();
        assert!(a.contains("anacin root-cause"));
        assert!(a.contains("⇒"));
        assert!(a.contains("Half-day tutorial agenda"));
    }

    #[test]
    fn every_session_has_commands_and_takeaway() {
        for s in &HALF_DAY {
            assert!(!s.commands.is_empty());
            assert!(!s.takeaway.is_empty());
            assert!(s.minutes >= 20);
        }
    }
}
