//! The related-work landscape (paper §IV), encoded as data.
//!
//! Students finishing the advanced level should know *which tool to reach
//! for*: record/replay suppresses non-determinism, crash miners need a
//! crash, motif learners need motifs, ANACIN-X measures and localises.
//! The CLI prints this table; the `capability` flags let course material
//! quiz students on tool selection.

use serde::Serialize;
use std::fmt;

/// What a tool in this space can do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Capabilities {
    /// Measures *how much* non-determinism an execution exhibits.
    pub measures_amount: bool,
    /// Localises root sources in the code.
    pub finds_root_sources: bool,
    /// Temporarily suppresses non-determinism (reproducibility aid).
    pub suppresses_nd: bool,
    /// Works when the bug does not crash the application.
    pub works_without_crash: bool,
    /// Visualises communication structure.
    pub visualises: bool,
}

/// One tool in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Tool {
    /// Tool name.
    pub name: &'static str,
    /// One-line description (paper §IV).
    pub approach: &'static str,
    /// What it can do.
    pub capabilities: Capabilities,
    /// Where this repository implements or models the idea, if it does.
    pub in_this_repo: Option<&'static str>,
}

/// The comparison table of paper §IV.
pub const TOOLS: [Tool; 4] = [
    Tool {
        name: "ANACIN-X",
        approach: "event graphs + kernel distances to measure non-determinism and rank \
                   root-source call paths",
        capabilities: Capabilities {
            measures_amount: true,
            finds_root_sources: true,
            suppresses_nd: false,
            works_without_crash: true,
            visualises: true,
        },
        in_this_repo: Some("the whole toolkit (anacin-core et al.)"),
    },
    Tool {
        name: "ReMPI",
        approach: "record-and-replay of message matching; suppresses non-determinism to \
                   temporarily improve reproducibility",
        capabilities: Capabilities {
            measures_amount: false,
            finds_root_sources: false,
            suppresses_nd: true,
            works_without_crash: true,
            visualises: false,
        },
        in_this_repo: Some("anacin_mpisim::replay (`anacin record` / `anacin replay`)"),
    },
    Tool {
        name: "PopMine",
        approach: "graph mining over executions to expose bug-triggering conditions behind \
                   software crashes",
        capabilities: Capabilities {
            measures_amount: false,
            finds_root_sources: true,
            suppresses_nd: false,
            works_without_crash: false,
            visualises: false,
        },
        in_this_repo: None,
    },
    Tool {
        name: "SABALAN",
        approach: "learns hierarchical communication-motif models from execution traces",
        capabilities: Capabilities {
            measures_amount: false,
            finds_root_sources: true,
            suppresses_nd: false,
            works_without_crash: true,
            visualises: false,
        },
        in_this_repo: None,
    },
];

impl fmt::Display for Tool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.capabilities;
        let tick = |b: bool| if b { "yes" } else { "no" };
        writeln!(f, "{}: {}", self.name, self.approach)?;
        writeln!(
            f,
            "    measures amount: {:>3} | root sources: {:>3} | suppresses ND: {:>3} | \
             no-crash bugs: {:>3} | visualises: {:>3}",
            tick(c.measures_amount),
            tick(c.finds_root_sources),
            tick(c.suppresses_nd),
            tick(c.works_without_crash),
            tick(c.visualises)
        )?;
        if let Some(w) = self.in_this_repo {
            writeln!(f, "    in this repo: {w}")?;
        }
        Ok(())
    }
}

/// Render the whole comparison.
pub fn comparison() -> String {
    let mut s = String::from("Related work (paper §IV): tools for non-determinism\n\n");
    for t in &TOOLS {
        s.push_str(&t.to_string());
        s.push('\n');
    }
    s.push_str(
        "ANACIN-X is used in this course because it evaluates root sources in\n\
         non-crashing applications without being limited to motifs, and because it\n\
         visualises multiple aspects of non-determinism (paper §IV).\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_tools_with_anacin_first() {
        assert_eq!(TOOLS.len(), 4);
        assert_eq!(TOOLS[0].name, "ANACIN-X");
    }

    #[test]
    fn capability_matrix_matches_the_papers_argument() {
        let by_name = |n: &str| TOOLS.iter().find(|t| t.name == n).unwrap();
        // The paper's §IV claims, verbatim as capability bits:
        let rempi = by_name("ReMPI");
        assert!(rempi.capabilities.suppresses_nd);
        assert!(!rempi.capabilities.measures_amount);
        let popmine = by_name("PopMine");
        assert!(
            !popmine.capabilities.works_without_crash,
            "PopMine is ineffective when the bug does not crash (paper §IV)"
        );
        let anacin = by_name("ANACIN-X");
        assert!(anacin.capabilities.works_without_crash);
        assert!(anacin.capabilities.measures_amount);
        assert!(anacin.capabilities.visualises);
    }

    #[test]
    fn replay_claim_is_implemented_here() {
        let rempi = TOOLS.iter().find(|t| t.name == "ReMPI").unwrap();
        assert!(rempi.in_this_repo.unwrap().contains("replay"));
    }

    #[test]
    fn comparison_renders() {
        let c = comparison();
        for t in &TOOLS {
            assert!(c.contains(t.name));
        }
        assert!(c.contains("suppresses ND"));
    }
}
