//! The use cases as *executable lessons* (the paper's three, plus an
//! extension lesson on consequences and remedies).
//!
//! Each lesson runs the real pipeline (simulate → event graph → kernel
//! distance → visualise) and machine-checks the observation the paper asks
//! students to make, so an instructor can verify the course material
//! reproduces on their machine with one command.

use anacin_core::prelude::*;
use anacin_event_graph::EventGraph;
use anacin_kernels::prelude::{distance, WlKernel};
use anacin_miniapps::{MiniAppConfig, Pattern};
use anacin_mpisim::prelude::*;
use anacin_stats::prelude::*;
use anacin_viz::ascii;
use serde::{Deserialize, Serialize};

/// Scale knobs for the lessons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LessonConfig {
    /// The "small" process count (paper: 16).
    pub procs_small: u32,
    /// The "large" process count (paper: 32).
    pub procs_large: u32,
    /// Runs per setting (paper: 20).
    pub runs: u32,
    /// Worker threads.
    pub threads: usize,
}

impl Default for LessonConfig {
    fn default() -> Self {
        LessonConfig {
            procs_small: 8,
            procs_large: 16,
            runs: 10,
            threads: default_threads(),
        }
    }
}

impl LessonConfig {
    /// The paper's scale: 16/32 processes, 20 runs.
    pub fn paper_scale() -> Self {
        LessonConfig {
            procs_small: 16,
            procs_large: 32,
            runs: 20,
            threads: default_threads(),
        }
    }
}

/// One machine-checked observation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Check {
    /// What the student is asked to observe.
    pub name: String,
    /// Whether the toolkit observed it too.
    pub passed: bool,
    /// Supporting detail.
    pub detail: String,
}

/// The output of running a lesson.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LessonReport {
    /// Use-case number (1–4).
    pub use_case: u8,
    /// Title of the lesson.
    pub title: String,
    /// Rendered narrative, including ASCII figures.
    pub narrative: String,
    /// The machine-checked observations.
    pub checks: Vec<Check>,
}

impl LessonReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

fn check(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Check {
    Check {
        name: name.into(),
        passed,
        detail: detail.into(),
    }
}

/// Use Case 1 (beginner): distributed computing and non-determinism.
///
/// Reproduces Figures 2–4: event graphs of the message race and small AMG
/// patterns, and two 100%-ND runs of the race with different match orders.
pub fn use_case_1(cfg: &LessonConfig) -> LessonReport {
    let mut narrative = String::new();
    let mut checks = Vec::new();

    // Goal A.1 — Figure 2: message race on 4 processes.
    let race = Pattern::MessageRace.build(&MiniAppConfig::with_procs(4));
    let t = simulate(&race, &SimConfig::deterministic()).expect("race completes");
    let g = EventGraph::from_trace(&t);
    narrative.push_str("Figure 2 — message race on 4 MPI processes:\n");
    narrative.push_str(&ascii::event_graph_lanes(&g));
    checks.push(check(
        "Goal A.1: three senders target one receiving process",
        g.match_order(Rank(0)).len() == 3,
        format!("rank 0 received {} messages", g.match_order(Rank(0)).len()),
    ));

    // Goal A.1 — Figure 3: AMG 2013 on 2 processes.
    let amg = Pattern::Amg2013.build(&MiniAppConfig::with_procs(2));
    let t_amg = simulate(&amg, &SimConfig::deterministic()).expect("amg completes");
    let g_amg = EventGraph::from_trace(&t_amg);
    narrative.push_str("\nFigure 3 — AMG 2013 pattern on 2 MPI processes:\n");
    narrative.push_str(&ascii::event_graph_lanes(&g_amg));
    checks.push(check(
        "Goal A.1: each process sends to the other twice (asynchronously)",
        t_amg.meta.messages == 4,
        format!("{} messages exchanged", t_amg.meta.messages),
    ));

    // Goal A.2 — Figure 4: two 100%-ND runs with different match orders.
    let race8 = Pattern::MessageRace.build(&MiniAppConfig::with_procs(4));
    let base = simulate(&race8, &SimConfig::with_nd_percent(100.0, 1)).expect("run a");
    let mut diff_seed = None;
    for seed in 2..200 {
        let other = simulate(&race8, &SimConfig::with_nd_percent(100.0, seed)).expect("run b");
        if other.match_order(Rank(0)) != base.match_order(Rank(0)) {
            diff_seed = Some((seed, other));
            break;
        }
    }
    match diff_seed {
        Some((seed, other)) => {
            narrative.push_str(&format!(
                "\nFigure 4 — the same code and inputs, two independent runs (seeds 1 and {seed}):\n\
                 \nrun (a):\n{}\nrun (b):\n{}",
                ascii::event_graph_lanes(&EventGraph::from_trace(&base)),
                ascii::event_graph_lanes(&EventGraph::from_trace(&other)),
            ));
            checks.push(check(
                "Goal A.2: the runs' messages arrive in different orders",
                true,
                format!(
                    "match orders {:?} vs {:?}",
                    base.match_order(Rank(0)),
                    other.match_order(Rank(0))
                ),
            ));
        }
        None => checks.push(check(
            "Goal A.2: the runs' messages arrive in different orders",
            false,
            "no differing run found in 200 seeds".to_string(),
        )),
    }
    let _ = cfg;
    LessonReport {
        use_case: 1,
        title: "Use Case 1: Distributed Computing and Non-determinism".to_string(),
        narrative,
        checks,
    }
}

/// Use Case 2 (intermediate): factors that impact non-determinism.
///
/// Reproduces Figures 5 and 6 with the unstructured-mesh pattern at 100%
/// ND: more processes ⇒ more ND, more iterations ⇒ more ND.
pub fn use_case_2(cfg: &LessonConfig) -> LessonReport {
    let mut narrative = String::new();
    let mut checks = Vec::new();

    // Goal B.1 — Figure 5: process scaling.
    let base = CampaignConfig::new(Pattern::UnstructuredMesh, cfg.procs_small).runs(cfg.runs);
    let sweep = sweep_procs(&base, &[cfg.procs_small, cfg.procs_large]).expect("sweep runs");
    let vs: Vec<ViolinSummary> = sweep
        .points
        .iter()
        .filter_map(|p| p.measurement.violin())
        .collect();
    narrative.push_str(&format!(
        "Figure 5 — kernel distances for {} executions of Unstructured Mesh:\n{}",
        cfg.runs,
        ascii::violins(&vs, 40)
    ));
    let small = &sweep.points[0].measurement;
    let large = &sweep.points[1].measurement;
    checks.push(check(
        "Goal B.1: more processes => more non-determinism",
        large.summary.median > small.summary.median
            && large.significantly_greater_than(small, 0.05),
        format!(
            "median {} procs = {:.4}, median {} procs = {:.4}",
            cfg.procs_large, large.summary.median, cfg.procs_small, small.summary.median
        ),
    ));

    // Goal B.2 — Figure 6: iteration scaling on the small process count.
    let sweep_it = sweep_iterations(&base, &[1, 2]).expect("sweep runs");
    let vs_it: Vec<ViolinSummary> = sweep_it
        .points
        .iter()
        .filter_map(|p| p.measurement.violin())
        .collect();
    narrative.push_str(&format!(
        "\nFigure 6 — effect of communication-pattern iterations ({} processes):\n{}",
        cfg.procs_small,
        ascii::violins(&vs_it, 40)
    ));
    let one = &sweep_it.points[0].measurement;
    let two = &sweep_it.points[1].measurement;
    checks.push(check(
        "Goal B.2: more iterations => more accumulated non-determinism",
        two.summary.median > one.summary.median && two.significantly_greater_than(one, 0.05),
        format!(
            "median 2 iters = {:.4}, median 1 iter = {:.4}",
            two.summary.median, one.summary.median
        ),
    ));

    LessonReport {
        use_case: 2,
        title: "Use Case 2: Factors that Impact Non-determinism".to_string(),
        narrative,
        checks,
    }
}

/// Use Case 3 (advanced): root sources of non-determinism.
///
/// Reproduces Figures 7 and 8 with the AMG 2013 pattern: the injected ND
/// percentage controls the measured kernel distance monotonically, and the
/// callstack analysis surfaces the wildcard-receive call paths.
pub fn use_case_3(cfg: &LessonConfig) -> LessonReport {
    let mut narrative = String::new();
    let mut checks = Vec::new();

    // Goal C.1 — Figure 7: ND% sweep.
    let base = CampaignConfig::new(Pattern::Amg2013, cfg.procs_small.min(8)).runs(cfg.runs);
    let percents: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
    let sweep = sweep_nd_percent(&base, &percents).expect("sweep runs");
    narrative.push_str(&format!(
        "Figure 7 — kernel distance vs percentage of non-determinism (AMG 2013):\n{}",
        ascii::series_table(&sweep.mean_series(), "nd %", "kernel distance")
    ));
    // The claim is "the percentage directly controls the amount": zero at
    // 0%, positive once the knob opens, and rising-then-plateau without
    // significant dips. (Rank correlation over the saturated plateau is
    // tie-noise at classroom sample sizes; the paper-scale fig7 binary
    // also reports Spearman rho = 0.98.)
    let at_zero = sweep.points[0].measurement.mean();
    let at_ten = sweep.points[1].measurement.mean();
    let monotone = sweep.is_monotone_within(0.05);
    checks.push(check(
        "Goal C.1: injected ND% directly controls measured non-determinism",
        at_zero == 0.0 && at_ten > 0.0 && monotone,
        format!(
            "distance at 0% = {at_zero:.4}, at 10% = {at_ten:.4}; curve monotone within 5%:              {monotone} (Spearman rho = {:.3})",
            sweep.spearman_monotonicity()
        ),
    ));

    // Goal C.2 — Figure 8: callstack ranking at 100% ND.
    let campaign = run_campaign(&base.clone().nd_percent(100.0)).expect("campaign runs");
    let ranking = analyze(&campaign, &RootCauseConfig::default());
    let items: Vec<(String, f64)> = ranking
        .entries
        .iter()
        .take(6)
        .map(|e| (e.stack.clone(), e.frequency))
        .collect();
    narrative.push_str(&format!(
        "\nFigure 8 — callstacks active in high-non-determinism regions:\n{}",
        ascii::bar_chart(&items, 40)
    ));
    let top_is_wildcard_recv = ranking
        .top()
        .map(|t| t.leaf.contains("Recv") || t.leaf.contains("Irecv"))
        .unwrap_or(false);
    checks.push(check(
        "Goal C.2: the top-ranked call paths are the racy receives",
        top_is_wildcard_recv,
        ranking
            .top()
            .map(|t| format!("top path: {} (freq {:.3})", t.stack, t.frequency))
            .unwrap_or_else(|| "no callstacks ranked".to_string()),
    ));

    LessonReport {
        use_case: 3,
        title: "Use Case 3: Root Sources of Non-determinism".to_string(),
        narrative,
        checks,
    }
}

/// Use Case 4 (extension): from non-determinism to irreproducible
/// science, and back.
///
/// Beyond the paper's three use cases: demonstrates (a) the numerical
/// consequence of match-order non-determinism (the Enzo phenomenon the
/// paper's introduction motivates with) and (b) its two remedies —
/// canonical reduction orders and ReMPI-style record/replay.
pub fn use_case_4(cfg: &LessonConfig) -> LessonReport {
    use anacin_numerics::prelude::*;
    let mut narrative = String::new();
    let mut checks = Vec::new();

    // (a) Irreproducible reductions.
    // Floors: with fewer than ~11 contributors (or few runs) the sequential
    // f32 sums can coincide bitwise across every arrival order, making the
    // irreproducibility demonstration vacuous at reduced lesson scales.
    let exp = ReductionExperiment {
        procs: cfg.procs_small.max(12),
        runs: cfg.runs.max(12),
        ..Default::default()
    };
    let report = anacin_numerics::run(&exp);
    narrative.push_str(&format!(
        "Reduction reproducibility over {} runs ({} contributors):\n",
        exp.runs,
        exp.procs - 1
    ));
    for o in &report.outcomes {
        narrative.push_str(&format!(
            "  {:>14}: {} distinct result(s), spread {:.3e}\n",
            o.algorithm, o.distinct, o.spread
        ));
    }
    let seq = report.outcome(Reduction::Sequential);
    let sorted = report.outcome(Reduction::Sorted);
    checks.push(check(
        "arrival-order reductions are irreproducible across runs",
        seq.distinct > 1,
        format!("{} distinct sequential sums", seq.distinct),
    ));
    checks.push(check(
        "canonical (sorted) reduction order restores bitwise reproducibility",
        sorted.distinct == 1,
        format!("{} distinct sorted sums", sorted.distinct),
    ));

    // (b) Record/replay pins the communication itself.
    let program = Pattern::UnstructuredMesh.build(&MiniAppConfig::with_procs(cfg.procs_small));
    let reference =
        simulate(&program, &SimConfig::with_nd_percent(100.0, 42)).expect("reference run");
    let record = MatchRecord::from_trace(&reference);
    let g_ref = EventGraph::from_trace(&reference);
    let kernel = WlKernel::default();
    let mut max_replay: f64 = 0.0;
    let mut max_free: f64 = 0.0;
    for seed in 100..(100 + cfg.runs as u64) {
        let sim = SimConfig::with_nd_percent(100.0, seed);
        let free = simulate(&program, &sim).expect("free run");
        let replayed = simulate_replay(&program, &sim, &record).expect("replayed run");
        max_free = max_free.max(distance(&kernel, &g_ref, &EventGraph::from_trace(&free)));
        max_replay = max_replay.max(distance(
            &kernel,
            &g_ref,
            &EventGraph::from_trace(&replayed),
        ));
    }
    narrative.push_str(&format!(
        "\nRecord/replay: free runs reach kernel distance {max_free:.3}; replayed runs stay          at {max_replay:.3}.\n"
    ));
    checks.push(check(
        "replaying recorded match decisions suppresses all communication ND",
        max_replay == 0.0 && max_free > 0.0,
        format!("max free {max_free:.3}, max replayed {max_replay:.3}"),
    ));

    LessonReport {
        use_case: 4,
        title: "Use Case 4 (extension): Consequences and Remedies".to_string(),
        narrative,
        checks,
    }
}

/// Run every lesson (the paper's three use cases plus the extension).
pub fn run_all(cfg: &LessonConfig) -> Vec<LessonReport> {
    vec![
        use_case_1(cfg),
        use_case_2(cfg),
        use_case_3(cfg),
        use_case_4(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LessonConfig {
        LessonConfig {
            procs_small: 6,
            procs_large: 12,
            runs: 8,
            threads: 4,
        }
    }

    #[test]
    fn use_case_1_passes() {
        let r = use_case_1(&tiny());
        assert_eq!(r.use_case, 1);
        assert!(r.passed(), "failed checks: {:?}", r.checks);
        assert!(r.narrative.contains("Figure 2"));
        assert!(r.narrative.contains("Figure 4"));
    }

    #[test]
    fn use_case_2_passes() {
        let r = use_case_2(&tiny());
        assert!(r.passed(), "failed checks: {:?}", r.checks);
        assert!(r.narrative.contains("Figure 5"));
        assert!(r.narrative.contains("Figure 6"));
    }

    #[test]
    fn use_case_3_passes() {
        let r = use_case_3(&tiny());
        assert!(r.passed(), "failed checks: {:?}", r.checks);
        assert!(r.narrative.contains("Figure 7"));
        assert!(r.narrative.contains("Figure 8"));
    }

    #[test]
    fn use_case_4_passes() {
        let r = use_case_4(&tiny());
        assert!(r.passed(), "failed checks: {:?}", r.checks);
        assert!(r.narrative.contains("Record/replay"));
        assert_eq!(r.use_case, 4);
    }
}
