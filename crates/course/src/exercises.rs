//! Graded exercises: students write *programs* (via the builder DSL) and
//! the toolkit checks the required property automatically.
//!
//! Each exercise provides a `check` function over a student-submitted
//! [`Program`] and a reference solution the instructor can reveal. The
//! checkers run real simulations, so a submission passes exactly when it
//! exhibits the behaviour the exercise teaches.

use anacin_event_graph::EventGraph;
use anacin_kernels::prelude::*;
use anacin_mpisim::engine::SimError;
use anacin_mpisim::prelude::*;

use crate::levels::Level;

/// An exercise's identity and statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exercise {
    /// Stable identifier, e.g. "write-a-race".
    pub id: &'static str,
    /// Course level the exercise belongs to.
    pub level: Level,
    /// The task statement given to students.
    pub prompt: &'static str,
}

/// The exercise catalogue.
pub const EXERCISES: [Exercise; 4] = [
    Exercise {
        id: "write-a-race",
        level: Level::Beginner,
        prompt: "Write a 4-process program whose communication pattern differs across runs \
                 at 100% non-determinism (hint: MPI_ANY_SOURCE).",
    },
    Exercise {
        id: "make-it-deterministic",
        level: Level::Intermediate,
        prompt: "Ranks 1..3 must each deliver one message to rank 0, but every run at 100% \
                 non-determinism must produce the identical communication pattern (hint: \
                 name your sources).",
    },
    Exercise {
        id: "fix-the-deadlock",
        level: Level::Advanced,
        prompt: "Two ranks must exchange one synchronous-capable message each without \
                 deadlocking, even though ssend blocks until matched (hint: MPI_Sendrecv, \
                 or order the calls).",
    },
    Exercise {
        id: "bound-the-race",
        level: Level::Advanced,
        prompt: "Rank 0 must receive from all of ranks 1..3 with wildcard receives, yet the \
                 kernel distance across runs must stay zero (hint: tags can impose order \
                 even when sources are wildcarded).",
    },
];

/// Look up an exercise by id.
pub fn by_id(id: &str) -> Option<&'static Exercise> {
    EXERCISES.iter().find(|e| e.id == id)
}

fn wl_fingerprints(program: &Program, seeds: std::ops::Range<u64>) -> Result<Vec<u64>, String> {
    let k = WlKernel::default();
    let mut prints = Vec::new();
    for seed in seeds {
        let t = simulate(program, &SimConfig::with_nd_percent(100.0, seed))
            .map_err(|e| format!("run failed: {e}"))?;
        if t.meta.unmatched_messages > 0 {
            return Err(format!(
                "{} message(s) were never received",
                t.meta.unmatched_messages
            ));
        }
        let g = EventGraph::from_trace(&t);
        // Hash the feature vector to a fingerprint.
        let f = k.features(&g);
        let mut items: Vec<(u64, u64)> = f.iter().map(|(id, w)| (id, w as u64)).collect();
        items.sort_unstable();
        let words: Vec<u64> = items.iter().flat_map(|&(a, b)| [a, b]).collect();
        prints.push(anacin_event_graph::label::fnv1a_words(&words));
    }
    Ok(prints)
}

/// Check "write-a-race": at least two distinct communication patterns
/// over 20 seeds.
pub fn check_write_a_race(program: &Program) -> Result<(), String> {
    if program.world_size() != 4 {
        return Err(format!(
            "program must use 4 processes, found {}",
            program.world_size()
        ));
    }
    let prints = wl_fingerprints(program, 0..20)?;
    let distinct: std::collections::HashSet<_> = prints.iter().collect();
    if distinct.len() < 2 {
        return Err(
            "all 20 runs produced the identical communication pattern — \
                    no race present"
                .to_string(),
        );
    }
    Ok(())
}

/// Reference solution for "write-a-race".
pub fn solve_write_a_race() -> Program {
    let mut b = ProgramBuilder::new(4);
    for r in 1..4 {
        b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
    }
    for _ in 1..4 {
        b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
    }
    b.build()
}

/// Check "make-it-deterministic": 3 messages into rank 0 and identical
/// runs across seeds at 100% ND.
pub fn check_make_it_deterministic(program: &Program) -> Result<(), String> {
    if program.total_sends() != 3 {
        return Err(format!(
            "expected exactly 3 messages, found {}",
            program.total_sends()
        ));
    }
    let prints = wl_fingerprints(program, 0..15)?;
    let distinct: std::collections::HashSet<_> = prints.iter().collect();
    if distinct.len() != 1 {
        return Err(format!(
            "runs still differ ({} distinct patterns over 15 seeds)",
            distinct.len()
        ));
    }
    Ok(())
}

/// Reference solution for "make-it-deterministic": name the sources.
pub fn solve_make_it_deterministic() -> Program {
    let mut b = ProgramBuilder::new(4);
    for r in 1..4 {
        b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
    }
    for r in 1..4 {
        b.rank(Rank(0)).recv(Rank(r), Tag(0).into());
    }
    b.build()
}

/// Check "fix-the-deadlock": a 2-rank program exchanging ≥1 message each
/// way that completes.
pub fn check_fix_the_deadlock(program: &Program) -> Result<(), String> {
    if program.world_size() != 2 {
        return Err("program must use exactly 2 processes".to_string());
    }
    if program.total_sends() < 2 {
        return Err("each rank must send at least one message".to_string());
    }
    match simulate(program, &SimConfig::with_nd_percent(100.0, 1)) {
        Ok(t) if t.meta.unmatched_messages == 0 => Ok(()),
        Ok(t) => Err(format!(
            "{} unmatched message(s)",
            t.meta.unmatched_messages
        )),
        Err(SimError::Deadlock(r)) => Err(format!("still deadlocks: {r}")),
        Err(e) => Err(e.to_string()),
    }
}

/// Reference solution for "fix-the-deadlock": the sendrecv idiom.
pub fn solve_fix_the_deadlock() -> Program {
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0)).sendrecv(Rank(1), Rank(1), Tag(0), 8);
    b.rank(Rank(1)).sendrecv(Rank(0), Rank(0), Tag(0), 8);
    b.build()
}

/// The intentionally broken starting point for "fix-the-deadlock".
pub fn broken_fix_the_deadlock() -> Program {
    let mut b = ProgramBuilder::new(2);
    b.rank(Rank(0))
        .ssend(Rank(1), Tag(0), 8)
        .recv(Rank(1), Tag(0).into());
    b.rank(Rank(1))
        .ssend(Rank(0), Tag(0), 8)
        .recv(Rank(0), Tag(0).into());
    b.build()
}

/// Check "bound-the-race": wildcard sources, yet zero kernel distance.
pub fn check_bound_the_race(program: &Program) -> Result<(), String> {
    let uses_wildcard = (0..program.world_size()).any(|r| {
        program
            .ops(Rank(r))
            .iter()
            .any(|op| op.is_wildcard_receive())
    });
    if !uses_wildcard {
        return Err("the receives must keep MPI_ANY_SOURCE".to_string());
    }
    if program.total_sends() != 3 {
        return Err(format!(
            "expected exactly 3 messages, found {}",
            program.total_sends()
        ));
    }
    let prints = wl_fingerprints(program, 0..15)?;
    let distinct: std::collections::HashSet<_> = prints.iter().collect();
    if distinct.len() != 1 {
        return Err(format!(
            "runs still differ ({} distinct patterns over 15 seeds)",
            distinct.len()
        ));
    }
    Ok(())
}

/// Reference solution for "bound-the-race": distinct tags serialise the
/// wildcard receives (tag matching imposes the order sources cannot).
pub fn solve_bound_the_race() -> Program {
    let mut b = ProgramBuilder::new(4);
    for r in 1..4u32 {
        b.rank(Rank(r)).send(Rank(0), Tag(r as i32), 1);
    }
    for r in 1..4i32 {
        b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(r)));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_lookup() {
        assert_eq!(EXERCISES.len(), 4);
        assert!(by_id("write-a-race").is_some());
        assert!(by_id("nope").is_none());
        for e in &EXERCISES {
            assert!(!e.prompt.is_empty());
        }
    }

    #[test]
    fn reference_solutions_pass() {
        check_write_a_race(&solve_write_a_race()).unwrap();
        check_make_it_deterministic(&solve_make_it_deterministic()).unwrap();
        check_fix_the_deadlock(&solve_fix_the_deadlock()).unwrap();
        check_bound_the_race(&solve_bound_the_race()).unwrap();
    }

    #[test]
    fn wrong_solutions_fail_with_helpful_messages() {
        // A deterministic program is not a race.
        let err = check_write_a_race(&solve_make_it_deterministic()).unwrap_err();
        assert!(err.contains("identical communication pattern"), "{err}");
        // A racy program is not deterministic.
        let err = check_make_it_deterministic(&solve_write_a_race()).unwrap_err();
        assert!(err.contains("runs still differ"), "{err}");
        // The broken exchange still deadlocks.
        let err = check_fix_the_deadlock(&broken_fix_the_deadlock()).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
        // Dropping the wildcards fails the bounded-race exercise.
        let err = check_bound_the_race(&solve_make_it_deterministic()).unwrap_err();
        assert!(err.contains("MPI_ANY_SOURCE"), "{err}");
        // And a plain race fails it too (still non-deterministic).
        let err = check_bound_the_race(&solve_write_a_race()).unwrap_err();
        assert!(err.contains("runs still differ"), "{err}");
    }

    #[test]
    fn world_size_checks() {
        let mut b = ProgramBuilder::new(3);
        b.rank(Rank(1)).send(Rank(0), Tag(0), 1);
        b.rank(Rank(0)).recv_any(TagSpec::Any);
        let p = b.build();
        assert!(check_write_a_race(&p).unwrap_err().contains("4 processes"));
        assert!(check_fix_the_deadlock(&p)
            .unwrap_err()
            .contains("2 processes"));
    }
}
