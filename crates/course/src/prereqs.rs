//! Prerequisite knowledge per level (paper Table II).

use crate::levels::Level;

/// One prerequisite item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prerequisite {
    /// The level it applies to.
    pub level: Level,
    /// The prerequisite text (paper Table II).
    pub text: &'static str,
}

/// Table II: the prerequisite knowledge for each level of difficulty.
pub const PREREQUISITES: [Prerequisite; 6] = [
    Prerequisite {
        level: Level::Beginner,
        text: "A basic knowledge of MPI, in particular point-to-point MPI communication calls.",
    },
    Prerequisite {
        level: Level::Beginner,
        text: "A basic knowledge of graph theory, but not necessarily an in-depth understanding.",
    },
    Prerequisite {
        level: Level::Intermediate,
        text: "An understanding of non-determinism from the topics described by the beginner \
               level.",
    },
    Prerequisite {
        level: Level::Intermediate,
        text: "The ability to interpret violin plots.",
    },
    Prerequisite {
        level: Level::Advanced,
        text: "An understanding of what external factors impact the amount of non-determinism \
               in an application from the intermediate level.",
    },
    Prerequisite {
        level: Level::Advanced,
        text: "The ability to understand C++ source code to identify functions causing \
               non-determinism.",
    },
];

/// The prerequisites of one level, in order.
pub fn prereqs_of(level: Level) -> Vec<&'static Prerequisite> {
    PREREQUISITES.iter().filter(|p| p.level == level).collect()
}

/// Render Table II as aligned text rows.
pub fn table_ii() -> String {
    let mut s = String::from("Table II: prerequisite knowledge per level\n");
    for level in Level::ALL {
        s.push_str(&format!("{level}\n"));
        for p in prereqs_of(level) {
            s.push_str(&format!("  - {}\n", p.text));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_prereqs_per_level() {
        for level in Level::ALL {
            assert_eq!(prereqs_of(level).len(), 2, "{level}");
        }
    }

    #[test]
    fn table_mentions_key_topics() {
        let t = table_ii();
        assert!(t.contains("point-to-point MPI"));
        assert!(t.contains("violin plots"));
        assert!(t.contains("C++ source code"));
    }
}
