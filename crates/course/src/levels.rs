//! The course structure: levels and learning objectives (paper Table I).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three levels of complexity of the course module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Level A.
    Beginner,
    /// Level B.
    Intermediate,
    /// Level C.
    Advanced,
}

impl Level {
    /// All levels in order.
    pub const ALL: [Level; 3] = [Level::Beginner, Level::Intermediate, Level::Advanced];

    /// The paper's letter code (A/B/C).
    pub fn code(&self) -> char {
        match self {
            Level::Beginner => 'A',
            Level::Intermediate => 'B',
            Level::Advanced => 'C',
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Level::Beginner => "Beginner",
            Level::Intermediate => "Intermediate",
            Level::Advanced => "Advanced",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}. {} level", self.code(), self.name())
    }
}

/// One learning objective.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Goal {
    /// The paper's goal id, e.g. "A.1".
    pub id: &'static str,
    /// The level the goal belongs to.
    pub level: Level,
    /// The objective text (paper Table I).
    pub text: &'static str,
}

/// Table I: the learning objectives for each level of difficulty.
pub const GOALS: [Goal; 6] = [
    Goal {
        id: "A.1",
        level: Level::Beginner,
        text: "Introduce parallelism using the message passing paradigm",
    },
    Goal {
        id: "A.2",
        level: Level::Beginner,
        text: "Define non-determinism associated to message passing",
    },
    Goal {
        id: "B.1",
        level: Level::Intermediate,
        text: "Study effects of number of processes on non-determinism in applications",
    },
    Goal {
        id: "B.2",
        level: Level::Intermediate,
        text: "Study non-determinism across multiple iterations of the same code during the \
               same application execution",
    },
    Goal {
        id: "C.1",
        level: Level::Advanced,
        text: "Quantify the level of non-determinism in application's executions",
    },
    Goal {
        id: "C.2",
        level: Level::Advanced,
        text: "Identify root sources of non-determinism in applications",
    },
];

/// The goals of one level, in order.
pub fn goals_of(level: Level) -> Vec<&'static Goal> {
    GOALS.iter().filter(|g| g.level == level).collect()
}

/// Render Table I as aligned text rows (one row per level).
pub fn table_i() -> String {
    let mut s = String::from("Table I: learning objectives per level\n");
    for level in Level::ALL {
        s.push_str(&format!("{level}\n"));
        for g in goals_of(level) {
            s.push_str(&format!("  Goal {}: {}\n", g.id, g.text));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_goals_two_per_level() {
        assert_eq!(GOALS.len(), 6);
        for level in Level::ALL {
            assert_eq!(goals_of(level).len(), 2, "{level}");
        }
    }

    #[test]
    fn goal_ids_match_level_codes() {
        for g in &GOALS {
            assert!(g.id.starts_with(g.level.code()));
        }
    }

    #[test]
    fn table_renders_every_goal() {
        let t = table_i();
        for g in &GOALS {
            assert!(t.contains(g.id), "missing {}", g.id);
        }
        assert!(t.contains("A. Beginner level"));
        assert!(t.contains("C. Advanced level"));
    }

    #[test]
    fn display_format() {
        assert_eq!(Level::Beginner.to_string(), "A. Beginner level");
        assert_eq!(Level::Advanced.code(), 'C');
    }
}
