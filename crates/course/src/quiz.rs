//! Comprehension questions per level, with reference answers.
//!
//! These are the questions the paper poses at the start of each use case;
//! the CLI's `course` subcommand prints them (optionally with answers) so
//! instructors can use them directly in a tutorial.

use crate::levels::Level;

/// One comprehension question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// The level the question belongs to.
    pub level: Level,
    /// The goal it supports (e.g. "A.1").
    pub goal: &'static str,
    /// The question text.
    pub prompt: &'static str,
    /// A reference answer.
    pub answer: &'static str,
}

/// The question bank (paper §III, the per-use-case question lists).
pub const QUESTIONS: [Question; 6] = [
    Question {
        level: Level::Beginner,
        goal: "A.1",
        prompt: "What is message passing in the context of an execution?",
        answer: "Processes cooperate by exchanging explicit messages: any process can send a \
                 message to another process, and processes can exchange messages using \
                 different communication patterns.",
    },
    Question {
        level: Level::Beginner,
        goal: "A.2",
        prompt: "What is non-determinism in the context of an execution?",
        answer: "Multiple executions of the same code, run in the same way with the same \
                 inputs, produce different communication patterns — e.g. messages from \
                 different senders arrive at a wildcard receive in different orders.",
    },
    Question {
        level: Level::Intermediate,
        goal: "B.1",
        prompt: "What is the effect of increasing the number of MPI processes used during \
                 execution?",
        answer: "The amount of non-determinism increases: more processes means more racing \
                 messages, so the kernel distance between runs grows.",
    },
    Question {
        level: Level::Intermediate,
        goal: "B.2",
        prompt: "What is the effect of increasing the number of communication pattern \
                 iterations?",
        answer: "Non-determinism accumulates across iterations within one execution, so more \
                 iterations yield larger kernel distances between runs.",
    },
    Question {
        level: Level::Advanced,
        goal: "C.1",
        prompt: "How do root sources of non-determinism impact the amount of non-determinism?",
        answer: "The percentage of messages subject to delay at the root sources directly \
                 controls the measured amount: sweeping it from 0% to 100% monotonically \
                 increases the kernel distance.",
    },
    Question {
        level: Level::Advanced,
        goal: "C.2",
        prompt: "How can the toolkit be used to identify root sources of non-determinism?",
        answer: "Slice the event graphs along logical time, find the windows where runs \
                 disagree most, and rank the call paths of receives in those windows — the \
                 wildcard-receive call paths that top the ranking are the likely root sources.",
    },
];

/// Questions of one level.
pub fn questions_of(level: Level) -> Vec<&'static Question> {
    QUESTIONS.iter().filter(|q| q.level == level).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_questions_per_level() {
        for level in Level::ALL {
            assert_eq!(questions_of(level).len(), 2);
        }
    }

    #[test]
    fn goals_align_with_levels() {
        for q in &QUESTIONS {
            assert!(q.goal.starts_with(q.level.code()));
            assert!(!q.prompt.is_empty());
            assert!(!q.answer.is_empty());
        }
    }
}
