//! Sparse feature vectors in the kernels' explicit feature spaces.
//!
//! Every kernel in this crate has an explicit feature map φ(G): a sparse
//! vector indexed by stable 64-bit label hashes. The kernel value is then
//! simply `k(G, H) = ⟨φ(G), φ(H)⟩`, which makes Gram-matrix computation
//! embarrassingly parallel: features once per graph, dot products per pair.
//!
//! The vector is a flat `(id, weight)` array sorted by id. That buys two
//! things at once:
//!
//! * **Throughput** — the dot product is a linear merge-join over two
//!   contiguous arrays, a streaming scan instead of one hash lookup (and
//!   likely cache miss) per feature; bulk construction is one sort instead
//!   of per-key map inserts.
//! * **Reproducibility** — every reduction (dot products, norms,
//!   normalisation totals) accumulates in increasing-id order, so each
//!   value is a pure function of the *contents*, never of instance
//!   identity. Two extractions of φ(G) in different processes (or the
//!   pipelined and barrier Gram schedules) produce bit-identical numbers
//!   even for kernels with non-integer weights, where float summation
//!   order would otherwise leak through. The HashMap-backed predecessor
//!   violated this: iteration order depended on each map's random hasher
//!   seed.

/// Which dot-product implementation the Gram stage uses.
///
/// Purely an execution-strategy knob, like the thread count and the gram
/// schedule: both kinds produce **bit-identical** sums (the blocked variant
/// only skips runs of ids that match nothing, and a skipped non-match
/// contributes exactly `+0.0`), so the choice is excluded from
/// incremental-store fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DotKind {
    /// The branchless linear merge-join ([`SparseFeatures::dot`]).
    #[default]
    Scalar,
    /// Block-at-a-time merge-join with galloping skip over disjoint key
    /// ranges ([`SparseFeatures::dot_blocked`]).
    Blocked,
}

impl DotKind {
    /// Compute `⟨a, b⟩` with this implementation.
    #[inline]
    pub fn dot(self, a: &SparseFeatures, b: &SparseFeatures) -> f64 {
        match self {
            DotKind::Scalar => a.dot(b),
            DotKind::Blocked => a.dot_blocked(b),
        }
    }

    fn as_str(&self) -> &'static str {
        match self {
            DotKind::Scalar => "scalar",
            DotKind::Blocked => "blocked",
        }
    }
}

impl std::fmt::Display for DotKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for DotKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(DotKind::Scalar),
            "blocked" => Ok(DotKind::Blocked),
            other => Err(format!(
                "unknown dot kind '{other}' (expected 'scalar' or 'blocked')"
            )),
        }
    }
}

// Manual serde impls: a missing field deserialises as `Null`, which maps to
// the default — so configs serialised before the dot knob existed keep
// loading.
impl serde::Serialize for DotKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl serde::Deserialize for DotKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.is_null() {
            return Ok(DotKind::default());
        }
        match v.as_str() {
            Some(s) => s.parse().map_err(serde::Error::custom),
            None => Err(serde::Error::custom("dot kind must be a string")),
        }
    }
}

/// A sparse feature vector keyed by stable 64-bit feature ids.
///
/// Invariant: `map` is sorted by id and ids are unique.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseFeatures {
    map: Vec<(u64, f64)>,
}

impl SparseFeatures {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk constructor: sort once, then sum duplicate ids in their
    /// original relative order (a stable sort keeps that order, so this is
    /// exactly equivalent to [`SparseFeatures::add`] in a loop). Much
    /// cheaper than repeated `add` when most ids are new.
    pub fn from_pairs(mut pairs: Vec<(u64, f64)>) -> Self {
        pairs.sort_by_key(|&(id, _)| id);
        let mut map: Vec<(u64, f64)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match map.last_mut() {
                Some(last) if last.0 == id => last.1 += w,
                _ => map.push((id, w)),
            }
        }
        Self { map }
    }

    /// Bulk constructor for *order-independent* weights (exact integers,
    /// or any set where duplicate-id sums are associative bit-for-bit):
    /// sorts unstably, so duplicates may sum in any order. Faster than
    /// [`SparseFeatures::from_pairs`]; callers must guarantee the weights
    /// make that reordering unobservable.
    pub(crate) fn from_commutative_pairs(mut pairs: Vec<(u64, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut map: Vec<(u64, f64)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match map.last_mut() {
                Some(last) if last.0 == id => last.1 += w,
                _ => map.push((id, w)),
            }
        }
        Self { map }
    }

    /// Add `weight` to feature `id`.
    pub fn add(&mut self, id: u64, weight: f64) {
        match self.map.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.map[pos].1 += weight,
            Err(pos) => self.map.insert(pos, (id, weight)),
        }
    }

    /// Increment feature `id` by one.
    pub fn bump(&mut self, id: u64) {
        self.add(id, 1.0);
    }

    /// The weight of feature `id` (0 when absent).
    pub fn get(&self, id: u64) -> f64 {
        match self.map.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.map[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Number of nonzero features.
    pub fn nnz(&self) -> usize {
        self.map.len()
    }

    /// True when no feature is set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inner product with another vector: a linear merge-join over the two
    /// sorted arrays. Summation runs in increasing shared-id order, so the
    /// result is deterministic and exactly symmetric in its arguments
    /// bit-for-bit.
    pub fn dot(&self, other: &SparseFeatures) -> f64 {
        let a = &self.map;
        let b = &other.map;
        let (mut i, mut j) = (0usize, 0usize);
        let mut sum = 0.0;
        // Branchless advance: the comparisons compile to conditional moves,
        // so the (data-dependent, unpredictable) interleaving of the two id
        // sequences never stalls the pipeline on a branch miss. Ids match
        // on a fraction of iterations only, so the wasted multiply on
        // non-matches is cheaper than a mispredict per iteration.
        while i < a.len() && j < b.len() {
            let (ka, wa) = a[i];
            let (kb, wb) = b[j];
            let prod = wa * wb;
            sum += if ka == kb { prod } else { 0.0 };
            i += (ka <= kb) as usize;
            j += (kb <= ka) as usize;
        }
        sum
    }

    /// Inner product via a blocked merge-join with galloping skip.
    ///
    /// The scalar merge-join walks both arrays one element at a time even
    /// through long runs of ids that exist on only one side — common when
    /// two runs share part of their label vocabulary but diverge elsewhere.
    /// This variant looks at both arrays a fixed-size block at a time:
    /// when a whole block's key range lies strictly below the other
    /// cursor's key, the block cannot contain a match and the cursor
    /// gallops past it (doubling probe steps, then a binary search within
    /// the last doubling) instead of visiting every element. Blocks whose
    /// key ranges overlap fall back to the scalar branchless merge,
    /// bounded to the block.
    ///
    /// **Bit-exactness.** Matching id pairs are visited in exactly the
    /// same increasing-id order as [`SparseFeatures::dot`], and each match
    /// accumulates through the identical expression `sum += wa * wb`.
    /// Skipped elements are precisely those the scalar loop would have
    /// accumulated as `sum += 0.0`, and `x + 0.0` never changes the bits
    /// of any sum reachable here (the accumulator starts at `+0.0` and
    /// `+0.0 + ±0.0 = +0.0`). Differential-tested against the scalar dot
    /// bit-for-bit in this module and in `tests/properties.rs`.
    pub fn dot_blocked(&self, other: &SparseFeatures) -> f64 {
        /// Elements examined per block before the disjointness test.
        const BLOCK: usize = 64;

        /// First index in `s` whose id is `>= key`: exponential (galloping)
        /// probe followed by a binary search within the last doubling.
        fn gallop(s: &[(u64, f64)], key: u64) -> usize {
            let mut hi = 1usize;
            while hi < s.len() && s[hi - 1].0 < key {
                hi *= 2;
            }
            let lo = hi / 2;
            let hi = hi.min(s.len());
            lo + s[lo..hi].partition_point(|&(id, _)| id < key)
        }

        let a = &self.map;
        let b = &other.map;
        let (mut i, mut j) = (0usize, 0usize);
        let mut sum = 0.0;
        while i < a.len() && j < b.len() {
            let a_end = (i + BLOCK).min(a.len());
            let b_end = (j + BLOCK).min(b.len());
            // Disjoint key ranges: the lower block holds no match for
            // anything at or beyond the other cursor — skip past it and
            // keep galloping to the first id that could match.
            if a[a_end - 1].0 < b[j].0 {
                i = a_end + gallop(&a[a_end..], b[j].0);
                continue;
            }
            if b[b_end - 1].0 < a[i].0 {
                j = b_end + gallop(&b[b_end..], a[i].0);
                continue;
            }
            // Overlapping ranges: scalar branchless merge within the
            // blocks — identical accumulation order and expression to
            // `dot`.
            while i < a_end && j < b_end {
                let (ka, wa) = a[i];
                let (kb, wb) = b[j];
                let prod = wa * wb;
                sum += if ka == kb { prod } else { 0.0 };
                i += (ka <= kb) as usize;
                j += (kb <= ka) as usize;
            }
        }
        sum
    }

    /// Squared Euclidean norm, `⟨φ, φ⟩`.
    pub fn norm_sq(&self) -> f64 {
        self.map.iter().map(|&(_, w)| w * w).sum()
    }

    /// Accumulate another vector into this one (merge-join; shared ids sum
    /// as `self + other`, matching [`SparseFeatures::add`]).
    pub fn merge(&mut self, other: &SparseFeatures) {
        if other.map.is_empty() {
            return;
        }
        let a = &self.map;
        let b = &other.map;
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.map = merged;
    }

    /// Scale every weight by `s`.
    pub fn scale(&mut self, s: f64) {
        for (_, w) in &mut self.map {
            *w *= s;
        }
    }

    /// Iterate `(id, weight)` pairs in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.map.iter().copied()
    }

    /// L1 distance to another vector (used in tests/diagnostics).
    /// Accumulates over the id union in increasing order, so it shares the
    /// determinism guarantee of [`SparseFeatures::dot`].
    pub fn l1_distance(&self, other: &SparseFeatures) -> f64 {
        let a = &self.map;
        let b = &other.map;
        let (mut i, mut j) = (0usize, 0usize);
        let mut sum = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    sum += a[i].1.abs();
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    sum += b[j].1.abs();
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    sum += (a[i].1 - b[j].1).abs();
                    i += 1;
                    j += 1;
                }
            }
        }
        sum += a[i..].iter().map(|&(_, w)| w.abs()).sum::<f64>();
        sum += b[j..].iter().map(|&(_, w)| w.abs()).sum::<f64>();
        sum
    }
}

impl FromIterator<(u64, f64)> for SparseFeatures {
    fn from_iter<T: IntoIterator<Item = (u64, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_basic() {
        let a: SparseFeatures = [(1, 2.0), (2, 3.0)].into_iter().collect();
        let b: SparseFeatures = [(2, 4.0), (3, 5.0)].into_iter().collect();
        assert_eq!(a.dot(&b), 12.0);
        assert_eq!(b.dot(&a), 12.0);
        assert_eq!(a.norm_sq(), 13.0);
        assert_eq!(a.dot(&a), a.norm_sq());
    }

    #[test]
    fn bump_and_get() {
        let mut f = SparseFeatures::new();
        f.bump(7);
        f.bump(7);
        f.add(9, 0.5);
        assert_eq!(f.get(7), 2.0);
        assert_eq!(f.get(9), 0.5);
        assert_eq!(f.get(10), 0.0);
        assert_eq!(f.nnz(), 2);
        assert!(!f.is_empty());
        assert!(SparseFeatures::new().is_empty());
    }

    #[test]
    fn merge_and_scale() {
        let mut a: SparseFeatures = [(1, 1.0)].into_iter().collect();
        let b: SparseFeatures = [(1, 2.0), (2, 3.0)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get(1), 3.0);
        assert_eq!(a.get(2), 3.0);
        a.scale(0.5);
        assert_eq!(a.get(1), 1.5);
    }

    #[test]
    fn l1_distance_symmetric_and_zero_on_equal() {
        let a: SparseFeatures = [(1, 1.0), (2, 2.0)].into_iter().collect();
        let b: SparseFeatures = [(2, 1.0), (3, 4.0)].into_iter().collect();
        assert_eq!(a.l1_distance(&a), 0.0);
        assert_eq!(a.l1_distance(&b), b.l1_distance(&a));
        assert_eq!(a.l1_distance(&b), 1.0 + 1.0 + 4.0);
    }

    #[test]
    fn dot_merges_mismatched_supports_correctly() {
        let big: SparseFeatures = (0..100).map(|i| (i, 1.0)).collect();
        let small: SparseFeatures = [(5, 2.0), (200, 7.0)].into_iter().collect();
        assert_eq!(big.dot(&small), 2.0);
        assert_eq!(small.dot(&big), 2.0);
    }

    /// `from_pairs` is exactly an `add` loop: duplicates sum in their
    /// original relative order (the sort is stable), new ids land sorted.
    #[test]
    fn from_pairs_matches_add_loop() {
        let pairs = vec![(9, 1.0), (3, 0.25), (9, 2.0), (1, 4.0), (3, 0.5)];
        let bulk = SparseFeatures::from_pairs(pairs.clone());
        let mut loop_built = SparseFeatures::new();
        for (id, w) in pairs {
            loop_built.add(id, w);
        }
        assert_eq!(bulk, loop_built);
        let ids: Vec<u64> = bulk.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 3, 9]);
    }

    /// Deterministic pseudo-random vector shapes for the blocked-dot
    /// differential: splitmix64 ids so supports interleave, cluster, and
    /// leave long disjoint runs.
    fn pseudo_vector(seed: u64, len: usize, stride: u64) -> SparseFeatures {
        let mut x = seed;
        (0..len)
            .map(|i| {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let id = (z ^ (z >> 31)) % (len as u64 * stride + 1);
                (id, 0.1 + (i as f64) * 0.37)
            })
            .collect()
    }

    /// The tier-1 exactness contract: the blocked merge-join with
    /// galloping skip is bit-identical to the scalar merge-join on every
    /// shape — empty, tiny, fully disjoint, fully shared, clustered, and
    /// randomly interleaved (including lengths straddling the block size).
    #[test]
    fn blocked_dot_is_bit_identical_to_scalar() {
        let shapes: Vec<(SparseFeatures, SparseFeatures)> = vec![
            (SparseFeatures::new(), SparseFeatures::new()),
            (pseudo_vector(1, 3, 5), SparseFeatures::new()),
            // Fully disjoint ranges (gallop skips everything).
            (
                (0..500u64).map(|i| (i, 1.5 + i as f64)).collect(),
                (1000..1600u64).map(|i| (i, 2.5 + i as f64)).collect(),
            ),
            // Identical supports (pure scalar path).
            (pseudo_vector(7, 300, 3), pseudo_vector(7, 300, 3)),
            // One tiny probe against a long run (gallop from both sides).
            (
                [(5_000, 2.0), (90_000, 7.0)].into_iter().collect(),
                (0..100_000u64).step_by(7).map(|i| (i, 0.25)).collect(),
            ),
        ];
        for (sa, sb) in &shapes {
            assert_eq!(sa.dot_blocked(sb).to_bits(), sa.dot(sb).to_bits());
            assert_eq!(sb.dot_blocked(sa).to_bits(), sb.dot(sa).to_bits());
        }
        // Random interleavings at lengths around the 64-element block size.
        for seed in 0..32u64 {
            for (la, lb) in [(1, 200), (63, 64), (64, 65), (129, 511), (777, 64)] {
                let a = pseudo_vector(seed, la, 2 + (seed % 11));
                let b = pseudo_vector(seed ^ 0xDEAD_BEEF, lb, 1 + (seed % 7));
                assert_eq!(
                    a.dot_blocked(&b).to_bits(),
                    a.dot(&b).to_bits(),
                    "seed {seed}, lens ({la}, {lb})"
                );
                assert_eq!(a.dot_blocked(&b).to_bits(), b.dot_blocked(&a).to_bits());
            }
        }
    }

    #[test]
    fn dot_kind_dispatch_parse_and_serde() {
        let a = pseudo_vector(3, 100, 4);
        let b = pseudo_vector(9, 90, 3);
        assert_eq!(DotKind::Scalar.dot(&a, &b).to_bits(), a.dot(&b).to_bits());
        assert_eq!(
            DotKind::Blocked.dot(&a, &b).to_bits(),
            a.dot_blocked(&b).to_bits()
        );
        assert_eq!("scalar".parse(), Ok(DotKind::Scalar));
        assert_eq!("blocked".parse(), Ok(DotKind::Blocked));
        assert!("simd".parse::<DotKind>().is_err());
        for k in [DotKind::Scalar, DotKind::Blocked] {
            let v = serde::Serialize::to_value(&k);
            assert_eq!(serde::Deserialize::from_value(&v), Ok(k));
            assert_eq!(k.to_string().parse(), Ok(k));
        }
        // Null (a config written before the knob existed) is the default.
        assert_eq!(
            <DotKind as serde::Deserialize>::from_value(&serde::Value::Null),
            Ok(DotKind::Scalar)
        );
    }

    /// The reproducibility contract: reductions accumulate in id order, so
    /// the same *contents* always give the same bits — regardless of the
    /// insertion order that built each instance (the HashMap-backed
    /// predecessor violated this for non-integer weights).
    #[test]
    fn reductions_are_insertion_order_independent() {
        let pairs: Vec<(u64, f64)> = (0..64u64)
            .map(|i| (i * 977, 0.1 + i as f64 * 0.3))
            .collect();
        let fwd: SparseFeatures = pairs.iter().copied().collect();
        let rev: SparseFeatures = pairs.iter().rev().copied().collect();
        assert_eq!(fwd.dot(&fwd).to_bits(), rev.dot(&rev).to_bits());
        assert_eq!(fwd.dot(&rev).to_bits(), rev.dot(&fwd).to_bits());
        assert_eq!(fwd.norm_sq().to_bits(), rev.norm_sq().to_bits());
        let total_fwd: f64 = fwd.iter().map(|(_, w)| w).sum();
        let total_rev: f64 = rev.iter().map(|(_, w)| w).sum();
        assert_eq!(total_fwd.to_bits(), total_rev.to_bits());
    }
}
