//! Sparse feature vectors in the kernels' explicit feature spaces.
//!
//! Every kernel in this crate has an explicit feature map φ(G): a sparse
//! vector indexed by stable 64-bit label hashes. The kernel value is then
//! simply `k(G, H) = ⟨φ(G), φ(H)⟩`, which makes Gram-matrix computation
//! embarrassingly parallel: features once per graph, dot products per pair.

use std::collections::HashMap;

/// A sparse feature vector keyed by stable 64-bit feature ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseFeatures {
    map: HashMap<u64, f64>,
}

impl SparseFeatures {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `weight` to feature `id`.
    pub fn add(&mut self, id: u64, weight: f64) {
        *self.map.entry(id).or_insert(0.0) += weight;
    }

    /// Increment feature `id` by one.
    pub fn bump(&mut self, id: u64) {
        self.add(id, 1.0);
    }

    /// The weight of feature `id` (0 when absent).
    pub fn get(&self, id: u64) -> f64 {
        self.map.get(&id).copied().unwrap_or(0.0)
    }

    /// Number of nonzero features.
    pub fn nnz(&self) -> usize {
        self.map.len()
    }

    /// True when no feature is set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inner product with another vector (iterates the smaller side).
    pub fn dot(&self, other: &SparseFeatures) -> f64 {
        let (small, large) = if self.map.len() <= other.map.len() {
            (&self.map, &other.map)
        } else {
            (&other.map, &self.map)
        };
        small
            .iter()
            .map(|(id, w)| w * large.get(id).copied().unwrap_or(0.0))
            .sum()
    }

    /// Squared Euclidean norm, `⟨φ, φ⟩`.
    pub fn norm_sq(&self) -> f64 {
        self.map.values().map(|w| w * w).sum()
    }

    /// Accumulate another vector into this one.
    pub fn merge(&mut self, other: &SparseFeatures) {
        for (&id, &w) in &other.map {
            self.add(id, w);
        }
    }

    /// Scale every weight by `s`.
    pub fn scale(&mut self, s: f64) {
        for w in self.map.values_mut() {
            *w *= s;
        }
    }

    /// Iterate `(id, weight)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.map.iter().map(|(&id, &w)| (id, w))
    }

    /// L1 distance to another vector (used in tests/diagnostics).
    pub fn l1_distance(&self, other: &SparseFeatures) -> f64 {
        let mut ids: std::collections::HashSet<u64> = self.map.keys().copied().collect();
        ids.extend(other.map.keys().copied());
        ids.into_iter()
            .map(|id| (self.get(id) - other.get(id)).abs())
            .sum()
    }
}

impl FromIterator<(u64, f64)> for SparseFeatures {
    fn from_iter<T: IntoIterator<Item = (u64, f64)>>(iter: T) -> Self {
        let mut f = SparseFeatures::new();
        for (id, w) in iter {
            f.add(id, w);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_basic() {
        let a: SparseFeatures = [(1, 2.0), (2, 3.0)].into_iter().collect();
        let b: SparseFeatures = [(2, 4.0), (3, 5.0)].into_iter().collect();
        assert_eq!(a.dot(&b), 12.0);
        assert_eq!(b.dot(&a), 12.0);
        assert_eq!(a.norm_sq(), 13.0);
        assert_eq!(a.dot(&a), a.norm_sq());
    }

    #[test]
    fn bump_and_get() {
        let mut f = SparseFeatures::new();
        f.bump(7);
        f.bump(7);
        f.add(9, 0.5);
        assert_eq!(f.get(7), 2.0);
        assert_eq!(f.get(9), 0.5);
        assert_eq!(f.get(10), 0.0);
        assert_eq!(f.nnz(), 2);
        assert!(!f.is_empty());
        assert!(SparseFeatures::new().is_empty());
    }

    #[test]
    fn merge_and_scale() {
        let mut a: SparseFeatures = [(1, 1.0)].into_iter().collect();
        let b: SparseFeatures = [(1, 2.0), (2, 3.0)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get(1), 3.0);
        assert_eq!(a.get(2), 3.0);
        a.scale(0.5);
        assert_eq!(a.get(1), 1.5);
    }

    #[test]
    fn l1_distance_symmetric_and_zero_on_equal() {
        let a: SparseFeatures = [(1, 1.0), (2, 2.0)].into_iter().collect();
        let b: SparseFeatures = [(2, 1.0), (3, 4.0)].into_iter().collect();
        assert_eq!(a.l1_distance(&a), 0.0);
        assert_eq!(a.l1_distance(&b), b.l1_distance(&a));
        assert_eq!(a.l1_distance(&b), 1.0 + 1.0 + 4.0);
    }

    #[test]
    fn dot_iterates_smaller_side_correctly() {
        let big: SparseFeatures = (0..100).map(|i| (i, 1.0)).collect();
        let small: SparseFeatures = [(5, 2.0), (200, 7.0)].into_iter().collect();
        assert_eq!(big.dot(&small), 2.0);
        assert_eq!(small.dot(&big), 2.0);
    }
}
