//! Sampled graphlet kernel.
//!
//! φ(G) is the empirical distribution of 3-node induced subgraph shapes
//! (treating edges as undirected): empty, one edge, path/cherry, triangle.
//! Estimated by seeded uniform sampling, so features are reproducible.
//! Included for completeness of the kernel ablation — as a purely
//! structural, label-free kernel it cannot distinguish match reorderings
//! at all, bounding the other kernels from below.

use crate::feature::SparseFeatures;
use crate::kernel::GraphKernel;
use anacin_event_graph::{EventGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sampled 3-graphlet kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphletKernel {
    /// Number of sampled node triples.
    pub samples: u32,
    /// RNG seed for sampling (fixed default keeps features reproducible).
    pub seed: u64,
}

impl Default for GraphletKernel {
    fn default() -> Self {
        GraphletKernel {
            samples: 2_000,
            seed: 0x9e3779b9,
        }
    }
}

impl GraphletKernel {
    fn connected(g: &EventGraph, a: NodeId, b: NodeId) -> bool {
        g.out_edges(a).iter().any(|&(n, _)| n == b) || g.out_edges(b).iter().any(|&(n, _)| n == a)
    }
}

impl GraphKernel for GraphletKernel {
    fn name(&self) -> String {
        format!("graphlet(k=3,s={})", self.samples)
    }

    fn features(&self, g: &EventGraph) -> SparseFeatures {
        let n = g.node_count();
        let mut f = SparseFeatures::new();
        if n < 3 {
            return f;
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for _ in 0..self.samples {
            let mut pick = || NodeId(rng.gen_range(0..n as u32));
            let (a, b, c) = (pick(), pick(), pick());
            if a == b || b == c || a == c {
                continue;
            }
            let e = Self::connected(g, a, b) as u32
                + Self::connected(g, b, c) as u32
                + Self::connected(g, a, c) as u32;
            f.bump(e as u64);
        }
        // Normalise to a distribution so graphs of different sizes remain
        // comparable.
        let total: f64 = f.iter().map(|(_, w)| w).sum();
        if total > 0.0 {
            f.scale(1.0 / total);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anacin_mpisim::prelude::*;

    fn race_graph(n: u32, nd: f64, seed: u64) -> EventGraph {
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn features_form_a_distribution() {
        let g = race_graph(6, 0.0, 0);
        let k = GraphletKernel::default();
        let f = k.features(&g);
        let total: f64 = f.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Shape classes are 0..=3 edges.
        for (id, w) in f.iter() {
            assert!(id <= 3);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = race_graph(6, 0.0, 0);
        let k = GraphletKernel::default();
        assert_eq!(k.features(&g), k.features(&g));
    }

    #[test]
    fn tiny_graph_yields_empty_features() {
        let mut b = ProgramBuilder::new(1);
        b.rank(Rank(0)).compute(1);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        let g = EventGraph::from_trace(&t);
        assert_eq!(g.node_count(), 2);
        let f = GraphletKernel::default().features(&g);
        assert!(f.is_empty());
    }

    #[test]
    fn blind_to_match_reordering() {
        // Same structure, different matching: graphlet distributions are
        // estimates but use the same sampling seed over the same node set,
        // and the undirected structure is isomorphic — allow small noise.
        let g1 = race_graph(6, 100.0, 0);
        let g2 = race_graph(6, 100.0, 1);
        let k = GraphletKernel::default();
        let d = k.features(&g1).l1_distance(&k.features(&g2));
        assert!(d < 0.1, "graphlet distribution moved too much: {d}");
    }
}
