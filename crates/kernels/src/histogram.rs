//! Vertex- and edge-histogram kernels.
//!
//! The cheapest graph kernels: φ(G) counts node labels (vertex histogram)
//! or `(source label, edge kind, target label)` triples (edge histogram).
//! They serve as the ablation baselines: histograms are multiset-blind to
//! *where* a label occurs, so they under-report non-determinism that only
//! reorders communication — the WL kernel's advantage, demonstrated in the
//! `ablation_kernels` bench.

use crate::feature::SparseFeatures;
use crate::kernel::GraphKernel;
use anacin_event_graph::label::{fnv1a_words, initial_labels, LabelPolicy};
use anacin_event_graph::{EdgeKind, EventGraph};

/// Vertex histogram kernel: counts of initial node labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VertexHistogramKernel {
    /// Node-label policy.
    pub policy: LabelPolicy,
}

impl GraphKernel for VertexHistogramKernel {
    fn name(&self) -> String {
        format!("vertex-hist({:?})", self.policy)
    }

    fn features(&self, g: &EventGraph) -> SparseFeatures {
        let mut f = SparseFeatures::new();
        for l in initial_labels(g, self.policy) {
            f.bump(l);
        }
        f
    }
}

/// Edge histogram kernel: counts of `(label(u), kind, label(v))` triples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeHistogramKernel {
    /// Node-label policy.
    pub policy: LabelPolicy,
}

impl GraphKernel for EdgeHistogramKernel {
    fn name(&self) -> String {
        format!("edge-hist({:?})", self.policy)
    }

    fn features(&self, g: &EventGraph) -> SparseFeatures {
        let labels = initial_labels(g, self.policy);
        let mut f = SparseFeatures::new();
        for (a, b, kind) in g.edges() {
            let k = match kind {
                EdgeKind::Program => 1u64,
                EdgeKind::Message => 2u64,
            };
            f.bump(fnv1a_words(&[labels[a.index()], k, labels[b.index()]]));
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::kernel_distance;
    use anacin_mpisim::prelude::*;

    fn race_graph(n: u32, nd: f64, seed: u64) -> EventGraph {
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn vertex_histogram_counts_nodes() {
        let g = race_graph(4, 0.0, 0);
        let k = VertexHistogramKernel::default();
        let f = k.features(&g);
        let total: f64 = f.iter().map(|(_, w)| w).sum();
        assert_eq!(total, g.node_count() as f64);
    }

    #[test]
    fn edge_histogram_counts_edges() {
        let g = race_graph(4, 0.0, 0);
        let k = EdgeHistogramKernel::default();
        let f = k.features(&g);
        let total: f64 = f.iter().map(|(_, w)| w).sum();
        assert_eq!(total, g.edge_count() as f64);
    }

    #[test]
    fn vertex_histogram_is_blind_to_match_reordering() {
        // The defining limitation: receives matched {1,2,3} in both runs,
        // just in different positions — the multiset is identical.
        let base = race_graph(6, 100.0, 0);
        let mut other = None;
        for seed in 1..60 {
            let g = race_graph(6, 100.0, seed);
            if g.match_order(Rank(0)) != base.match_order(Rank(0)) {
                other = Some(g);
                break;
            }
        }
        let other = other.expect("expected a reordering seed");
        let k = VertexHistogramKernel::default();
        let d = kernel_distance(
            k.value(&base, &base),
            k.value(&other, &other),
            k.value(&base, &other),
        );
        assert!(d.abs() < 1e-9, "vertex histogram saw a reordering: {d}");
    }

    #[test]
    fn kernels_are_symmetric() {
        let g1 = race_graph(5, 100.0, 1);
        let g2 = race_graph(5, 100.0, 2);
        let vk = VertexHistogramKernel::default();
        let ek = EdgeHistogramKernel::default();
        assert_eq!(vk.value(&g1, &g2), vk.value(&g2, &g1));
        assert_eq!(ek.value(&g1, &g2), ek.value(&g2, &g1));
    }

    #[test]
    fn names_mention_policy() {
        assert!(VertexHistogramKernel::default()
            .name()
            .contains("TypeAndPeer"));
        assert!(EdgeHistogramKernel::default()
            .name()
            .starts_with("edge-hist"));
    }
}
