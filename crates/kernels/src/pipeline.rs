//! Fused feature→Gram pipeline.
//!
//! [`gram_matrix_with_metrics`](crate::matrix::gram_matrix_with_metrics)
//! runs two barriers: every φ(Gᵢ) is extracted before the first dot
//! product starts, so while the last (often largest) graph is still being
//! relabelled, every other worker idles. Here both task kinds share one
//! worker pool: workers drain feature-extraction tasks from an atomic
//! counter, and completing φ(Gᵢ) immediately enqueues the dot products
//! (i, j) against every already-completed j — Gram work overlaps the
//! feature tail instead of waiting for it.
//!
//! # Bit-exactness
//!
//! The pipelined matrix is bit-identical to the barrier path at any
//! thread count, for the same reason the barrier path is thread-count
//! invariant: each (i, j) pair is enqueued exactly once (when the later of
//! φ(Gᵢ), φ(Gⱼ) completes), each dot product is computed exactly once by
//! the same `feats[i].dot(&feats[j])` expression, and the scatter into the
//! row-major buffer writes each cell from exactly one task. No value is
//! ever accumulated across tasks, so execution order cannot perturb a
//! single bit. Differential tests in `tests/pipeline.rs` assert equality
//! against the barrier path for all five kernels across thread counts.

use crate::feature::{DotKind, SparseFeatures};
use crate::kernel::GraphKernel;
use crate::matrix::KernelMatrix;
use anacin_event_graph::EventGraph;
use anacin_obs::MetricsRegistry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// A dot-product task: the unordered pair (i ≤ j) plus the instant it
/// became runnable (both operands available), for the ready-lag counter.
type DotTask = (usize, usize, Instant);

/// Shared scheduler state: which feature indices have completed, and the
/// dot products those completions have made runnable.
struct QueueState {
    completed: Vec<usize>,
    ready: Vec<DotTask>,
    /// Instant the final feature completed (drives the `…/features` vs
    /// `…/gram` split of the pipeline span).
    features_done: Option<Instant>,
}

struct DotQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

/// Compute the Gram matrix of `graphs` under `kernel` with the fused
/// feature→dot-product pipeline. Bit-identical to
/// [`gram_matrix`](crate::matrix::gram_matrix) at any thread count.
pub fn gram_pipelined(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    threads: usize,
) -> KernelMatrix {
    gram_pipelined_with_metrics(kernel, graphs, threads, None)
}

/// [`gram_pipelined`], additionally recording the `pipeline` span (with
/// `…/features` and `…/gram` sub-records splitting it at the instant the
/// last feature completed), the `kernel/features`, `kernel/dot_products`,
/// `kernel/pipeline_tasks` and `kernel/ready_lag_ns` counters, and the
/// `kernel/threads` gauge. The matrix is bit-identical either way.
pub fn gram_pipelined_with_metrics(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    threads: usize,
    metrics: Option<&MetricsRegistry>,
) -> KernelMatrix {
    let seeds = (0..graphs.len()).map(|_| None).collect();
    gram_pipelined_seeded_with_metrics(kernel, graphs, seeds, threads, metrics).1
}

/// [`gram_pipelined_with_metrics`] with some feature vectors already known
/// — the incremental cold/mixed path, where warm per-run features come out
/// of the artifact store and only the missing ones are extracted. Returns
/// every feature vector (seeded ones passed through untouched) alongside
/// the matrix. `seeds` must have one entry per graph.
///
/// Counters account only for work actually performed: `kernel/features`
/// counts extracted (non-seeded) vectors, `kernel/dot_products` all
/// n(n+1)/2 products, `kernel/pipeline_tasks` their sum.
pub fn gram_pipelined_seeded_with_metrics(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    seeds: Vec<Option<SparseFeatures>>,
    threads: usize,
    metrics: Option<&MetricsRegistry>,
) -> (Vec<SparseFeatures>, KernelMatrix) {
    gram_pipelined_seeded_with_dot(kernel, graphs, seeds, threads, DotKind::Scalar, metrics)
}

/// [`gram_pipelined_seeded_with_metrics`] with an explicit dot-product
/// implementation. Both [`DotKind`]s are bit-identical, so this is purely
/// a throughput knob.
pub fn gram_pipelined_seeded_with_dot(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    seeds: Vec<Option<SparseFeatures>>,
    threads: usize,
    dot: DotKind,
    metrics: Option<&MetricsRegistry>,
) -> (Vec<SparseFeatures>, KernelMatrix) {
    assert_eq!(seeds.len(), graphs.len(), "one seed slot per graph");
    let n = graphs.len();
    let n_dots = n * (n + 1) / 2;
    let n_extract = seeds.iter().filter(|s| s.is_none()).count();
    let threads = threads.max(1).min(n.max(1));
    let span = metrics.map(|m| m.span("pipeline"));
    if let Some(m) = metrics {
        m.counter("kernel/features").add(n_extract as u64);
        m.counter("kernel/dot_products").add(n_dots as u64);
        m.counter("kernel/pipeline_tasks")
            .add((n_extract + n_dots) as u64);
        m.set_gauge("kernel/threads", threads as f64);
    }
    let start = Instant::now();
    let (slots, values) = run_pipeline(kernel, graphs, seeds, threads, dot, metrics, |st| {
        // Record how the pipeline wall time divides into "features still
        // being extracted" vs "pure dot-product tail" under the pipeline
        // span's own path, e.g. `campaign/kernel/pipeline/features`.
        if let (Some(m), Some(sp)) = (metrics, &span) {
            let done = st.features_done.unwrap_or(start);
            let feat_ns = done.duration_since(start).as_nanos() as u64;
            m.record_span(&format!("{}/features", sp.path()), feat_ns);
            m.record_span(
                &format!("{}/gram", sp.path()),
                done.elapsed().as_nanos() as u64,
            );
        }
    });
    let feats: Vec<SparseFeatures> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("all features computed"))
        .collect();
    let matrix = KernelMatrix::from_parts(n, values, kernel.name());
    drop(span);
    (feats, matrix)
}

/// The pipeline's feature stage alone — extract φ(G) for every graph with
/// no dot-product tasks. Backs
/// [`parallel_features_with_metrics`](crate::matrix::parallel_features_with_metrics);
/// spans/counters are the caller's business.
pub(crate) fn features_stage(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    threads: usize,
    metrics: Option<&MetricsRegistry>,
) -> Vec<SparseFeatures> {
    let n = graphs.len();
    let slots: Vec<OnceLock<SparseFeatures>> = (0..n).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.max(1).min(n.max(1)) {
            let next = &next;
            let slots = &slots;
            s.spawn(move || {
                extract_features(kernel, graphs, slots, next, metrics, None);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("all slots filled"))
        .collect()
}

/// The feature loop every worker runs first: pull the next unextracted
/// index, compute φ, publish the slot, and (when a queue is present) make
/// the newly runnable dot products visible to all workers.
fn extract_features(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    slots: &[OnceLock<SparseFeatures>],
    next: &AtomicUsize,
    metrics: Option<&MetricsRegistry>,
    queue: Option<(&DotQueue, &[usize], usize)>,
) {
    loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        let i = match queue {
            Some((_, to_extract, _)) => match to_extract.get(k) {
                Some(&i) => i,
                None => break,
            },
            None => {
                if k >= graphs.len() {
                    break;
                }
                k
            }
        };
        // Per-graph span on the worker's own thread (path "feature":
        // worker threads have no span stack), so traced timelines show
        // each extraction, not just the stage total.
        let f = {
            let _sp = metrics.map(|m| m.span("feature"));
            kernel.features(&graphs[i])
        };
        assert!(slots[i].set(f).is_ok(), "feature slot set once");
        if let Some((q, _, n_total)) = queue {
            let now = Instant::now();
            let mut st = q.state.lock().expect("dot queue poisoned");
            st.completed.push(i);
            let QueueState {
                completed,
                ready,
                features_done,
            } = &mut *st;
            // (i, j) for every completed j — including j = i, the diagonal
            // — becomes runnable exactly now. Each unordered pair is
            // enqueued once: when the later of its two operands lands.
            for &j in completed.iter() {
                ready.push((i.min(j), i.max(j), now));
            }
            if completed.len() == n_total {
                *features_done = Some(Instant::now());
            }
            drop(st);
            // Wake every sleeper: several dot products may have become
            // runnable, and the worker that finishes the final feature
            // must also rouse workers waiting to discover there is no
            // more work.
            q.cv.notify_all();
        }
    }
}

/// Run the fused pipeline: feature stage feeding a shared dot-product
/// queue. Returns the filled feature slots and the row-major Gram buffer.
/// `on_drained` runs once, after the workers join, with the final queue
/// state (for timing records).
fn run_pipeline(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    seeds: Vec<Option<SparseFeatures>>,
    threads: usize,
    dot: DotKind,
    metrics: Option<&MetricsRegistry>,
    on_drained: impl FnOnce(&QueueState),
) -> (Vec<OnceLock<SparseFeatures>>, Vec<f64>) {
    let n = graphs.len();
    let slots: Vec<OnceLock<SparseFeatures>> = (0..n).map(|_| OnceLock::new()).collect();
    let start = Instant::now();
    let mut to_extract: Vec<usize> = Vec::new();
    let mut completed: Vec<usize> = Vec::new();
    for (i, seed) in seeds.into_iter().enumerate() {
        match seed {
            Some(f) => {
                assert!(slots[i].set(f).is_ok(), "seed slot set once");
                completed.push(i);
            }
            None => to_extract.push(i),
        }
    }
    // Pairs among the seeded features are runnable from the start.
    let mut ready: Vec<DotTask> = Vec::new();
    for (a, &i) in completed.iter().enumerate() {
        for &j in &completed[a..] {
            ready.push((i.min(j), i.max(j), start));
        }
    }
    let queue = DotQueue {
        state: Mutex::new(QueueState {
            features_done: if to_extract.is_empty() {
                Some(start)
            } else {
                None
            },
            completed,
            ready,
        }),
        cv: Condvar::new(),
    };
    let next = AtomicUsize::new(0);
    let lag = metrics.map(|m| m.counter("kernel/ready_lag_ns"));
    let dots: Vec<Vec<(usize, usize, f64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let queue = &queue;
                let slots = &slots;
                let to_extract = &to_extract;
                let lag = lag.clone();
                s.spawn(move || {
                    // Features first: a new feature unlocks up to n dot
                    // products, so extraction is always the critical path.
                    extract_features(
                        kernel,
                        graphs,
                        slots,
                        next,
                        metrics,
                        Some((queue, to_extract, n)),
                    );
                    // Then drain dot products until every pair has been
                    // handed out. Sleeping is only possible while features
                    // remain outstanding, and every completion broadcasts,
                    // so no worker can sleep past the last enqueue.
                    let mut local: Vec<(usize, usize, f64)> = Vec::new();
                    loop {
                        let task = {
                            let mut st = queue.state.lock().expect("dot queue poisoned");
                            loop {
                                if let Some(t) = st.ready.pop() {
                                    break Some(t);
                                }
                                if st.completed.len() == n {
                                    break None;
                                }
                                st = queue.cv.wait(st).expect("dot queue poisoned");
                            }
                        };
                        let Some((i, j, runnable_at)) = task else {
                            break;
                        };
                        if let Some(lag) = &lag {
                            lag.add(runnable_at.elapsed().as_nanos() as u64);
                        }
                        let fi = slots[i].get().expect("operand i ready");
                        let fj = slots[j].get().expect("operand j ready");
                        local.push((i, j, dot.dot(fi, fj)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pipeline worker panicked"))
            .collect()
    });
    on_drained(&queue.state.lock().expect("dot queue poisoned"));
    let mut values = vec![0.0; n * n];
    for chunk in dots {
        for (i, j, v) in chunk {
            values[i * n + j] = v;
            values[j * n + i] = v;
        }
    }
    (slots, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{gram_matrix, parallel_features};
    use crate::wl::WlKernel;
    use anacin_mpisim::prelude::*;

    fn race_graphs(count: u64, nd: f64) -> Vec<EventGraph> {
        (0..count)
            .map(|seed| {
                let mut b = ProgramBuilder::new(6);
                for r in 1..6 {
                    b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
                }
                for _ in 1..6 {
                    b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
                }
                let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
                EventGraph::from_trace(&t)
            })
            .collect()
    }

    #[test]
    fn pipelined_equals_barrier_for_all_small_sizes() {
        let all = race_graphs(9, 100.0);
        let k = WlKernel::default();
        for n in 0..=9 {
            let graphs = &all[..n];
            let barrier = gram_matrix(&k, graphs, 4);
            for threads in [1, 2, 8] {
                let m = gram_pipelined(&k, graphs, threads);
                assert_eq!(m, barrier, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn seeded_pipeline_matches_unseeded() {
        let graphs = race_graphs(7, 100.0);
        let k = WlKernel::default();
        let feats = parallel_features(&k, &graphs, 2);
        let barrier = gram_matrix(&k, &graphs, 2);
        // Seed every subset shape: none, alternating, all.
        for pattern in 0..3u32 {
            let seeds: Vec<Option<SparseFeatures>> = feats
                .iter()
                .enumerate()
                .map(|(i, f)| match pattern {
                    0 => None,
                    1 if i % 2 == 0 => Some(f.clone()),
                    1 => None,
                    _ => Some(f.clone()),
                })
                .collect();
            let (out_feats, m) = gram_pipelined_seeded_with_metrics(&k, &graphs, seeds, 3, None);
            assert_eq!(out_feats, feats, "pattern={pattern}");
            assert_eq!(m, barrier, "pattern={pattern}");
        }
    }

    #[test]
    fn pipelined_blocked_dot_equals_scalar_barrier() {
        let graphs = race_graphs(7, 100.0);
        let k = WlKernel::default();
        let barrier = gram_matrix(&k, &graphs, 1);
        for threads in [1, 2, 8] {
            let seeds = (0..graphs.len()).map(|_| None).collect();
            let (_, m) =
                gram_pipelined_seeded_with_dot(&k, &graphs, seeds, threads, DotKind::Blocked, None);
            assert_eq!(m, barrier, "threads={threads}");
        }
    }

    #[test]
    fn pipeline_metrics_account_for_all_tasks() {
        let graphs = race_graphs(6, 100.0);
        let reg = anacin_obs::MetricsRegistry::new();
        let k = WlKernel::default();
        let m = gram_pipelined_with_metrics(&k, &graphs, 2, Some(&reg));
        assert_eq!(m.len(), 6);
        let report = reg.report();
        assert_eq!(report.counter("kernel/features"), Some(6));
        assert_eq!(report.counter("kernel/dot_products"), Some(6 * 7 / 2));
        assert_eq!(report.counter("kernel/pipeline_tasks"), Some(6 + 6 * 7 / 2));
        assert!(report.counter("kernel/ready_lag_ns").is_some());
        assert!(report.span("pipeline").is_some());
        assert!(report.span("pipeline/features").is_some());
        assert!(report.span("pipeline/gram").is_some());
    }

    #[test]
    fn seeded_metrics_count_only_extracted_features() {
        let graphs = race_graphs(5, 100.0);
        let k = WlKernel::default();
        let feats = parallel_features(&k, &graphs, 1);
        let seeds: Vec<Option<SparseFeatures>> = feats
            .iter()
            .enumerate()
            .map(|(i, f)| (i < 3).then(|| f.clone()))
            .collect();
        let reg = anacin_obs::MetricsRegistry::new();
        let _ = gram_pipelined_seeded_with_metrics(&k, &graphs, seeds, 2, Some(&reg));
        let report = reg.report();
        assert_eq!(report.counter("kernel/features"), Some(2));
        assert_eq!(report.counter("kernel/dot_products"), Some(5 * 6 / 2));
        assert_eq!(report.counter("kernel/pipeline_tasks"), Some(2 + 15));
    }

    #[test]
    fn empty_sample_pipelined() {
        let m = gram_pipelined(&WlKernel::default(), &[], 4);
        assert!(m.is_empty());
    }
}
