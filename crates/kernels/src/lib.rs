//! # anacin-kernels
//!
//! Graph kernels and kernel distances over event graphs — the measurement
//! core of the ANACIN-X methodology. A kernel distance between the event
//! graphs of two runs of the same program is the paper's scalar proxy for
//! the amount of communication non-determinism between them.
//!
//! Implemented kernels (all with explicit feature maps):
//!
//! * [`wl::WlKernel`] — Weisfeiler–Lehman subtree (the ANACIN-X default);
//! * [`histogram::VertexHistogramKernel`], [`histogram::EdgeHistogramKernel`]
//!   — cheap baselines, blind to pure match reordering (ablation);
//! * [`shortest_path::ShortestPathKernel`] — bounded-horizon SP kernel;
//! * [`graphlet::GraphletKernel`] — label-free sampled 3-graphlets.
//!
//! [`matrix::gram_matrix`] computes kernel matrices over run samples in
//! parallel; [`distance::kernel_distance`] turns kernel values into RKHS
//! distances.
//!
//! ```
//! use anacin_mpisim::prelude::*;
//! use anacin_event_graph::EventGraph;
//! use anacin_kernels::prelude::*;
//!
//! // Two runs of a 4-rank message race at 100% non-determinism.
//! let graphs: Vec<EventGraph> = (0..2).map(|seed| {
//!     let mut b = ProgramBuilder::new(4);
//!     for r in 1..4 { b.rank(Rank(r)).send(Rank(0), Tag(0), 1); }
//!     for _ in 1..4 { b.rank(Rank(0)).recv_any(TagSpec::Any); }
//!     let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap();
//!     EventGraph::from_trace(&t)
//! }).collect();
//!
//! let m = gram_matrix(&WlKernel::default(), &graphs, 2);
//! let d = m.distance(0, 1);
//! assert!(d >= 0.0); // 0 iff the two runs matched messages identically
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod artifact;
pub mod distance;
pub mod embed;
pub mod feature;
pub mod graphlet;
pub mod histogram;
pub mod kernel;
pub mod matrix;
pub mod pipeline;
pub mod shortest_path;
pub mod wl;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::approx::{landmark_gram, landmark_indices, ApproxGram};
    pub use crate::distance::{distance, kernel_distance, normalized_kernel};
    pub use crate::embed::{embedded_distance, mds, mds_from_distances, Embedding};
    pub use crate::feature::{DotKind, SparseFeatures};
    pub use crate::graphlet::GraphletKernel;
    pub use crate::histogram::{EdgeHistogramKernel, VertexHistogramKernel};
    pub use crate::kernel::GraphKernel;
    pub use crate::matrix::{
        gram_append, gram_from_features_with_dot, gram_from_features_with_metrics, gram_matrix,
        gram_matrix_with_metrics, parallel_features, parallel_features_with_metrics, KernelMatrix,
    };
    pub use crate::pipeline::{
        gram_pipelined, gram_pipelined_seeded_with_dot, gram_pipelined_seeded_with_metrics,
        gram_pipelined_with_metrics,
    };
    pub use crate::shortest_path::ShortestPathKernel;
    pub use crate::wl::WlKernel;
}

pub use distance::kernel_distance;
pub use kernel::GraphKernel;
pub use matrix::{gram_matrix, KernelMatrix};
pub use wl::WlKernel;
