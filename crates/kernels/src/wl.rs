//! The Weisfeiler–Lehman subtree kernel.
//!
//! The kernel ANACIN-X uses for its headline measurements. Starting from a
//! node-label policy, `h` rounds of WL relabelling replace each node's
//! label with a hash of `(own label, sorted incoming-neighbour labels,
//! sorted outgoing-neighbour labels)`; the feature map counts every label
//! observed at every round. Two runs whose receives matched different
//! senders produce different label distributions within `h` hops of the
//! divergent receives, so the WL kernel distance grows with the amount of
//! communication reordering — the paper's proxy metric for
//! non-determinism.
//!
//! Direction is respected (in- and out-neighbourhoods hashed separately),
//! matching the directed nature of event graphs.
//!
//! # Label interning
//!
//! Feature extraction runs through a [`LabelInterner`]: after each round
//! the raw 64-bit labels are compressed to dense `u32` ids (the classic
//! label-compression step of Shervashidze et al.), and all per-round
//! scratch — neighbour-contribution buffers, the sort buffer, the round's
//! label table — lives in one arena owned by the extraction call and is
//! reused across all `iterations` rounds. Dense ids are assigned in sorted
//! `u64` order, so `table[dense[v]]` recovers each node's canonical label
//! and dense-id comparisons agree with raw-label comparisons. The emitted
//! [`SparseFeatures`] are byte-identical to the historical
//! one-`Vec`-per-node implementation (kept under `#[cfg(test)]` as the
//! differential oracle), so store fingerprints and artifact bytes are
//! unchanged.

use crate::feature::SparseFeatures;
use crate::kernel::GraphKernel;
use anacin_event_graph::label::{fnv1a_words, initial_labels, LabelPolicy};
use anacin_event_graph::{EdgeKind, EventGraph};

/// Weisfeiler–Lehman subtree kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WlKernel {
    /// Number of relabelling iterations. `0` degenerates to the vertex
    /// histogram kernel over the initial labels.
    pub iterations: u32,
    /// Initial node-label policy.
    pub policy: LabelPolicy,
    /// When true, a neighbour's contribution to the relabelling hash is
    /// paired with the connecting edge's kind, so a program-order
    /// neighbour and a message neighbour with the same label are
    /// distinguished. Slightly more discriminating, slightly costlier.
    pub edge_sensitive: bool,
}

impl Default for WlKernel {
    fn default() -> Self {
        WlKernel {
            iterations: 3,
            policy: LabelPolicy::default(),
            edge_sensitive: false,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Independent FNV chains hashed in interleaved lanes during relabelling.
/// Widened 4 → 8: each chain is a serial xor-multiply dependency, so more
/// independent chains give the out-of-order core more latency to hide; 8
/// lanes still fit comfortably in registers. `bench baseline` carries a
/// 4-vs-8 A/B column (`wl_lanes4_ms`/`wl_lanes8_ms`), and
/// [`WlKernel::features_with_lanes`] is the harness surface for it. Lane
/// count cannot change a bit of any label: lanes only interleave
/// *independent* chains, each folding its node's exact historical byte
/// sequence.
const LANES: usize = 8;

/// Nodes per relabelling shard. Bounds the gather buffer at one shard's
/// word streams (own label + two separators + degree words per node) —
/// a few hundred KiB for typical event graphs — independent of total
/// graph size. Must be a multiple of [`LANES`] so every full shard hits
/// the interleaved fast path.
const SHARD_NODES: usize = 4096;

/// One FNV-1a step: fold a `u64` word into state `h`, byte by byte —
/// exactly what [`fnv1a_words`] does per word, so folding a node's word
/// sequence through this reproduces its digest bit-for-bit.
#[inline]
fn absorb_word(mut h: u64, w: u64) -> u64 {
    for b in w.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Phase 2 of a relabelling shard: hash `L` nodes' word streams as
/// interleaved independent FNV chains, writing digests into `out` (one
/// slot per node in the shard). Returns the number of nodes hashed — the
/// largest multiple of `L` not exceeding the shard's node count; the
/// caller hashes the remaining tail serially. Monomorphised per lane
/// width so the state array lives in registers at both the production
/// width and the bench A/B width.
fn hash_interleaved<const L: usize>(words: &[u64], word_ends: &[u32], out: &mut [u64]) -> usize {
    let n = word_ends.len();
    let range = |i: usize| -> (usize, usize) {
        let s = if i == 0 { 0 } else { word_ends[i - 1] as usize };
        (s, word_ends[i] as usize)
    };
    let mut node = 0usize;
    while node + L <= n {
        let mut starts = [0usize; L];
        let mut lens = [0usize; L];
        let mut states = [FNV_OFFSET; L];
        let mut max_len = 0usize;
        for (l, (start, len)) in starts.iter_mut().zip(lens.iter_mut()).enumerate() {
            let (s, e) = range(node + l);
            *start = s;
            *len = e - s;
            max_len = max_len.max(e - s);
        }
        for pos in 0..max_len {
            for l in 0..L {
                if pos < lens[l] {
                    states[l] = absorb_word(states[l], words[starts[l] + pos]);
                }
            }
        }
        out[node..node + L].copy_from_slice(&states);
        node += L;
    }
    node
}

/// Streaming FNV-1a over `u64` words. `absorb` word-by-word produces
/// exactly the digest [`fnv1a_words`] yields over the concatenated slice,
/// so relabelling never materialises a per-node word `Vec`.
struct WordHasher(u64);

impl WordHasher {
    fn new() -> Self {
        WordHasher(FNV_OFFSET)
    }

    #[inline]
    fn absorb(&mut self, w: u64) {
        self.0 = absorb_word(self.0, w);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Per-graph arena for WL refinement: the current round's dense labels,
/// the dense→`u64` label table, per-kind contribution tables, and every
/// scratch buffer a relabelling round needs. One allocation set serves all
/// `iterations` rounds of one extraction call.
struct LabelInterner {
    /// Dense label id per node for the current round.
    dense: Vec<u32>,
    /// Canonical `u64` label per dense id, ascending — so dense-id order
    /// equals raw-label order and lookups are a binary search away.
    table: Vec<u64>,
    /// Contribution of each dense id through a Program edge (edge-sensitive
    /// mode only; computed once per round instead of once per edge).
    contrib_program: Vec<u64>,
    /// Contribution of each dense id through a Message edge.
    contrib_message: Vec<u64>,
    /// Raw `u64` labels of the round being built.
    raw: Vec<u64>,
    /// Flattened word streams for the round: every node's hash input
    /// `[own, MAX, sorted in, MAX−1, sorted out]` back to back.
    words: Vec<u64>,
    /// Exclusive end offset of each node's word range in `words`.
    word_ends: Vec<u32>,
    /// Argsort buffer for interning: `(label, node)` pairs.
    sort_buf: Vec<(u64, u32)>,
}

impl LabelInterner {
    fn new(nodes: usize) -> Self {
        LabelInterner {
            dense: vec![0; nodes],
            table: Vec::new(),
            contrib_program: Vec::new(),
            contrib_message: Vec::new(),
            raw: Vec::new(),
            words: Vec::new(),
            word_ends: Vec::new(),
            sort_buf: Vec::new(),
        }
    }

    /// Compress `self.raw` into dense ids: the table is the sorted,
    /// deduplicated label set and each node's dense id is its label's rank
    /// within it. One argsort of `(label, node)` pairs yields table and
    /// per-node ranks in a single pass — no per-node binary search.
    fn intern(&mut self) {
        self.sort_buf.clear();
        self.sort_buf
            .extend(self.raw.iter().enumerate().map(|(i, &l)| (l, i as u32)));
        self.sort_buf.sort_unstable();
        self.table.clear();
        let mut last: Option<u64> = None;
        for &(l, i) in &self.sort_buf {
            if last != Some(l) {
                self.table.push(l);
                last = Some(l);
            }
            self.dense[i as usize] = (self.table.len() - 1) as u32;
        }
    }

    /// One relabelling round over dense labels, writing the next round's
    /// raw labels into `self.raw`, processed `shard` nodes at a time with
    /// `lanes` interleaved hash chains. The hashed word sequence per node
    /// is exactly the historical `[own, MAX, sorted in, MAX−1, sorted
    /// out]`, so the output labels are bit-identical to the uninterned
    /// path at any shard size or lane width.
    ///
    /// Each shard runs two phases: flatten the shard's word streams into
    /// the arena buffer, then hash several nodes' streams as independent
    /// lanes. The FNV fold is a serial xor-multiply chain per node, so
    /// hashing one node at a time is latency-bound; interleaved lanes give
    /// the out-of-order core independent chains to overlap, without
    /// changing any lane's byte sequence. Sharding keeps `words` at
    /// O(shard's edges) rather than O(graph's edges) — the difference
    /// between a transient scratch buffer and a second copy of the graph
    /// at multi-million-node scale — and cannot change any label: every
    /// node's word stream is byte-identical regardless of which shard
    /// gathers it.
    fn relabel_sharded_lanes(
        &mut self,
        g: &EventGraph,
        edge_sensitive: bool,
        shard: usize,
        lanes: usize,
    ) {
        assert!(
            shard > 0 && shard.is_multiple_of(lanes),
            "shard must be a multiple of the lane width"
        );
        assert!(lanes == 4 || lanes == 8, "lane width must be 4 or 8");
        self.contrib_program.clear();
        self.contrib_message.clear();
        if edge_sensitive {
            for &l in &self.table {
                self.contrib_program.push(fnv1a_words(&[l, 1]));
                self.contrib_message.push(fnv1a_words(&[l, 2]));
            }
        }
        let words = &mut self.words;
        let word_ends = &mut self.word_ends;
        let dense = &self.dense;
        let table = &self.table;
        let (cp, cm) = (&self.contrib_program, &self.contrib_message);
        let contrib = |n: anacin_event_graph::NodeId, k: EdgeKind| {
            let d = dense[n.index()] as usize;
            if edge_sensitive {
                match k {
                    EdgeKind::Program => cp[d],
                    EdgeKind::Message => cm[d],
                }
            } else {
                table[d]
            }
        };
        let total = g.node_count();
        let mut shard_start = 0usize;
        while shard_start < total {
            let shard_end = (shard_start + shard).min(total);
            // Phase 1: gather this shard. Neighbour contributions are
            // pushed straight into the flat buffer and each in-/out-range
            // sorted in place. `word_ends[i]` is node `shard_start + i`'s
            // exclusive end within the shard-local `words`.
            words.clear();
            word_ends.clear();
            for idx in shard_start..shard_end {
                let id = anacin_event_graph::NodeId(idx as u32);
                words.push(table[dense[idx] as usize]);
                words.push(u64::MAX); // separator
                let s = words.len();
                words.extend(g.in_edges(id).iter().map(|&(n, k)| contrib(n, k)));
                words[s..].sort_unstable();
                words.push(u64::MAX - 1); // separator
                let s = words.len();
                words.extend(g.out_edges(id).iter().map(|&(n, k)| contrib(n, k)));
                words[s..].sort_unstable();
                word_ends.push(words.len() as u32);
            }
            // Phase 2: hash `lanes` nodes at a time, then the tail serially.
            let n = word_ends.len();
            let out = &mut self.raw[shard_start..shard_start + n];
            let mut node = match lanes {
                4 => hash_interleaved::<4>(words, word_ends, out),
                _ => hash_interleaved::<8>(words, word_ends, out),
            };
            while node < n {
                let s = if node == 0 {
                    0
                } else {
                    word_ends[node - 1] as usize
                };
                let e = word_ends[node] as usize;
                let mut h = WordHasher::new();
                for &w in &words[s..e] {
                    h.absorb(w);
                }
                out[node] = h.finish();
                node += 1;
            }
            shard_start = shard_end;
        }
    }
}

impl WlKernel {
    /// A WL kernel with `iterations` rounds and the default label policy.
    pub fn with_iterations(iterations: u32) -> Self {
        WlKernel {
            iterations,
            ..WlKernel::default()
        }
    }

    /// Drive the interned refinement, invoking `visit(round, table, dense)`
    /// once per round (round 0 = initial labels). `table[dense[v]]` is node
    /// `v`'s canonical `u64` label for that round.
    fn for_each_round(&self, g: &EventGraph, visit: impl FnMut(usize, &[u64], &[u32])) {
        self.for_each_round_lanes(g, LANES, visit);
    }

    fn for_each_round_lanes(
        &self,
        g: &EventGraph,
        lanes: usize,
        mut visit: impl FnMut(usize, &[u64], &[u32]),
    ) {
        let mut arena = LabelInterner::new(g.node_count());
        arena.raw = initial_labels(g, self.policy);
        arena.intern();
        visit(0, &arena.table, &arena.dense);
        for round in 1..=self.iterations {
            arena.relabel_sharded_lanes(g, self.edge_sensitive, SHARD_NODES, lanes);
            arena.intern();
            visit(round as usize, &arena.table, &arena.dense);
        }
    }

    /// [`GraphKernel::features`] with an explicit interleave width (4 or
    /// 8): the `bench baseline` A/B surface for the lane-width column.
    /// The production path always uses [`LANES`]; the output is
    /// bit-identical at either width, because lanes only interleave
    /// independent per-node FNV chains.
    #[doc(hidden)]
    pub fn features_with_lanes(&self, g: &EventGraph, lanes: usize) -> SparseFeatures {
        let mut pairs: Vec<(u64, f64)> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        self.for_each_round_lanes(g, lanes, |round, table, dense| {
            // One histogram entry per *distinct* label, not per node: adding
            // the count `c` once equals adding 1.0 `c` times exactly
            // (integer f64 arithmetic below 2^53), and the canonical `u64`
            // feature key is expanded from the table only here.
            counts.clear();
            counts.resize(table.len(), 0);
            for &d in dense {
                counts[d as usize] += 1;
            }
            for (d, &c) in counts.iter().enumerate() {
                // Salt the label with the round index so the same hash at
                // different rounds is a different feature (standard WL).
                pairs.push((fnv1a_words(&[round as u64, table[d]]), c as f64));
            }
        });
        // Bulk build: one sort over all rounds' (key, count) pairs instead
        // of a map insert per key — the keys are hashes, so insertion order
        // is random and per-key inserts would miss cache on nearly all of
        // them. Counts are exact integers, so duplicate keys (cross-round
        // hash collisions) may sum in any order without changing a bit.
        SparseFeatures::from_commutative_pairs(pairs)
    }

    /// The label sequence over all rounds (round 0 = initial labels).
    /// Exposed for tests and for the root-cause machinery, which needs
    /// per-node WL labels rather than aggregated counts.
    pub fn label_rounds(&self, g: &EventGraph) -> Vec<Vec<u64>> {
        let mut rounds = Vec::with_capacity(self.iterations as usize + 1);
        self.for_each_round(g, |_, table, dense| {
            rounds.push(dense.iter().map(|&d| table[d as usize]).collect());
        });
        rounds
    }
}

impl GraphKernel for WlKernel {
    fn name(&self) -> String {
        format!(
            "wl(h={},{:?}{})",
            self.iterations,
            self.policy,
            if self.edge_sensitive { ",edges" } else { "" }
        )
    }

    fn features(&self, g: &EventGraph) -> SparseFeatures {
        self.features_with_lanes(g, LANES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::kernel_distance;
    use anacin_event_graph::EventGraph;
    use anacin_mpisim::prelude::*;

    /// The pre-interner relabelling round, verbatim: the differential
    /// oracle for the arena/interner implementation above.
    fn relabel_legacy(g: &EventGraph, labels: &[u64], edge_sensitive: bool) -> Vec<u64> {
        let contrib = |label: u64, kind: EdgeKind| -> u64 {
            if edge_sensitive {
                let k = match kind {
                    EdgeKind::Program => 1u64,
                    EdgeKind::Message => 2u64,
                };
                fnv1a_words(&[label, k])
            } else {
                label
            }
        };
        let mut next = Vec::with_capacity(labels.len());
        let mut scratch_in: Vec<u64> = Vec::new();
        let mut scratch_out: Vec<u64> = Vec::new();
        for id in g.node_ids() {
            scratch_in.clear();
            scratch_out.clear();
            scratch_in.extend(
                g.in_edges(id)
                    .iter()
                    .map(|&(n, k)| contrib(labels[n.index()], k)),
            );
            scratch_out.extend(
                g.out_edges(id)
                    .iter()
                    .map(|&(n, k)| contrib(labels[n.index()], k)),
            );
            scratch_in.sort_unstable();
            scratch_out.sort_unstable();
            let mut words = Vec::with_capacity(scratch_in.len() + scratch_out.len() + 3);
            words.push(labels[id.index()]);
            words.push(u64::MAX);
            words.extend_from_slice(&scratch_in);
            words.push(u64::MAX - 1);
            words.extend_from_slice(&scratch_out);
            next.push(fnv1a_words(&words));
        }
        next
    }

    fn label_rounds_legacy(k: &WlKernel, g: &EventGraph) -> Vec<Vec<u64>> {
        let mut rounds = Vec::with_capacity(k.iterations as usize + 1);
        rounds.push(initial_labels(g, k.policy));
        for _ in 0..k.iterations {
            let next = relabel_legacy(g, rounds.last().expect("nonempty"), k.edge_sensitive);
            rounds.push(next);
        }
        rounds
    }

    fn features_legacy(k: &WlKernel, g: &EventGraph) -> SparseFeatures {
        let mut f = SparseFeatures::new();
        for (round, labels) in label_rounds_legacy(k, g).into_iter().enumerate() {
            for l in labels {
                f.bump(fnv1a_words(&[round as u64, l]));
            }
        }
        f
    }

    fn race_graph(n: u32, nd: f64, seed: u64) -> EventGraph {
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn sharded_relabel_is_shard_size_invariant() {
        // A 40-rank race graph has 158 nodes: several full shards plus a
        // partial tail at the small shard sizes below. Every shard size —
        // including the production one, which covers the graph in a single
        // shard here — must agree with the legacy oracle on every round.
        let g = race_graph(40, 100.0, 9);
        assert!(g.node_count() > 64, "graph must span multiple small shards");
        for edge_sensitive in [false, true] {
            let init = initial_labels(&g, LabelPolicy::TypeAndPeer);
            let legacy1 = relabel_legacy(&g, &init, edge_sensitive);
            let legacy2 = relabel_legacy(&g, &legacy1, edge_sensitive);
            for lanes in [4, 8] {
                for shard in [8, 16, 64, SHARD_NODES] {
                    let mut arena = LabelInterner::new(g.node_count());
                    arena.raw = init.clone();
                    arena.intern();
                    arena.relabel_sharded_lanes(&g, edge_sensitive, shard, lanes);
                    assert_eq!(arena.raw, legacy1, "round 1, shard={shard}, lanes={lanes}");
                    arena.intern();
                    arena.relabel_sharded_lanes(&g, edge_sensitive, shard, lanes);
                    assert_eq!(arena.raw, legacy2, "round 2, shard={shard}, lanes={lanes}");
                }
            }
        }
    }

    #[test]
    fn lane_width_never_changes_features() {
        // The bench A/B surface must be measuring the same computation:
        // 4-lane and 8-lane extraction agree bit-for-bit with each other,
        // with the production path, and with the legacy oracle.
        for seed in 0..4 {
            let g = race_graph(7, 100.0, seed);
            for edge_sensitive in [false, true] {
                let k = WlKernel {
                    iterations: 3,
                    policy: LabelPolicy::TypeAndPeer,
                    edge_sensitive,
                };
                let four = k.features_with_lanes(&g, 4);
                let eight = k.features_with_lanes(&g, 8);
                assert_eq!(four, eight, "edges={edge_sensitive} seed={seed}");
                assert_eq!(eight, k.features(&g));
                assert_eq!(eight, features_legacy(&k, &g));
            }
        }
    }

    #[test]
    fn word_hasher_matches_fnv1a_words() {
        for words in [
            &[][..],
            &[0u64][..],
            &[1, 2, 3][..],
            &[u64::MAX, 0, u64::MAX - 1, 42][..],
        ] {
            let mut h = WordHasher::new();
            for &w in words {
                h.absorb(w);
            }
            assert_eq!(h.finish(), fnv1a_words(words));
        }
    }

    #[test]
    fn interned_features_match_legacy_oracle() {
        // The full configuration sweep: every label policy, both edge
        // modes, several iteration depths, deterministic and racy graphs.
        let policies = [
            LabelPolicy::EventType,
            LabelPolicy::TypeAndPeer,
            LabelPolicy::RankAndType,
            LabelPolicy::RankTypePeer,
            LabelPolicy::Callstack,
        ];
        for seed in 0..4 {
            let g = race_graph(5, 100.0, seed);
            for policy in policies {
                for edge_sensitive in [false, true] {
                    for iterations in [0, 1, 3, 5] {
                        let k = WlKernel {
                            iterations,
                            policy,
                            edge_sensitive,
                        };
                        assert_eq!(
                            k.features(&g),
                            features_legacy(&k, &g),
                            "policy={policy:?} edges={edge_sensitive} h={iterations}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interned_label_rounds_match_legacy_oracle() {
        for seed in 0..4 {
            let g = race_graph(6, 100.0, seed);
            for edge_sensitive in [false, true] {
                let k = WlKernel {
                    iterations: 4,
                    policy: LabelPolicy::TypeAndPeer,
                    edge_sensitive,
                };
                assert_eq!(k.label_rounds(&g), label_rounds_legacy(&k, &g));
            }
        }
    }

    #[test]
    fn h0_feature_count_equals_node_count() {
        let g = race_graph(4, 0.0, 0);
        let k = WlKernel {
            iterations: 0,
            policy: LabelPolicy::EventType,
            edge_sensitive: false,
        };
        let f = k.features(&g);
        let total: f64 = f.iter().map(|(_, w)| w).sum();
        assert_eq!(total, g.node_count() as f64);
        // Four event classes present.
        assert_eq!(f.nnz(), 4);
    }

    #[test]
    fn feature_total_is_nodes_times_rounds() {
        let g = race_graph(5, 0.0, 0);
        let k = WlKernel::with_iterations(3);
        let f = k.features(&g);
        let total: f64 = f.iter().map(|(_, w)| w).sum();
        assert_eq!(total, (g.node_count() * 4) as f64);
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let g1 = race_graph(6, 100.0, 42);
        let g2 = race_graph(6, 100.0, 42);
        let k = WlKernel::default();
        let d = kernel_distance(k.value(&g1, &g1), k.value(&g2, &g2), k.value(&g1, &g2));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn reordered_matches_have_positive_distance_under_peer_labels() {
        let base = race_graph(6, 100.0, 0);
        let mut other = None;
        for seed in 1..60 {
            let g = race_graph(6, 100.0, seed);
            if g.match_order(Rank(0)) != base.match_order(Rank(0)) {
                other = Some(g);
                break;
            }
        }
        let other = other.expect("expected a reordering seed");
        let k = WlKernel {
            iterations: 2,
            policy: LabelPolicy::TypeAndPeer,
            edge_sensitive: false,
        };
        let d = kernel_distance(
            k.value(&base, &base),
            k.value(&other, &other),
            k.value(&base, &other),
        );
        assert!(d > 0.0, "WL must see the reordering");
    }

    #[test]
    fn event_type_labels_blind_to_pure_sender_permutation() {
        // The message-race senders are structurally identical, so two runs
        // differing only in match order are isomorphic; with
        // permutation-invariant labels WL cannot (and should not)
        // distinguish them. This is exactly why ANACIN-X uses richer
        // labels — demonstrated here and in the ablation bench.
        let base = race_graph(6, 100.0, 0);
        let mut other = None;
        for seed in 1..60 {
            let g = race_graph(6, 100.0, seed);
            if g.match_order(Rank(0)) != base.match_order(Rank(0)) {
                other = Some(g);
                break;
            }
        }
        let other = other.expect("expected a reordering seed");
        let k = WlKernel {
            iterations: 3,
            policy: LabelPolicy::EventType,
            edge_sensitive: false,
        };
        let d = kernel_distance(
            k.value(&base, &base),
            k.value(&other, &other),
            k.value(&base, &other),
        );
        assert!(
            d.abs() < 1e-9,
            "pure sender permutations are isomorphic; got {d}"
        );
    }

    #[test]
    fn more_iterations_never_decrease_self_similarity() {
        let g = race_graph(5, 100.0, 3);
        let mut prev = 0.0;
        for h in 0..5 {
            let k = WlKernel::with_iterations(h);
            let v = k.value(&g, &g);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn label_rounds_shape() {
        let g = race_graph(4, 0.0, 0);
        let k = WlKernel::with_iterations(2);
        let rounds = k.label_rounds(&g);
        assert_eq!(rounds.len(), 3);
        for r in &rounds {
            assert_eq!(r.len(), g.node_count());
        }
        // Round 1 must refine round 0: at least as many distinct labels.
        let distinct = |v: &Vec<u64>| v.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct(&rounds[1]) >= distinct(&rounds[0]));
    }

    #[test]
    fn empty_graph_features_are_empty() {
        let b = ProgramBuilder::new(1);
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(0.0, 0)).unwrap();
        let g = EventGraph::from_trace(&t);
        let k = WlKernel::default();
        assert_eq!(k.features(&g), features_legacy(&k, &g));
    }

    #[test]
    fn kernel_name_mentions_config() {
        let k = WlKernel::default();
        assert!(k.name().starts_with("wl(h=3"));
    }

    mod generated {
        use super::*;
        use proptest::prelude::*;

        const POLICIES: [LabelPolicy; 5] = [
            LabelPolicy::EventType,
            LabelPolicy::TypeAndPeer,
            LabelPolicy::RankAndType,
            LabelPolicy::RankTypePeer,
            LabelPolicy::Callstack,
        ];

        fn message_graph(msgs: &[(u32, u32)], nd: f64, seed: u64) -> EventGraph {
            let world = 6u32;
            let mut b = ProgramBuilder::new(world);
            let mut inbound = vec![0u32; world as usize];
            for &(src, dst) in msgs {
                b.rank(Rank(src)).send(Rank(dst), Tag(0), 8);
                inbound[dst as usize] += 1;
            }
            for (r, &n) in inbound.iter().enumerate() {
                for _ in 0..n {
                    b.rank(Rank(r as u32)).recv_any(TagSpec::Tag(Tag(0)));
                }
            }
            let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
            EventGraph::from_trace(&t)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The sharded, interned WL path is bit-identical to the
            /// legacy one-`Vec`-per-node oracle on randomly generated
            /// programs, across every label policy, both edge modes, and
            /// several refinement depths.
            #[test]
            fn bounded_memory_wl_matches_legacy_on_generated_programs(
                msgs in prop::collection::vec(
                    (0..6u32, 0..6u32).prop_filter("no self sends", |(s, d)| s != d),
                    0..24,
                ),
                nd in 0.0f64..=100.0,
                seed in 0u64..200,
                policy_idx in 0usize..5,
                edge_mode in 0u8..2,
                iterations in 0u32..4,
            ) {
                let edge_sensitive = edge_mode == 1;
                let g = message_graph(&msgs, nd, seed);
                let k = WlKernel {
                    iterations,
                    policy: POLICIES[policy_idx],
                    edge_sensitive,
                };
                prop_assert_eq!(k.features(&g), features_legacy(&k, &g));
                prop_assert_eq!(k.label_rounds(&g), label_rounds_legacy(&k, &g));
            }
        }
    }
}
