//! The Weisfeiler–Lehman subtree kernel.
//!
//! The kernel ANACIN-X uses for its headline measurements. Starting from a
//! node-label policy, `h` rounds of WL relabelling replace each node's
//! label with a hash of `(own label, sorted incoming-neighbour labels,
//! sorted outgoing-neighbour labels)`; the feature map counts every label
//! observed at every round. Two runs whose receives matched different
//! senders produce different label distributions within `h` hops of the
//! divergent receives, so the WL kernel distance grows with the amount of
//! communication reordering — the paper's proxy metric for
//! non-determinism.
//!
//! Direction is respected (in- and out-neighbourhoods hashed separately),
//! matching the directed nature of event graphs.

use crate::feature::SparseFeatures;
use crate::kernel::GraphKernel;
use anacin_event_graph::label::{fnv1a_words, initial_labels, LabelPolicy};
use anacin_event_graph::{EdgeKind, EventGraph};

/// Weisfeiler–Lehman subtree kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WlKernel {
    /// Number of relabelling iterations. `0` degenerates to the vertex
    /// histogram kernel over the initial labels.
    pub iterations: u32,
    /// Initial node-label policy.
    pub policy: LabelPolicy,
    /// When true, a neighbour's contribution to the relabelling hash is
    /// paired with the connecting edge's kind, so a program-order
    /// neighbour and a message neighbour with the same label are
    /// distinguished. Slightly more discriminating, slightly costlier.
    pub edge_sensitive: bool,
}

impl Default for WlKernel {
    fn default() -> Self {
        WlKernel {
            iterations: 3,
            policy: LabelPolicy::default(),
            edge_sensitive: false,
        }
    }
}

impl WlKernel {
    /// A WL kernel with `iterations` rounds and the default label policy.
    pub fn with_iterations(iterations: u32) -> Self {
        WlKernel {
            iterations,
            ..WlKernel::default()
        }
    }

    /// One WL relabelling round.
    fn relabel(g: &EventGraph, labels: &[u64], edge_sensitive: bool) -> Vec<u64> {
        let contrib = |label: u64, kind: EdgeKind| -> u64 {
            if edge_sensitive {
                let k = match kind {
                    EdgeKind::Program => 1u64,
                    EdgeKind::Message => 2u64,
                };
                fnv1a_words(&[label, k])
            } else {
                label
            }
        };
        let mut next = Vec::with_capacity(labels.len());
        let mut scratch_in: Vec<u64> = Vec::new();
        let mut scratch_out: Vec<u64> = Vec::new();
        for id in g.node_ids() {
            scratch_in.clear();
            scratch_out.clear();
            scratch_in.extend(
                g.in_edges(id)
                    .iter()
                    .map(|&(n, k)| contrib(labels[n.index()], k)),
            );
            scratch_out.extend(
                g.out_edges(id)
                    .iter()
                    .map(|&(n, k)| contrib(labels[n.index()], k)),
            );
            scratch_in.sort_unstable();
            scratch_out.sort_unstable();
            // Combine: own label, separator, in-multiset, separator,
            // out-multiset. The separators prevent ambiguity between the
            // two neighbourhoods.
            let mut words = Vec::with_capacity(scratch_in.len() + scratch_out.len() + 3);
            words.push(labels[id.index()]);
            words.push(u64::MAX); // separator
            words.extend_from_slice(&scratch_in);
            words.push(u64::MAX - 1); // separator
            words.extend_from_slice(&scratch_out);
            next.push(fnv1a_words(&words));
        }
        next
    }

    /// The label sequence over all rounds (round 0 = initial labels).
    /// Exposed for tests and for the root-cause machinery, which needs
    /// per-node WL labels rather than aggregated counts.
    pub fn label_rounds(&self, g: &EventGraph) -> Vec<Vec<u64>> {
        let mut rounds = Vec::with_capacity(self.iterations as usize + 1);
        rounds.push(initial_labels(g, self.policy));
        for _ in 0..self.iterations {
            let next = Self::relabel(g, rounds.last().expect("nonempty"), self.edge_sensitive);
            rounds.push(next);
        }
        rounds
    }
}

impl GraphKernel for WlKernel {
    fn name(&self) -> String {
        format!(
            "wl(h={},{:?}{})",
            self.iterations,
            self.policy,
            if self.edge_sensitive { ",edges" } else { "" }
        )
    }

    fn features(&self, g: &EventGraph) -> SparseFeatures {
        let mut f = SparseFeatures::new();
        for (round, labels) in self.label_rounds(g).into_iter().enumerate() {
            for l in labels {
                // Salt the label with the round index so the same hash at
                // different rounds is a different feature (standard WL).
                f.bump(fnv1a_words(&[round as u64, l]));
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::kernel_distance;
    use anacin_event_graph::EventGraph;
    use anacin_mpisim::prelude::*;

    fn race_graph(n: u32, nd: f64, seed: u64) -> EventGraph {
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn h0_feature_count_equals_node_count() {
        let g = race_graph(4, 0.0, 0);
        let k = WlKernel {
            iterations: 0,
            policy: LabelPolicy::EventType,
            edge_sensitive: false,
        };
        let f = k.features(&g);
        let total: f64 = f.iter().map(|(_, w)| w).sum();
        assert_eq!(total, g.node_count() as f64);
        // Four event classes present.
        assert_eq!(f.nnz(), 4);
    }

    #[test]
    fn feature_total_is_nodes_times_rounds() {
        let g = race_graph(5, 0.0, 0);
        let k = WlKernel::with_iterations(3);
        let f = k.features(&g);
        let total: f64 = f.iter().map(|(_, w)| w).sum();
        assert_eq!(total, (g.node_count() * 4) as f64);
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let g1 = race_graph(6, 100.0, 42);
        let g2 = race_graph(6, 100.0, 42);
        let k = WlKernel::default();
        let d = kernel_distance(k.value(&g1, &g1), k.value(&g2, &g2), k.value(&g1, &g2));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn reordered_matches_have_positive_distance_under_peer_labels() {
        let base = race_graph(6, 100.0, 0);
        let mut other = None;
        for seed in 1..60 {
            let g = race_graph(6, 100.0, seed);
            if g.match_order(Rank(0)) != base.match_order(Rank(0)) {
                other = Some(g);
                break;
            }
        }
        let other = other.expect("expected a reordering seed");
        let k = WlKernel {
            iterations: 2,
            policy: LabelPolicy::TypeAndPeer,
            edge_sensitive: false,
        };
        let d = kernel_distance(
            k.value(&base, &base),
            k.value(&other, &other),
            k.value(&base, &other),
        );
        assert!(d > 0.0, "WL must see the reordering");
    }

    #[test]
    fn event_type_labels_blind_to_pure_sender_permutation() {
        // The message-race senders are structurally identical, so two runs
        // differing only in match order are isomorphic; with
        // permutation-invariant labels WL cannot (and should not)
        // distinguish them. This is exactly why ANACIN-X uses richer
        // labels — demonstrated here and in the ablation bench.
        let base = race_graph(6, 100.0, 0);
        let mut other = None;
        for seed in 1..60 {
            let g = race_graph(6, 100.0, seed);
            if g.match_order(Rank(0)) != base.match_order(Rank(0)) {
                other = Some(g);
                break;
            }
        }
        let other = other.expect("expected a reordering seed");
        let k = WlKernel {
            iterations: 3,
            policy: LabelPolicy::EventType,
            edge_sensitive: false,
        };
        let d = kernel_distance(
            k.value(&base, &base),
            k.value(&other, &other),
            k.value(&base, &other),
        );
        assert!(
            d.abs() < 1e-9,
            "pure sender permutations are isomorphic; got {d}"
        );
    }

    #[test]
    fn more_iterations_never_decrease_self_similarity() {
        let g = race_graph(5, 100.0, 3);
        let mut prev = 0.0;
        for h in 0..5 {
            let k = WlKernel::with_iterations(h);
            let v = k.value(&g, &g);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn label_rounds_shape() {
        let g = race_graph(4, 0.0, 0);
        let k = WlKernel::with_iterations(2);
        let rounds = k.label_rounds(&g);
        assert_eq!(rounds.len(), 3);
        for r in &rounds {
            assert_eq!(r.len(), g.node_count());
        }
        // Round 1 must refine round 0: at least as many distinct labels.
        let distinct = |v: &Vec<u64>| v.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct(&rounds[1]) >= distinct(&rounds[0]));
    }

    #[test]
    fn kernel_name_mentions_config() {
        let k = WlKernel::default();
        assert!(k.name().starts_with("wl(h=3"));
    }
}
