//! The kernel abstraction.
//!
//! A *graph kernel* is an inner product in an implicit feature space
//! (formally, in a Reproducing Kernel Hilbert Space — paper §II-A). All
//! kernels implemented here have explicit feature maps, so the trait
//! exposes `features()` and derives the kernel value from dot products.

use crate::feature::SparseFeatures;
use anacin_event_graph::EventGraph;

/// A graph kernel with an explicit feature map.
pub trait GraphKernel: Send + Sync {
    /// Human-readable kernel name (used in reports and benches).
    fn name(&self) -> String;

    /// The explicit feature map φ(G).
    fn features(&self, g: &EventGraph) -> SparseFeatures;

    /// The kernel value k(G, H) = ⟨φ(G), φ(H)⟩.
    fn value(&self, g: &EventGraph, h: &EventGraph) -> f64 {
        self.features(g).dot(&self.features(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NodeCountKernel;

    impl GraphKernel for NodeCountKernel {
        fn name(&self) -> String {
            "node-count".to_string()
        }
        fn features(&self, g: &EventGraph) -> SparseFeatures {
            [(0u64, g.node_count() as f64)].into_iter().collect()
        }
    }

    #[test]
    fn value_is_feature_dot_product() {
        use anacin_mpisim::prelude::*;
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).send(Rank(1), Tag(0), 1);
        b.rank(Rank(1)).recv_any(TagSpec::Any);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        let g = anacin_event_graph::EventGraph::from_trace(&t);
        let k = NodeCountKernel;
        assert_eq!(k.value(&g, &g), (g.node_count() * g.node_count()) as f64);
        assert_eq!(k.name(), "node-count");
    }
}
