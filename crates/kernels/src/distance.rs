//! Kernel distances.
//!
//! The paper (§II-A): "we apply the kernel distance to event graphs, which
//! is calculated directly from a kernel and measures the difference
//! between the graphs … and thus serves as a proxy metric for
//! non-determinism." For a kernel `k` with feature map φ, the distance is
//! the RKHS norm `‖φ(G) − φ(H)‖ = √(k(G,G) + k(H,H) − 2·k(G,H))`.

use crate::kernel::GraphKernel;
use anacin_event_graph::EventGraph;

/// The RKHS distance from the three kernel evaluations.
///
/// Clamps tiny negative radicands caused by floating-point rounding.
#[inline]
pub fn kernel_distance(k_gg: f64, k_hh: f64, k_gh: f64) -> f64 {
    (k_gg + k_hh - 2.0 * k_gh).max(0.0).sqrt()
}

/// The normalised kernel value `k(G,H)/√(k(G,G)·k(H,H))` (cosine
/// similarity in feature space), in `[0, 1]` for non-negative features.
#[inline]
pub fn normalized_kernel(k_gg: f64, k_hh: f64, k_gh: f64) -> f64 {
    let denom = (k_gg * k_hh).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        k_gh / denom
    }
}

/// Distance between two graphs under `kernel` (computes features twice;
/// prefer [`crate::matrix`] when comparing many graphs).
pub fn distance(kernel: &dyn GraphKernel, g: &EventGraph, h: &EventGraph) -> f64 {
    let fg = kernel.features(g);
    let fh = kernel.features(h);
    kernel_distance(fg.norm_sq(), fh.norm_sq(), fg.dot(&fh))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wl::WlKernel;
    use anacin_mpisim::prelude::*;

    #[test]
    fn distance_formula() {
        assert_eq!(kernel_distance(4.0, 4.0, 4.0), 0.0);
        assert_eq!(kernel_distance(1.0, 1.0, 0.0), 2f64.sqrt());
        // Rounding clamp.
        assert_eq!(kernel_distance(1.0, 1.0, 1.0 + 1e-12), 0.0);
    }

    #[test]
    fn normalized_kernel_bounds() {
        assert_eq!(normalized_kernel(4.0, 9.0, 6.0), 1.0);
        assert_eq!(normalized_kernel(4.0, 9.0, 0.0), 0.0);
        assert_eq!(normalized_kernel(0.0, 9.0, 0.0), 0.0);
    }

    #[test]
    fn distance_is_a_metric_on_samples() {
        // Check symmetry, identity, and the triangle inequality on a small
        // sample of race graphs.
        let graphs: Vec<_> = (0..4)
            .map(|seed| {
                let mut b = ProgramBuilder::new(5);
                for r in 1..5 {
                    b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
                }
                for _ in 1..5 {
                    b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
                }
                let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap();
                anacin_event_graph::EventGraph::from_trace(&t)
            })
            .collect();
        let k = WlKernel::default();
        let n = graphs.len();
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                d[i][j] = distance(&k, &graphs[i], &graphs[j]);
            }
        }
        for i in 0..n {
            assert_eq!(d[i][i], 0.0);
            for j in 0..n {
                assert!((d[i][j] - d[j][i]).abs() < 1e-9);
                for l in 0..n {
                    assert!(d[i][j] <= d[i][l] + d[l][j] + 1e-9);
                }
            }
        }
    }
}
