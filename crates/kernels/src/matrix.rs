//! Parallel Gram-matrix computation over sets of event graphs.
//!
//! A non-determinism measurement compares a *sample* of runs (the paper
//! uses 20 per setting), which needs the full kernel matrix. Features are
//! computed once per graph and dot products once per pair; both stages fan
//! out over `std::thread::scope` workers pulling indices from an atomic
//! counter — the natural shape for an embarrassingly parallel workload
//! without pulling in a task scheduler.

use crate::distance::kernel_distance;
use crate::feature::{DotKind, SparseFeatures};
use crate::kernel::GraphKernel;
use anacin_event_graph::EventGraph;
use anacin_obs::MetricsRegistry;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A symmetric kernel (Gram) matrix over a sample of graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMatrix {
    n: usize,
    values: Vec<f64>,
    kernel_name: String,
}

impl KernelMatrix {
    /// Reassemble a matrix from its parts (the store codec's decode path).
    ///
    /// `values` must be a row-major `n × n` buffer.
    pub fn from_parts(n: usize, values: Vec<f64>, kernel_name: String) -> Self {
        assert_eq!(values.len(), n * n, "values must be n*n");
        Self {
            n,
            values,
            kernel_name,
        }
    }

    /// The raw row-major `n × n` value buffer.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of graphs in the sample.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the sample was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The kernel that produced this matrix.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Kernel value `k(G_i, G_j)`.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.n + j]
    }

    /// Kernel distance `‖φ(G_i) − φ(G_j)‖`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        kernel_distance(self.value(i, i), self.value(j, j), self.value(i, j))
    }

    /// Cosine-normalised kernel value in `[0, 1]`.
    pub fn normalized_value(&self, i: usize, j: usize) -> f64 {
        crate::distance::normalized_kernel(self.value(i, i), self.value(j, j), self.value(i, j))
    }

    /// Scale-free distance `√(2 − 2·k̂)` over the normalised kernel — the
    /// variant to use when comparing patterns of different sizes.
    pub fn normalized_distance(&self, i: usize, j: usize) -> f64 {
        (2.0 - 2.0 * self.normalized_value(i, j)).max(0.0).sqrt()
    }

    /// All pairwise distances for `i < j` (the sample the paper's violin
    /// plots draw).
    pub fn pairwise_distances(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n * (self.n.saturating_sub(1)) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                out.push(self.distance(i, j));
            }
        }
        out
    }

    /// Mean pairwise distance — the scalar "measured amount of
    /// non-determinism" for a sample of runs.
    pub fn mean_pairwise_distance(&self) -> f64 {
        let d = self.pairwise_distances();
        if d.is_empty() {
            0.0
        } else {
            d.iter().sum::<f64>() / d.len() as f64
        }
    }

    /// Distances from graph `i` to every other graph.
    pub fn distances_from(&self, i: usize) -> Vec<f64> {
        (0..self.n)
            .filter(|&j| j != i)
            .map(|j| self.distance(i, j))
            .collect()
    }
}

/// Compute φ(G) for each graph in parallel.
pub fn parallel_features(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    threads: usize,
) -> Vec<SparseFeatures> {
    parallel_features_with_metrics(kernel, graphs, threads, None)
}

/// [`parallel_features`], additionally recording a `features` span, the
/// `kernel/features` counter, and the `kernel/threads` gauge when a
/// registry is supplied. Results are identical either way.
///
/// This is the barrier entry point to the fused pipeline's feature stage
/// (`pipeline::features_stage`) — one scheduler serves both the barrier
/// and pipelined paths.
pub fn parallel_features_with_metrics(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    threads: usize,
    metrics: Option<&MetricsRegistry>,
) -> Vec<SparseFeatures> {
    let threads = threads.max(1).min(graphs.len().max(1));
    let _span = metrics.map(|m| m.span("features"));
    if let Some(m) = metrics {
        m.counter("kernel/features").add(graphs.len() as u64);
        m.set_gauge("kernel/threads", threads as f64);
    }
    crate::pipeline::features_stage(kernel, graphs, threads, metrics)
}

/// Compute the Gram matrix of `graphs` under `kernel` using up to
/// `threads` worker threads.
pub fn gram_matrix(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    threads: usize,
) -> KernelMatrix {
    gram_matrix_with_metrics(kernel, graphs, threads, None)
}

/// [`gram_matrix`], additionally recording `features`/`gram` spans and the
/// `kernel/dot_products` counter when a registry is supplied. The matrix is
/// bit-identical either way.
pub fn gram_matrix_with_metrics(
    kernel: &dyn GraphKernel,
    graphs: &[EventGraph],
    threads: usize,
    metrics: Option<&MetricsRegistry>,
) -> KernelMatrix {
    let feats = parallel_features_with_metrics(kernel, graphs, threads, metrics);
    gram_from_features_with_metrics(&kernel.name(), &feats, threads, metrics)
}

/// Compute the Gram matrix directly from precomputed feature vectors —
/// the warm path when per-run features come out of the artifact store
/// instead of being re-extracted from graphs. Bit-identical to
/// [`gram_matrix_with_metrics`] given the same features.
pub fn gram_from_features_with_metrics(
    kernel_name: &str,
    feats: &[SparseFeatures],
    threads: usize,
    metrics: Option<&MetricsRegistry>,
) -> KernelMatrix {
    gram_from_features_with_dot(kernel_name, feats, threads, DotKind::Scalar, metrics)
}

/// [`gram_from_features_with_metrics`] with an explicit dot-product
/// implementation. Both [`DotKind`]s are bit-identical, so this is purely
/// a throughput knob.
pub fn gram_from_features_with_dot(
    kernel_name: &str,
    feats: &[SparseFeatures],
    threads: usize,
    dot: DotKind,
    metrics: Option<&MetricsRegistry>,
) -> KernelMatrix {
    let n = feats.len();
    // Pairwise dot products for the upper triangle. Row i costs n − i dot
    // products, so handing out whole rows front-to-back leaves the worker
    // that drew row 0 doing ~n work while the one that drew row n−1 does 1.
    // Instead hand out *pairs* of rows (k, n−1−k): every pair costs exactly
    // n + 1 dot products, so the blocks are uniform regardless of which
    // worker draws which. Each (i, j) product is still computed exactly once
    // by the same expression, so the result is bit-identical to the serial
    // computation no matter the thread count.
    let _span = metrics.map(|m| m.span("gram"));
    if let Some(m) = metrics {
        m.counter("kernel/dot_products")
            .add((n * (n + 1) / 2) as u64);
    }
    let threads = threads.max(1).min(n.max(1));
    let half = n.div_ceil(2);
    let next_block = AtomicUsize::new(0);
    let rows: Vec<Vec<(usize, Vec<f64>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next_block = &next_block;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let k = next_block.fetch_add(1, Ordering::Relaxed);
                        if k >= half {
                            break;
                        }
                        // The middle row pairs with itself when n is odd.
                        let pair = n - 1 - k;
                        let block: &[usize] = if pair == k { &[k] } else { &[k, pair] };
                        for &i in block {
                            // Compute the upper triangle of row i (j >= i).
                            let row: Vec<f64> =
                                (i..n).map(|j| dot.dot(&feats[i], &feats[j])).collect();
                            local.push((i, row));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut values = vec![0.0; n * n];
    for chunk in rows {
        for (i, row) in chunk {
            for (off, v) in row.into_iter().enumerate() {
                let j = i + off;
                values[i * n + j] = v;
                values[j * n + i] = v;
            }
        }
    }
    KernelMatrix {
        n,
        values,
        kernel_name: kernel_name.to_string(),
    }
}

/// Grow a Gram matrix by one run: `feats` holds all `R + 1` feature
/// vectors (the stored campaign's `R` plus the new run's, last), `prev`
/// the stored `R × R` matrix. Only the new row/column is computed —
/// exactly `R + 1` dot products instead of the `(R+1)(R+2)/2` a cold
/// recompute pays — counted into `kernel/dot_products` **and**
/// `kernel/pipeline_tasks` (each dot is one task; the new run's feature
/// extraction is counted separately by the caller via `kernel/features`).
///
/// **Bit-exactness.** The copied `R × R` block is the stored matrix's
/// bytes unchanged, and each new entry `(i, R)` is computed by the same
/// expression a cold recompute of row `i`'s upper triangle uses
/// (`dot(feats[i], feats[R])`), written once to its two mirror slots. So
/// append-then-read equals cold recompute bit-for-bit — differential
/// tested in this module, in `core::incremental`, and by proptest over
/// random run subsets in `tests/properties.rs`.
pub fn gram_append(
    prev: &KernelMatrix,
    feats: &[SparseFeatures],
    threads: usize,
    dot: DotKind,
    metrics: Option<&MetricsRegistry>,
) -> KernelMatrix {
    let n = feats.len();
    assert_eq!(
        n,
        prev.n + 1,
        "gram_append expects the previous matrix plus exactly one new feature vector"
    );
    let _span = metrics.map(|m| m.span("gram"));
    if let Some(m) = metrics {
        m.counter("kernel/dot_products").add(n as u64);
        m.counter("kernel/pipeline_tasks").add(n as u64);
    }
    let mut values = vec![0.0; n * n];
    for i in 0..prev.n {
        values[i * n..i * n + prev.n].copy_from_slice(&prev.values[i * prev.n..(i + 1) * prev.n]);
    }
    let new = n - 1;
    let threads = threads.max(1).min(n);
    let next = AtomicUsize::new(0);
    let col: Vec<Vec<(usize, f64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i > new {
                            break;
                        }
                        local.push((i, dot.dot(&feats[i], &feats[new])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for chunk in col {
        for (i, v) in chunk {
            values[i * n + new] = v;
            values[new * n + i] = v;
        }
    }
    KernelMatrix {
        n,
        values,
        kernel_name: prev.kernel_name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wl::WlKernel;
    use anacin_mpisim::prelude::*;

    fn race_graphs(count: u64, nd: f64) -> Vec<EventGraph> {
        (0..count)
            .map(|seed| {
                let mut b = ProgramBuilder::new(6);
                for r in 1..6 {
                    b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
                }
                for _ in 1..6 {
                    b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
                }
                let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
                EventGraph::from_trace(&t)
            })
            .collect()
    }

    #[test]
    fn gram_matrix_matches_direct_computation() {
        let graphs = race_graphs(6, 100.0);
        let k = WlKernel::default();
        let m = gram_matrix(&k, &graphs, 4);
        assert_eq!(m.len(), 6);
        for i in 0..6 {
            for j in 0..6 {
                let direct = k.value(&graphs[i], &graphs[j]);
                assert!(
                    (m.value(i, j) - direct).abs() < 1e-9,
                    "({i},{j}): {} vs {direct}",
                    m.value(i, j)
                );
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let graphs = race_graphs(8, 100.0);
        let k = WlKernel::default();
        let m1 = gram_matrix(&k, &graphs, 1);
        let m8 = gram_matrix(&k, &graphs, 8);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(m1.value(i, j), m8.value(i, j));
            }
        }
    }

    #[test]
    fn balanced_scheduling_is_bit_exact_for_all_small_sizes() {
        // The pair-blocked schedule hands out rows in a different order than
        // a serial sweep; every (i, j) entry must nonetheless equal the
        // directly computed kernel value exactly, for odd and even n alike.
        let all = race_graphs(9, 100.0);
        let k = WlKernel::default();
        for n in 1..=9 {
            let graphs = &all[..n];
            for threads in [1, 2, 8] {
                let m = gram_matrix(&k, graphs, threads);
                for i in 0..n {
                    for j in 0..n {
                        assert_eq!(
                            m.value(i, j),
                            k.value(&graphs[i], &graphs[j]),
                            "n={n} threads={threads} ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_dot_gram_is_bit_identical_to_scalar() {
        let graphs = race_graphs(7, 100.0);
        let k = WlKernel::default();
        let feats = parallel_features(&k, &graphs, 2);
        let scalar = gram_from_features_with_metrics(&k.name(), &feats, 1, None);
        for threads in [1, 2, 8] {
            let blocked = gram_from_features_with_dot(
                &k.name(),
                &feats,
                threads,
                crate::feature::DotKind::Blocked,
                None,
            );
            for i in 0..7 {
                for j in 0..7 {
                    assert_eq!(
                        blocked.value(i, j).to_bits(),
                        scalar.value(i, j).to_bits(),
                        "threads={threads} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn gram_append_equals_cold_recompute_and_counts_r_plus_1_dots() {
        let graphs = race_graphs(8, 100.0);
        let k = WlKernel::default();
        let feats = parallel_features(&k, &graphs, 2);
        for dot in [DotKind::Scalar, DotKind::Blocked] {
            // Grow from 1 run to 8, one append at a time, at several
            // thread counts; every intermediate matrix must equal the
            // cold recompute of the same prefix bit-for-bit.
            for threads in [1, 2, 8] {
                let mut m = gram_from_features_with_dot(&k.name(), &feats[..1], 1, dot, None);
                for r in 1..8 {
                    let reg = anacin_obs::MetricsRegistry::new();
                    m = gram_append(&m, &feats[..=r], threads, dot, Some(&reg));
                    let report = reg.report();
                    assert_eq!(report.counter("kernel/dot_products"), Some(r as u64 + 1));
                    assert_eq!(report.counter("kernel/pipeline_tasks"), Some(r as u64 + 1));
                    let cold = gram_from_features_with_dot(&k.name(), &feats[..=r], 1, dot, None);
                    assert_eq!(m.len(), r + 1);
                    for i in 0..=r {
                        for j in 0..=r {
                            assert_eq!(
                                m.value(i, j).to_bits(),
                                cold.value(i, j).to_bits(),
                                "dot={dot} threads={threads} r={r} ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exactly one new feature vector")]
    fn gram_append_rejects_wrong_feature_count() {
        let graphs = race_graphs(4, 100.0);
        let k = WlKernel::default();
        let feats = parallel_features(&k, &graphs, 1);
        let m = gram_from_features_with_metrics(&k.name(), &feats[..2], 1, None);
        gram_append(&m, &feats, 1, DotKind::Scalar, None);
    }

    #[test]
    fn gram_metrics_count_dot_products_and_features() {
        let graphs = race_graphs(6, 100.0);
        let reg = anacin_obs::MetricsRegistry::new();
        let m = gram_matrix_with_metrics(&WlKernel::default(), &graphs, 2, Some(&reg));
        assert_eq!(m.len(), 6);
        let report = reg.report();
        assert_eq!(report.counter("kernel/features"), Some(6));
        assert_eq!(report.counter("kernel/dot_products"), Some(6 * 7 / 2));
        assert!(report.gauge("kernel/threads").unwrap() >= 1.0);
        assert!(report.span("features").is_some());
        assert!(report.span("gram").is_some());
    }

    #[test]
    fn diagonal_distances_are_zero_and_matrix_symmetric() {
        let graphs = race_graphs(5, 100.0);
        let m = gram_matrix(&WlKernel::default(), &graphs, 3);
        for i in 0..5 {
            assert_eq!(m.distance(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(m.value(i, j), m.value(j, i));
            }
        }
    }

    #[test]
    fn pairwise_distance_count() {
        let graphs = race_graphs(6, 100.0);
        let m = gram_matrix(&WlKernel::default(), &graphs, 2);
        assert_eq!(m.pairwise_distances().len(), 6 * 5 / 2);
        assert_eq!(m.distances_from(0).len(), 5);
    }

    #[test]
    fn identical_runs_give_zero_mean_distance() {
        // nd = 0: every seed produces the identical trace.
        let graphs = race_graphs(5, 0.0);
        let m = gram_matrix(&WlKernel::default(), &graphs, 2);
        assert_eq!(m.mean_pairwise_distance(), 0.0);
    }

    #[test]
    fn nd_runs_give_positive_mean_distance() {
        let graphs = race_graphs(10, 100.0);
        let m = gram_matrix(&WlKernel::default(), &graphs, 4);
        assert!(m.mean_pairwise_distance() > 0.0);
        assert!(!m.is_empty());
        assert!(m.kernel_name().starts_with("wl"));
    }

    #[test]
    fn normalized_accessors() {
        let graphs = race_graphs(4, 100.0);
        let m = gram_matrix(&WlKernel::default(), &graphs, 2);
        for i in 0..4 {
            assert!((m.normalized_value(i, i) - 1.0).abs() < 1e-9);
            assert_eq!(m.normalized_distance(i, i), 0.0);
            for j in 0..4 {
                let v = m.normalized_value(i, j);
                assert!((0.0..=1.0 + 1e-9).contains(&v));
                assert!(m.normalized_distance(i, j) <= 2f64.sqrt() + 1e-9);
            }
        }
    }

    #[test]
    fn empty_sample() {
        let m = gram_matrix(&WlKernel::default(), &[], 4);
        assert!(m.is_empty());
        assert_eq!(m.mean_pairwise_distance(), 0.0);
        assert!(m.pairwise_distances().is_empty());
    }
}
