//! Store codecs for [`SparseFeatures`] and [`KernelMatrix`].
//!
//! Feature vectors are the expensive half of a kernel-distance
//! measurement, so they are the primary reuse target: a stored φ(G) can
//! feed any number of Gram matrices (kernel sweeps, figure regeneration)
//! without touching the graph again.
//!
//! Both encodings are canonical — features are written sorted by feature
//! id (the in-memory map iterates in exactly that order), matrices in
//! row-major order — so a warm read re-encodes to the identical bytes.

use crate::feature::SparseFeatures;
use crate::matrix::KernelMatrix;
use anacin_store::{Artifact, ArtifactKind, ByteReader, ByteWriter, WireError};

impl Artifact for SparseFeatures {
    const KIND: ArtifactKind = ArtifactKind::Features;

    fn encode_into(&self, w: &mut ByteWriter) {
        w.seq_len(self.nnz());
        for (id, weight) in self.iter() {
            w.u64(id);
            w.f64(weight);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len(16)?;
        let mut f = SparseFeatures::new();
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let id = r.u64()?;
            // Ids must be strictly increasing: that both rejects damaged
            // payloads and guarantees decode(encode(x)) == x (duplicate
            // ids would silently sum).
            if prev.is_some_and(|p| id <= p) {
                return Err(WireError::BadLength(id));
            }
            prev = Some(id);
            f.add(id, r.f64()?);
        }
        Ok(f)
    }
}

impl Artifact for KernelMatrix {
    const KIND: ArtifactKind = ArtifactKind::Gram;

    fn encode_into(&self, w: &mut ByteWriter) {
        w.str(self.kernel_name());
        w.u64(self.len() as u64);
        w.seq_len(self.values().len());
        for &v in self.values() {
            w.f64(v);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let kernel_name = r.str()?;
        let n = r.u64()? as usize;
        let len = r.seq_len(8)?;
        if len != n * n {
            return Err(WireError::BadLength(len as u64));
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(r.f64()?);
        }
        Ok(KernelMatrix::from_parts(n, values, kernel_name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GraphKernel;
    use crate::matrix::gram_matrix;
    use crate::wl::WlKernel;
    use anacin_event_graph::EventGraph;
    use anacin_mpisim::prelude::*;

    fn race_graphs(count: u64) -> Vec<EventGraph> {
        (0..count)
            .map(|seed| {
                let mut b = ProgramBuilder::new(5);
                for r in 1..5 {
                    b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
                }
                for _ in 1..5 {
                    b.rank(Rank(0)).recv_any(TagSpec::Any);
                }
                let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap();
                EventGraph::from_trace(&t)
            })
            .collect()
    }

    #[test]
    fn features_round_trip_bit_exactly() {
        let k = WlKernel::default();
        for g in race_graphs(4) {
            let f = k.features(&g);
            let bytes = f.to_wire();
            let back = SparseFeatures::from_wire(&bytes).unwrap();
            assert_eq!(back, f);
            // Canonical: the sorted encoding is independent of HashMap
            // iteration order, so re-encoding is byte-identical.
            assert_eq!(back.to_wire(), bytes);
        }
    }

    #[test]
    fn features_reject_unsorted_or_duplicate_ids() {
        let mut w = anacin_store::ByteWriter::new();
        w.seq_len(2);
        w.u64(7);
        w.f64(1.0);
        w.u64(7); // duplicate
        w.f64(2.0);
        assert!(SparseFeatures::from_wire(&w.into_bytes()).is_err());

        let mut w = anacin_store::ByteWriter::new();
        w.seq_len(2);
        w.u64(9);
        w.f64(1.0);
        w.u64(3); // out of order
        w.f64(2.0);
        assert!(SparseFeatures::from_wire(&w.into_bytes()).is_err());
    }

    #[test]
    fn matrix_round_trips_bit_exactly() {
        let graphs = race_graphs(5);
        let m = gram_matrix(&WlKernel::default(), &graphs, 2);
        let bytes = m.to_wire();
        let back = KernelMatrix::from_wire(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_wire(), bytes);
        assert_eq!(back.kernel_name(), m.kernel_name());
        assert_eq!(back.mean_pairwise_distance(), m.mean_pairwise_distance());
    }

    #[test]
    fn matrix_rejects_mismatched_dimensions() {
        let mut w = anacin_store::ByteWriter::new();
        w.str("wl");
        w.u64(3); // claims 3×3…
        w.seq_len(4); // …but carries 4 values
        for _ in 0..4 {
            w.f64(0.0);
        }
        assert!(KernelMatrix::from_wire(&w.into_bytes()).is_err());
    }

    #[test]
    fn gram_from_stored_features_matches_direct_gram() {
        let graphs = race_graphs(6);
        let k = WlKernel::default();
        let direct = gram_matrix(&k, &graphs, 3);
        // Round-trip every feature vector through the wire format, then
        // build the Gram matrix from the decoded copies: the warm path.
        let feats: Vec<SparseFeatures> = graphs
            .iter()
            .map(|g| SparseFeatures::from_wire(&k.features(g).to_wire()).unwrap())
            .collect();
        let warm =
            crate::matrix::gram_from_features_with_metrics(direct.kernel_name(), &feats, 3, None);
        assert_eq!(warm, direct);
    }
}
