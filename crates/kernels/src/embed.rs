//! Classical multidimensional scaling (MDS) of kernel distances.
//!
//! A campaign yields an n×n kernel-distance matrix over its runs; MDS
//! embeds the runs in 2-D so students can *see* the structure of the
//! non-determinism (tight cluster = reproducible, spread cloud = racy,
//! multiple clusters = discrete outcome classes — the Enzo situation).
//! This mirrors the kernel-space visualisations of the companion TPDS'21
//! paper.
//!
//! Implementation: double-centre the squared distances, then extract the
//! top eigenpairs of the Gram matrix with deterministic power iteration
//! and deflation (the matrices here are tiny — one row per run).

use crate::matrix::KernelMatrix;

/// A 2-D embedding of a run sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// One `(x, y)` per run, in run order.
    pub points: Vec<(f64, f64)>,
    /// The eigenvalues of the two extracted axes (variance explained).
    pub eigenvalues: (f64, f64),
}

/// Multiply the dense symmetric matrix `m` (n×n, row-major) by `v`.
fn matvec(m: &[f64], n: usize, v: &[f64], out: &mut [f64]) {
    for i in 0..n {
        let row = &m[i * n..(i + 1) * n];
        out[i] = row.iter().zip(v).map(|(a, b)| a * b).sum();
    }
}

/// Deterministic power iteration on a symmetric matrix; returns the
/// dominant (eigenvalue, eigenvector). Positive-semidefinite inputs only
/// (the centred Gram matrix restricted to its positive part).
fn power_iteration(m: &[f64], n: usize, iters: usize) -> (f64, Vec<f64>) {
    // Deterministic, dense start vector.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    v.iter_mut().for_each(|x| *x /= norm);
    let mut next = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        matvec(m, n, &v, &mut next);
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-30 {
            return (0.0, v);
        }
        next.iter_mut().for_each(|x| *x /= norm);
        std::mem::swap(&mut v, &mut next);
        lambda = norm;
    }
    // Rayleigh quotient for a signed eigenvalue estimate.
    matvec(m, n, &v, &mut next);
    let rq: f64 = v.iter().zip(&next).map(|(a, b)| a * b).sum();
    let _ = lambda;
    (rq, v)
}

/// Embed a distance matrix (given as a closure over indices) in 2-D.
pub fn mds_from_distances(n: usize, dist: impl Fn(usize, usize) -> f64) -> Embedding {
    if n == 0 {
        return Embedding {
            points: Vec::new(),
            eigenvalues: (0.0, 0.0),
        };
    }
    // B = -1/2 J D² J (double centring).
    let mut d2 = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let d = dist(i, j);
            d2[i * n + j] = d * d;
        }
    }
    let row_mean: Vec<f64> = (0..n)
        .map(|i| d2[i * n..(i + 1) * n].iter().sum::<f64>() / n as f64)
        .collect();
    let grand = row_mean.iter().sum::<f64>() / n as f64;
    let mut b = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            b[i * n + j] = -0.5 * (d2[i * n + j] - row_mean[i] - row_mean[j] + grand);
        }
    }
    // Top two eigenpairs via power iteration + deflation.
    let iters = 300;
    let (l1, v1) = power_iteration(&b, n, iters);
    for i in 0..n {
        for j in 0..n {
            b[i * n + j] -= l1 * v1[i] * v1[j];
        }
    }
    let (l2, v2) = power_iteration(&b, n, iters);
    let s1 = l1.max(0.0).sqrt();
    let s2 = l2.max(0.0).sqrt();
    Embedding {
        points: (0..n).map(|i| (s1 * v1[i], s2 * v2[i])).collect(),
        eigenvalues: (l1.max(0.0), l2.max(0.0)),
    }
}

/// Embed the runs of a kernel matrix.
pub fn mds(matrix: &KernelMatrix) -> Embedding {
    mds_from_distances(matrix.len(), |i, j| matrix.distance(i, j))
}

/// Pairwise Euclidean distance between two embedded points.
pub fn embedded_distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let e = mds_from_distances(0, |_, _| 0.0);
        assert!(e.points.is_empty());
    }

    #[test]
    fn collinear_points_recover_their_order() {
        // Points on a line at positions 0, 1, 2, 5: distances |p_i - p_j|.
        let pos = [0.0f64, 1.0, 2.0, 5.0];
        let e = mds_from_distances(4, |i, j| (pos[i] - pos[j]).abs());
        // The first axis carries (almost) all variance.
        assert!(e.eigenvalues.0 > 100.0 * e.eigenvalues.1.max(1e-12));
        // Embedded x order matches (up to global sign) the original order.
        let xs: Vec<f64> = e.points.iter().map(|p| p.0).collect();
        let sign = if xs[3] > xs[0] { 1.0 } else { -1.0 };
        for w in xs.windows(2) {
            assert!(sign * (w[1] - w[0]) > 0.0, "{xs:?}");
        }
        // And pairwise embedded distances reproduce the input.
        for i in 0..4 {
            for j in 0..4 {
                let d = embedded_distance(e.points[i], e.points[j]);
                assert!((d - (pos[i] - pos[j]).abs()).abs() < 1e-6, "({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn identical_points_collapse() {
        let e = mds_from_distances(5, |_, _| 0.0);
        for p in &e.points {
            assert!(p.0.abs() < 1e-9 && p.1.abs() < 1e-9);
        }
    }

    #[test]
    fn square_embeds_in_two_dimensions() {
        // Unit square corners: needs two axes with equal eigenvalues.
        let pts: [(f64, f64); 4] = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        let dist = |i: usize, j: usize| {
            let (ax, ay) = pts[i];
            let (bx, by) = pts[j];
            (ax - bx).hypot(ay - by)
        };
        let e = mds_from_distances(4, dist);
        assert!(e.eigenvalues.0 > 0.5);
        assert!(e.eigenvalues.1 > 0.5);
        for i in 0..4 {
            for j in 0..4 {
                let d = embedded_distance(e.points[i], e.points[j]);
                assert!((d - dist(i, j)).abs() < 1e-5, "({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn kernel_matrix_embedding_integrates() {
        use crate::matrix::gram_matrix;
        use crate::wl::WlKernel;
        use anacin_mpisim::prelude::*;
        let graphs: Vec<_> = (0..6)
            .map(|seed| {
                let mut b = ProgramBuilder::new(5);
                for r in 1..5 {
                    b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
                }
                for _ in 1..5 {
                    b.rank(Rank(0)).recv_any(TagSpec::Any);
                }
                let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap();
                anacin_event_graph::EventGraph::from_trace(&t)
            })
            .collect();
        let m = gram_matrix(&WlKernel::default(), &graphs, 2);
        let e = mds(&m);
        assert_eq!(e.points.len(), 6);
        // Embedded distances approximate kernel distances (MDS of a small
        // sample is near-exact when the distances are Euclidean-like).
        for i in 0..6 {
            for j in 0..6 {
                let de = embedded_distance(e.points[i], e.points[j]);
                // Loose sanity bound only: same order of magnitude.
                assert!(de <= m.distance(i, j) + 1e-6);
            }
        }
    }
}
