//! Opt-in landmark (Nyström) approximation of the kernel matrix.
//!
//! The exact Gram stage pays `R(R+1)/2` sparse dot products — hopeless at
//! the continuous-monitoring scale of R ≫ 10³ runs. The Nyström
//! approximation picks `K ≪ R` *landmark* runs, computes only the `R × K`
//! cross-kernel block `C` (plus the `R` exact diagonal norms for the error
//! bound), and reconstructs
//!
//! ```text
//! G̃ = C · W⁺ · Cᵀ,      W = the K × K landmark block of C
//! ```
//!
//! where `W⁺` is the eigenvalue-thresholded pseudo-inverse of `W`
//! (computed by a cyclic Jacobi eigendecomposition — `K` is small, so the
//! O(K³) cost is noise). That is `R·K` dot products instead of `R²/2`.
//!
//! # This path is approximate, and never the default
//!
//! Everything else in the kernel stage is bit-exact; this module is the
//! deliberate exception, and three guard rails keep it honest:
//!
//! * it must be requested explicitly (`--gram-approx landmarks=K`; the
//!   config default is the exact path);
//! * results are **never published to the artifact store** — a warm read
//!   can only ever see exact matrices;
//! * every call reports a rigorous Frobenius error bound through the
//!   `kernel/approx_error_bound` gauge. For a PSD kernel matrix the
//!   Nyström residual `E = G − G̃` is itself PSD (G̃ is the Gram matrix of
//!   the feature vectors' orthogonal projections onto the landmark span),
//!   so `‖E‖_F ≤ trace(E) = Σᵢ (k(i,i) − G̃ᵢᵢ)` — computable from the `R`
//!   exact diagonal entries without ever forming the exact matrix. The
//!   bound is checked against the true Frobenius error in tests.

use crate::feature::{DotKind, SparseFeatures};
use crate::matrix::KernelMatrix;
use anacin_obs::MetricsRegistry;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Relative eigenvalue threshold below which `W`'s spectrum is treated as
/// zero in the pseudo-inverse (guards against blowing up numerical-noise
/// directions when landmarks are nearly linearly dependent).
const EIG_THRESHOLD: f64 = 1e-12;

/// A landmark-approximate kernel matrix plus its exactness certificate.
#[derive(Debug, Clone)]
pub struct ApproxGram {
    /// The reconstructed `R × R` matrix `G̃ = C W⁺ Cᵀ`.
    pub matrix: KernelMatrix,
    /// The landmark run indices actually used (sorted, unique).
    pub landmarks: Vec<usize>,
    /// Upper bound on `‖G − G̃‖_F` (the trace of the PSD residual).
    pub error_bound: f64,
}

/// Deterministic landmark selection: `k` evenly spaced run indices over
/// `0..n` (first run always included), deduplicated when `k ≥ n`. Evenly
/// spaced beats random here — runs are seeded `base_seed + i`, so any
/// drift over a long campaign is sampled uniformly, and determinism keeps
/// repeated invocations comparable.
pub fn landmark_indices(n: usize, k: usize) -> Vec<usize> {
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let mut out: Vec<usize> = (0..k).map(|i| i * n / k).collect();
    out.dedup();
    out
}

/// Compute the landmark (Nyström) approximation of the Gram matrix over
/// `feats` with `k` landmarks, recording `kernel/dot_products` (the `R×K`
/// cross block) and the `kernel/approx_error_bound` gauge.
pub fn landmark_gram(
    kernel_name: &str,
    feats: &[SparseFeatures],
    k: usize,
    threads: usize,
    dot: DotKind,
    metrics: Option<&MetricsRegistry>,
) -> ApproxGram {
    let n = feats.len();
    let landmarks = landmark_indices(n, k);
    let m = landmarks.len();
    let _span = metrics.map(|reg| reg.span("gram_approx"));
    if let Some(reg) = metrics {
        reg.counter("kernel/dot_products").add((n * m) as u64);
    }
    // C: the n × m cross block, row-parallel.
    let threads = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let mut c = vec![0.0f64; n * m];
    let rows: Vec<Vec<(usize, Vec<f64>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let landmarks = &landmarks;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let row: Vec<f64> = landmarks
                            .iter()
                            .map(|&l| dot.dot(&feats[i], &feats[l]))
                            .collect();
                        local.push((i, row));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for chunk in rows {
        for (i, row) in chunk {
            c[i * m..(i + 1) * m].copy_from_slice(&row);
        }
    }
    // W: the landmark rows of C, symmetrised against rounding (W is a
    // Gram matrix, so it is symmetric up to the bit-exact dot — which is
    // exactly symmetric — but averaging costs nothing and keeps Jacobi's
    // preconditions explicit).
    let mut w = vec![0.0f64; m * m];
    for (a, &la) in landmarks.iter().enumerate() {
        for b in 0..m {
            w[a * m + b] = c[la * m + b];
        }
    }
    // Eigendecompose W = V Λ Vᵀ and apply the thresholded pseudo-inverse:
    // G̃ = (C V) Λ⁺ (C V)ᵀ.
    let (eigvals, v) = jacobi_eigen(&w, m);
    let max_eig = eigvals.iter().cloned().fold(0.0f64, f64::max);
    let inv: Vec<f64> = eigvals
        .iter()
        .map(|&l| {
            if l > max_eig * EIG_THRESHOLD && l > 0.0 {
                1.0 / l
            } else {
                0.0
            }
        })
        .collect();
    // B = C · V (n × m).
    let mut b = vec![0.0f64; n * m];
    for i in 0..n {
        for col in 0..m {
            let mut acc = 0.0;
            for t in 0..m {
                acc += c[i * m + t] * v[t * m + col];
            }
            b[i * m + col] = acc;
        }
    }
    // G̃ upper triangle, mirrored.
    let mut values = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i..n {
            let mut acc = 0.0;
            for t in 0..m {
                acc += inv[t] * b[i * m + t] * b[j * m + t];
            }
            values[i * n + j] = acc;
            values[j * n + i] = acc;
        }
    }
    // Trace bound on the PSD residual, from the exact diagonal.
    let mut error_bound = 0.0;
    for (i, f) in feats.iter().enumerate() {
        error_bound += (f.norm_sq() - values[i * n + i]).max(0.0);
    }
    if let Some(reg) = metrics {
        reg.set_gauge("kernel/approx_error_bound", error_bound);
    }
    ApproxGram {
        matrix: KernelMatrix::from_parts(n, values, kernel_name.to_string()),
        landmarks,
        error_bound,
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric `m × m` matrix (row
/// major). Returns `(eigenvalues, V)` with `A = V diag(λ) Vᵀ` and `V`'s
/// columns the eigenvectors. Plain textbook sweeps — `m` is the landmark
/// count, so cubic cost is irrelevant — iterated until the off-diagonal
/// mass is negligible.
fn jacobi_eigen(a: &[f64], m: usize) -> (Vec<f64>, Vec<f64>) {
    let mut a = a.to_vec();
    let mut v = vec![0.0f64; m * m];
    for i in 0..m {
        v[i * m + i] = 1.0;
    }
    if m <= 1 {
        return (a, v);
    }
    let scale: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    for _sweep in 0..64 {
        let off: f64 = (0..m)
            .flat_map(|p| (p + 1..m).map(move |q| (p, q)))
            .map(|(p, q)| a[p * m + q] * a[p * m + q])
            .sum();
        if off.sqrt() <= scale * 1e-14 {
            break;
        }
        for p in 0..m {
            for q in (p + 1)..m {
                let apq = a[p * m + q];
                if apq == 0.0 {
                    continue;
                }
                let app = a[p * m + p];
                let aqq = a[q * m + q];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle (θ = 0 must give
                // t = 1, the 45° rotation — so no signum, which is 0 at 0).
                let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
                let t = sign / (theta.abs() + (theta * theta + 1.0).sqrt());
                let cos = 1.0 / (t * t + 1.0).sqrt();
                let sin = t * cos;
                // Rotate rows/columns p and q of A.
                for i in 0..m {
                    let aip = a[i * m + p];
                    let aiq = a[i * m + q];
                    a[i * m + p] = cos * aip - sin * aiq;
                    a[i * m + q] = sin * aip + cos * aiq;
                }
                for j in 0..m {
                    let apj = a[p * m + j];
                    let aqj = a[q * m + j];
                    a[p * m + j] = cos * apj - sin * aqj;
                    a[q * m + j] = sin * apj + cos * aqj;
                }
                // Accumulate the rotation into V.
                for i in 0..m {
                    let vip = v[i * m + p];
                    let viq = v[i * m + q];
                    v[i * m + p] = cos * vip - sin * viq;
                    v[i * m + q] = sin * vip + cos * viq;
                }
            }
        }
    }
    let eig: Vec<f64> = (0..m).map(|i| a[i * m + i]).collect();
    (eig, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GraphKernel;
    use crate::matrix::{gram_from_features_with_metrics, parallel_features};
    use crate::wl::WlKernel;
    use anacin_event_graph::EventGraph;
    use anacin_mpisim::prelude::*;

    fn race_features(count: u64) -> Vec<SparseFeatures> {
        let graphs: Vec<EventGraph> = (0..count)
            .map(|seed| {
                let mut b = ProgramBuilder::new(6);
                for r in 1..6 {
                    b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
                }
                for _ in 1..6 {
                    b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
                }
                let t = simulate(&b.build(), &SimConfig::with_nd_percent(100.0, seed)).unwrap();
                EventGraph::from_trace(&t)
            })
            .collect();
        parallel_features(&WlKernel::default(), &graphs, 2)
    }

    fn frobenius(a: &KernelMatrix, b: &KernelMatrix) -> f64 {
        a.values()
            .iter()
            .zip(b.values())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn landmark_indices_are_deterministic_sorted_unique() {
        assert_eq!(landmark_indices(10, 4), vec![0, 2, 5, 7]);
        assert_eq!(landmark_indices(10, 4), landmark_indices(10, 4));
        assert_eq!(landmark_indices(3, 16), vec![0, 1, 2]);
        assert!(landmark_indices(0, 4).is_empty());
        assert!(landmark_indices(4, 0).is_empty());
        let l = landmark_indices(997, 64);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn jacobi_recovers_a_known_spectrum() {
        // A = diag(3, 1) rotated by 45°: eigenvalues {3, 1}.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let a = [
            3.0 * s * s + s * s,
            3.0 * s * s - s * s,
            3.0 * s * s - s * s,
            3.0 * s * s + s * s,
        ];
        let (mut eig, v) = jacobi_eigen(&a, 2);
        eig.sort_by(f64::total_cmp);
        assert!((eig[0] - 1.0).abs() < 1e-12, "{eig:?}");
        assert!((eig[1] - 3.0).abs() < 1e-12, "{eig:?}");
        // V is orthogonal.
        for i in 0..2 {
            for j in 0..2 {
                let d: f64 = (0..2).map(|t| v[t * 2 + i] * v[t * 2 + j]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn full_landmark_set_reproduces_the_exact_matrix() {
        let feats = race_features(8);
        let exact = gram_from_features_with_metrics(&WlKernel::default().name(), &feats, 1, None);
        let approx = landmark_gram(
            &WlKernel::default().name(),
            &feats,
            8,
            2,
            DotKind::Scalar,
            None,
        );
        assert_eq!(approx.landmarks.len(), 8);
        let err = frobenius(&approx.matrix, &exact);
        let scale: f64 = exact.values().iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err <= scale * 1e-9, "err {err} vs scale {scale}");
        assert!(approx.error_bound <= scale * 1e-6, "{}", approx.error_bound);
    }

    #[test]
    fn error_bound_is_finite_and_dominates_the_true_error() {
        let feats = race_features(16);
        let name = WlKernel::default().name();
        let exact = gram_from_features_with_metrics(&name, &feats, 1, None);
        for k in [2, 4, 8] {
            for dot in [DotKind::Scalar, DotKind::Blocked] {
                let reg = anacin_obs::MetricsRegistry::new();
                let approx = landmark_gram(&name, &feats, k, 2, dot, Some(&reg));
                assert!(approx.error_bound.is_finite());
                assert!(approx.error_bound >= 0.0);
                let true_err = frobenius(&approx.matrix, &exact);
                // Trace bound on a PSD residual dominates its Frobenius
                // norm; small slack for the Jacobi/pinv rounding.
                assert!(
                    true_err <= approx.error_bound * (1.0 + 1e-6) + 1e-6,
                    "k={k} dot={dot}: true {true_err} > bound {}",
                    approx.error_bound
                );
                let report = reg.report();
                assert_eq!(
                    report.counter("kernel/dot_products"),
                    Some((16 * approx.landmarks.len()) as u64),
                    "only R×K dots"
                );
                assert_eq!(
                    report.gauge("kernel/approx_error_bound"),
                    Some(approx.error_bound)
                );
            }
        }
    }

    #[test]
    fn approx_matrix_is_symmetric_with_thread_invariance() {
        let feats = race_features(12);
        let name = WlKernel::default().name();
        let one = landmark_gram(&name, &feats, 4, 1, DotKind::Scalar, None);
        let eight = landmark_gram(&name, &feats, 4, 8, DotKind::Scalar, None);
        for i in 0..12 {
            for j in 0..12 {
                assert_eq!(one.matrix.value(i, j), one.matrix.value(j, i));
                assert_eq!(
                    one.matrix.value(i, j).to_bits(),
                    eight.matrix.value(i, j).to_bits(),
                    "thread invariance ({i},{j})"
                );
            }
        }
    }
}
