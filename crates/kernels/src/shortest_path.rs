//! The shortest-path graph kernel (Borgwardt & Kriegel, 2005), adapted to
//! event graphs.
//!
//! φ(G) counts `(label(u), d, label(v))` triples for every ordered node
//! pair with a directed shortest-path distance `d ≤ max_distance`. The
//! distance cap keeps the all-pairs BFS tractable on large traces and, in
//! practice, localises the kernel — similar in spirit to WL with depth
//! `max_distance`.

use crate::feature::SparseFeatures;
use crate::kernel::GraphKernel;
use anacin_event_graph::label::{fnv1a_words, initial_labels, LabelPolicy};
use anacin_event_graph::EventGraph;
use std::collections::VecDeque;

/// Shortest-path kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShortestPathKernel {
    /// Node-label policy.
    pub policy: LabelPolicy,
    /// Maximum path length counted (BFS horizon).
    pub max_distance: u32,
}

impl Default for ShortestPathKernel {
    fn default() -> Self {
        ShortestPathKernel {
            policy: LabelPolicy::default(),
            max_distance: 4,
        }
    }
}

impl GraphKernel for ShortestPathKernel {
    fn name(&self) -> String {
        format!("shortest-path(d<={},{:?})", self.max_distance, self.policy)
    }

    fn features(&self, g: &EventGraph) -> SparseFeatures {
        let labels = initial_labels(g, self.policy);
        let mut f = SparseFeatures::new();
        let n = g.node_count();
        let mut dist = vec![u32::MAX; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut queue = VecDeque::new();
        for src in g.node_ids() {
            // Bounded BFS from src along directed edges.
            queue.clear();
            queue.push_back(src);
            dist[src.index()] = 0;
            touched.push(src.index());
            while let Some(u) = queue.pop_front() {
                let du = dist[u.index()];
                if du >= self.max_distance {
                    continue;
                }
                for &(v, _) in g.out_edges(u) {
                    if dist[v.index()] == u32::MAX {
                        dist[v.index()] = du + 1;
                        touched.push(v.index());
                        queue.push_back(v);
                    }
                }
            }
            for &t in &touched {
                let d = dist[t];
                if d > 0 {
                    f.bump(fnv1a_words(&[labels[src.index()], d as u64, labels[t]]));
                }
                dist[t] = u32::MAX;
            }
            touched.clear();
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::kernel_distance;
    use anacin_mpisim::prelude::*;

    fn chain_graph() -> EventGraph {
        let mut b = ProgramBuilder::new(1);
        b.rank(Rank(0)).compute(1);
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn two_node_chain_has_one_path() {
        // init -> finalize: exactly one (u, 1, v) pair.
        let g = chain_graph();
        let k = ShortestPathKernel::default();
        let f = k.features(&g);
        let total: f64 = f.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 1.0);
    }

    fn race_graph(n: u32, nd: f64, seed: u64) -> EventGraph {
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
        EventGraph::from_trace(&t)
    }

    #[test]
    fn distance_cap_limits_features() {
        let g = race_graph(6, 0.0, 0);
        let near = ShortestPathKernel {
            max_distance: 1,
            ..Default::default()
        };
        let far = ShortestPathKernel {
            max_distance: 6,
            ..Default::default()
        };
        let near_total: f64 = near.features(&g).iter().map(|(_, w)| w).sum();
        let far_total: f64 = far.features(&g).iter().map(|(_, w)| w).sum();
        assert!(far_total > near_total);
        // d<=1 counts exactly the edges.
        assert_eq!(near_total, g.edge_count() as f64);
    }

    #[test]
    fn identical_runs_zero_distance() {
        let g1 = race_graph(5, 100.0, 9);
        let g2 = race_graph(5, 100.0, 9);
        let k = ShortestPathKernel::default();
        let d = kernel_distance(k.value(&g1, &g1), k.value(&g2, &g2), k.value(&g1, &g2));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn sees_reordering_with_peer_labels() {
        let base = race_graph(6, 100.0, 0);
        let mut other = None;
        for seed in 1..60 {
            let g = race_graph(6, 100.0, seed);
            if g.match_order(Rank(0)) != base.match_order(Rank(0)) {
                other = Some(g);
                break;
            }
        }
        let other = other.expect("expected a reordering seed");
        let k = ShortestPathKernel::default();
        let d = kernel_distance(
            k.value(&base, &base),
            k.value(&other, &other),
            k.value(&base, &other),
        );
        assert!(d > 0.0);
    }
}
