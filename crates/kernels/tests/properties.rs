//! Property-based tests of kernel mathematics.

use anacin_event_graph::{EventGraph, LabelPolicy};
use anacin_kernels::prelude::*;
use anacin_mpisim::prelude::*;
use proptest::prelude::*;

fn race_graph(procs: u32, nd: f64, seed: u64) -> EventGraph {
    let mut b = ProgramBuilder::new(procs);
    for r in 1..procs {
        b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
    }
    for _ in 1..procs {
        b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
    }
    let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
    EventGraph::from_trace(&t)
}

fn arb_kernel() -> impl Strategy<Value = usize> {
    0usize..5
}

fn kernel_by_index(i: usize) -> Box<dyn GraphKernel> {
    match i {
        0 => Box::new(WlKernel::default()),
        1 => Box::new(WlKernel {
            iterations: 1,
            policy: LabelPolicy::RankTypePeer,
            edge_sensitive: true,
        }),
        2 => Box::new(VertexHistogramKernel::default()),
        3 => Box::new(EdgeHistogramKernel::default()),
        _ => Box::new(ShortestPathKernel::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kernel values are symmetric and satisfy Cauchy–Schwarz:
    /// k(G,H)² ≤ k(G,G)·k(H,H).
    #[test]
    fn kernels_are_symmetric_and_cauchy_schwarz(
        ki in arb_kernel(),
        procs in 2u32..8,
        seed_a in 0u64..40,
        seed_b in 40u64..80,
    ) {
        let k = kernel_by_index(ki);
        let g = race_graph(procs, 100.0, seed_a);
        let h = race_graph(procs, 100.0, seed_b);
        let kgh = k.value(&g, &h);
        let khg = k.value(&h, &g);
        prop_assert!((kgh - khg).abs() < 1e-9);
        let kgg = k.value(&g, &g);
        let khh = k.value(&h, &h);
        prop_assert!(kgh * kgh <= kgg * khh * (1.0 + 1e-9));
        // Distance properties follow.
        let d = kernel_distance(kgg, khh, kgh);
        prop_assert!(d >= 0.0);
        prop_assert_eq!(kernel_distance(kgg, kgg, kgg), 0.0);
    }

    /// Feature dot products agree with distance(): ‖φ(G)−φ(H)‖² equals
    /// k(G,G)+k(H,H)−2k(G,H) by expansion.
    #[test]
    fn distance_expansion_identity(
        ki in arb_kernel(),
        seed in 0u64..60,
    ) {
        let k = kernel_by_index(ki);
        let g = race_graph(5, 100.0, seed);
        let h = race_graph(5, 100.0, seed + 1000);
        let fg = k.features(&g);
        let fh = k.features(&h);
        let direct = {
            let mut diff2 = 0.0;
            let mut ids: std::collections::HashSet<u64> =
                fg.iter().map(|(id, _)| id).collect();
            ids.extend(fh.iter().map(|(id, _)| id));
            for id in ids {
                diff2 += (fg.get(id) - fh.get(id)).powi(2);
            }
            diff2.sqrt()
        };
        let via_kernel = kernel_distance(fg.norm_sq(), fh.norm_sq(), fg.dot(&fh));
        prop_assert!((direct - via_kernel).abs() < 1e-6,
            "direct {direct} vs kernel {via_kernel}");
    }

    /// MDS embeddings never exaggerate distances (classical MDS projects,
    /// so embedded distances are bounded by the originals up to noise).
    #[test]
    fn mds_is_contractive(
        n in 2usize..8,
        spread in 0.1f64..10.0,
    ) {
        // Points on a line with the given spacing.
        let e = mds_from_distances(n, |i, j| (i as f64 - j as f64).abs() * spread);
        prop_assert_eq!(e.points.len(), n);
        for i in 0..n {
            for j in 0..n {
                let de = embedded_distance(e.points[i], e.points[j]);
                let orig = (i as f64 - j as f64).abs() * spread;
                prop_assert!(de <= orig + 1e-6, "({i},{j}): {de} > {orig}");
            }
        }
    }

    /// The Gram matrix is thread-count invariant.
    #[test]
    fn gram_matrix_parallel_determinism(
        threads in 1usize..9,
        seed in 0u64..20,
    ) {
        let graphs: Vec<_> = (0..5).map(|i| race_graph(5, 100.0, seed + i)).collect();
        let k = WlKernel::default();
        let base = gram_matrix(&k, &graphs, 1);
        let par = gram_matrix(&k, &graphs, threads);
        for i in 0..5 {
            for j in 0..5 {
                prop_assert_eq!(base.value(i, j), par.value(i, j));
            }
        }
    }
}
