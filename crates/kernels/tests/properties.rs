//! Property-based tests of kernel mathematics.

use anacin_event_graph::{EventGraph, LabelPolicy};
use anacin_kernels::prelude::*;
use anacin_mpisim::prelude::*;
use proptest::prelude::*;

fn race_graph(procs: u32, nd: f64, seed: u64) -> EventGraph {
    let mut b = ProgramBuilder::new(procs);
    for r in 1..procs {
        b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
    }
    for _ in 1..procs {
        b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
    }
    let t = simulate(&b.build(), &SimConfig::with_nd_percent(nd, seed)).unwrap();
    EventGraph::from_trace(&t)
}

fn arb_kernel() -> impl Strategy<Value = usize> {
    0usize..5
}

fn kernel_by_index(i: usize) -> Box<dyn GraphKernel> {
    match i {
        0 => Box::new(WlKernel::default()),
        1 => Box::new(WlKernel {
            iterations: 1,
            policy: LabelPolicy::RankTypePeer,
            edge_sensitive: true,
        }),
        2 => Box::new(VertexHistogramKernel::default()),
        3 => Box::new(EdgeHistogramKernel::default()),
        _ => Box::new(ShortestPathKernel::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kernel values are symmetric and satisfy Cauchy–Schwarz:
    /// k(G,H)² ≤ k(G,G)·k(H,H).
    #[test]
    fn kernels_are_symmetric_and_cauchy_schwarz(
        ki in arb_kernel(),
        procs in 2u32..8,
        seed_a in 0u64..40,
        seed_b in 40u64..80,
    ) {
        let k = kernel_by_index(ki);
        let g = race_graph(procs, 100.0, seed_a);
        let h = race_graph(procs, 100.0, seed_b);
        let kgh = k.value(&g, &h);
        let khg = k.value(&h, &g);
        prop_assert!((kgh - khg).abs() < 1e-9);
        let kgg = k.value(&g, &g);
        let khh = k.value(&h, &h);
        prop_assert!(kgh * kgh <= kgg * khh * (1.0 + 1e-9));
        // Distance properties follow.
        let d = kernel_distance(kgg, khh, kgh);
        prop_assert!(d >= 0.0);
        prop_assert_eq!(kernel_distance(kgg, kgg, kgg), 0.0);
    }

    /// Feature dot products agree with distance(): ‖φ(G)−φ(H)‖² equals
    /// k(G,G)+k(H,H)−2k(G,H) by expansion.
    #[test]
    fn distance_expansion_identity(
        ki in arb_kernel(),
        seed in 0u64..60,
    ) {
        let k = kernel_by_index(ki);
        let g = race_graph(5, 100.0, seed);
        let h = race_graph(5, 100.0, seed + 1000);
        let fg = k.features(&g);
        let fh = k.features(&h);
        let direct = {
            let mut diff2 = 0.0;
            let mut ids: std::collections::HashSet<u64> =
                fg.iter().map(|(id, _)| id).collect();
            ids.extend(fh.iter().map(|(id, _)| id));
            for id in ids {
                diff2 += (fg.get(id) - fh.get(id)).powi(2);
            }
            diff2.sqrt()
        };
        let via_kernel = kernel_distance(fg.norm_sq(), fh.norm_sq(), fg.dot(&fh));
        prop_assert!((direct - via_kernel).abs() < 1e-6,
            "direct {direct} vs kernel {via_kernel}");
    }

    /// MDS embeddings never exaggerate distances (classical MDS projects,
    /// so embedded distances are bounded by the originals up to noise).
    #[test]
    fn mds_is_contractive(
        n in 2usize..8,
        spread in 0.1f64..10.0,
    ) {
        // Points on a line with the given spacing.
        let e = mds_from_distances(n, |i, j| (i as f64 - j as f64).abs() * spread);
        prop_assert_eq!(e.points.len(), n);
        for i in 0..n {
            for j in 0..n {
                let de = embedded_distance(e.points[i], e.points[j]);
                let orig = (i as f64 - j as f64).abs() * spread;
                prop_assert!(de <= orig + 1e-6, "({i},{j}): {de} > {orig}");
            }
        }
    }

    /// Growing a Gram matrix run-by-run with `gram_append` is
    /// bit-identical to the full recompute, for any prefix split, thread
    /// count, and dot kind — and the blocked dot never changes a bit of
    /// the full matrix either.
    #[test]
    fn gram_append_matches_full_recompute(
        n in 2usize..7,
        split in 1usize..6,
        threads in 1usize..5,
        dot_i in 0usize..2,
        seed in 0u64..20,
    ) {
        let dot = if dot_i == 0 { DotKind::Scalar } else { DotKind::Blocked };
        let k = WlKernel::default();
        let graphs: Vec<_> = (0..n)
            .map(|i| race_graph(5, 100.0, seed + i as u64))
            .collect();
        let feats: Vec<_> = graphs.iter().map(|g| k.features(g)).collect();
        let full = gram_from_features_with_dot("wl", &feats, threads, dot, None);
        let scalar = gram_from_features_with_dot("wl", &feats, threads, DotKind::Scalar, None);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(full.value(i, j).to_bits(), scalar.value(i, j).to_bits());
            }
        }
        let start = split.min(n - 1);
        let mut grown = gram_from_features_with_dot("wl", &feats[..start], threads, dot, None);
        for upto in start + 1..=n {
            grown = gram_append(&grown, &feats[..upto], threads, dot, None);
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(grown.value(i, j).to_bits(), full.value(i, j).to_bits());
            }
        }
    }

    /// The landmark approximation is symmetric, its reported Frobenius
    /// bound dominates the true error, and a full landmark set
    /// reproduces the exact matrix to rounding.
    #[test]
    fn landmark_bound_dominates_true_error(
        n in 2usize..7,
        k_landmarks in 1usize..7,
        seed in 0u64..20,
    ) {
        let kern = WlKernel::default();
        let graphs: Vec<_> = (0..n)
            .map(|i| race_graph(4, 100.0, seed + i as u64))
            .collect();
        let feats: Vec<_> = graphs.iter().map(|g| kern.features(g)).collect();
        let exact = gram_from_features_with_dot("wl", &feats, 1, DotKind::Scalar, None);
        let approx = landmark_gram("wl", &feats, k_landmarks, 1, DotKind::Scalar, None);
        let scale: f64 = (0..n).map(|i| exact.value(i, i)).sum::<f64>().max(1.0);
        let mut err2 = 0.0;
        for i in 0..n {
            for j in 0..n {
                let e = exact.value(i, j) - approx.matrix.value(i, j);
                err2 += e * e;
                let asym = (approx.matrix.value(i, j) - approx.matrix.value(j, i)).abs();
                prop_assert!(asym < 1e-9 * scale, "asymmetry {asym} at ({i},{j})");
            }
        }
        prop_assert!(approx.error_bound.is_finite() && approx.error_bound >= 0.0);
        prop_assert!(
            err2.sqrt() <= approx.error_bound + 1e-6 * scale,
            "true error {} exceeds reported bound {}", err2.sqrt(), approx.error_bound
        );
        if k_landmarks >= n {
            prop_assert!(err2.sqrt() <= 1e-6 * scale,
                "full landmark set left error {}", err2.sqrt());
        }
    }

    /// The Gram matrix is thread-count invariant.
    #[test]
    fn gram_matrix_parallel_determinism(
        threads in 1usize..9,
        seed in 0u64..20,
    ) {
        let graphs: Vec<_> = (0..5).map(|i| race_graph(5, 100.0, seed + i)).collect();
        let k = WlKernel::default();
        let base = gram_matrix(&k, &graphs, 1);
        let par = gram_matrix(&k, &graphs, threads);
        for i in 0..5 {
            for j in 0..5 {
                prop_assert_eq!(base.value(i, j), par.value(i, j));
            }
        }
    }
}
