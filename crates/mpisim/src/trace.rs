//! Execution traces: the simulator's output and the analysis input.
//!
//! A [`Trace`] records, per rank and in program order, one event for every
//! MPI call that the paper's event graphs model: `Init`, `Send`, `Recv`,
//! and `Finalize`. Receive events carry the identity of the send event they
//! matched, so the event-graph builder can add message edges without
//! re-running the matcher.

use crate::stack::{CallStackId, CallStackTable};
use crate::types::{ChannelSeq, Rank, SimTime, Tag};
use anacin_obs::{message_id, SimEvent, SimEventKind, TraceRecord, Tracer};
use serde::{Deserialize, Serialize};

/// Global identity of an event: `(rank, rank-local index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId {
    /// Rank the event occurred on.
    pub rank: Rank,
    /// Index of the event within the rank's trace (program order).
    pub idx: u32,
}

impl EventId {
    /// Construct an event id.
    pub fn new(rank: Rank, idx: u32) -> Self {
        EventId { rank, idx }
    }
}

/// What happened at an event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The rank entered the job (`MPI_Init`).
    Init,
    /// The rank left the job (`MPI_Finalize`).
    Finalize,
    /// The rank injected a message.
    Send {
        /// Destination rank.
        dst: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload size in bytes.
        bytes: u64,
        /// Position on the `(self, dst)` channel.
        seq: ChannelSeq,
    },
    /// The rank completed a receive.
    Recv {
        /// The matched sender.
        src: Rank,
        /// Tag of the matched message.
        tag: Tag,
        /// Payload size in bytes.
        bytes: u64,
        /// The send event that produced the matched message.
        send_event: EventId,
        /// Channel sequence number of the matched message.
        seq: ChannelSeq,
        /// True when the receive was posted with a source or tag wildcard —
        /// the class of receive that admits races.
        wildcard: bool,
        /// The posting ordinal of the receive on its rank. Nonblocking
        /// receives appear in the trace at the wait that completes them,
        /// so event order need not equal posting order; record/replay is
        /// keyed by this ordinal.
        post_ordinal: u32,
    },
}

impl EventKind {
    /// A short mnemonic: "init", "send", "recv", "finalize".
    pub fn mnemonic(&self) -> &'static str {
        match self {
            EventKind::Init => "init",
            EventKind::Finalize => "finalize",
            EventKind::Send { .. } => "send",
            EventKind::Recv { .. } => "recv",
        }
    }

    /// True for send events.
    pub fn is_send(&self) -> bool {
        matches!(self, EventKind::Send { .. })
    }

    /// True for receive events.
    pub fn is_recv(&self) -> bool {
        matches!(self, EventKind::Recv { .. })
    }
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Simulated completion time of the event.
    pub time: SimTime,
    /// Call path that issued the operation.
    pub stack: CallStackId,
}

/// Summary metadata for a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// RNG seed of the run.
    pub seed: u64,
    /// The non-determinism fraction the network was configured with.
    pub nd_fraction: f64,
    /// Number of compute nodes simulated.
    pub nodes: u32,
    /// Simulated makespan (latest event time).
    pub makespan: SimTime,
    /// Total messages delivered.
    pub messages: u64,
    /// Messages that were never received (normally zero).
    pub unmatched_messages: u64,
}

/// A complete execution trace.
///
/// Events live in one rank-major *arena*: a single flat allocation sliced
/// per rank by an offsets table. At HPC scale (1024 ranks × tens of
/// millions of events) this replaces one heap allocation per rank with
/// one for the whole trace, keeps rank iteration cache-linear, and lets
/// downstream consumers (graph construction, feature extraction) stream
/// the trace without any `Vec<Vec<_>>` intermediate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    world_size: u32,
    /// All events, rank-major: rank `r`'s events in program order occupy
    /// `events[offsets[r] .. offsets[r + 1]]`.
    events: Vec<TraceEvent>,
    /// Per-rank extents into `events`; `world_size + 1` entries.
    offsets: Vec<u64>,
    stacks: CallStackTable,
    /// Run metadata.
    pub meta: TraceMeta,
}

impl Trace {
    /// Assemble a trace from per-rank event lists (used by the engine).
    /// Each inner vector is consumed — and its allocation released —
    /// as soon as it has been copied into the arena, so peak memory stays
    /// bounded by the arena plus the not-yet-drained tail.
    pub(crate) fn new(
        world_size: u32,
        events: Vec<Vec<TraceEvent>>,
        stacks: CallStackTable,
        meta: TraceMeta,
    ) -> Self {
        debug_assert_eq!(events.len(), world_size as usize);
        let total: usize = events.iter().map(Vec::len).sum();
        let mut flat = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(world_size as usize + 1);
        offsets.push(0u64);
        for rank_events in events {
            debug_assert!(
                rank_events.len() <= u32::MAX as usize,
                "per-rank event count exceeds the u32 EventId space"
            );
            flat.extend(rank_events);
            offsets.push(flat.len() as u64);
        }
        Trace {
            world_size,
            events: flat,
            offsets,
            stacks,
            meta,
        }
    }

    /// Assemble a trace directly from an arena and offsets table (used by
    /// the artifact decoder, which reads events in rank-major order and
    /// can therefore fill the arena with no per-rank staging).
    pub(crate) fn from_flat(
        world_size: u32,
        events: Vec<TraceEvent>,
        offsets: Vec<u64>,
        stacks: CallStackTable,
        meta: TraceMeta,
    ) -> Self {
        debug_assert_eq!(offsets.len(), world_size as usize + 1);
        debug_assert_eq!(*offsets.first().unwrap_or(&1), 0);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), events.len() as u64);
        debug_assert!(offsets
            .windows(2)
            .all(|w| { w[0] <= w[1] && w[1] - w[0] <= u32::MAX as u64 }));
        Trace {
            world_size,
            events,
            offsets,
            stacks,
            meta,
        }
    }

    /// Number of ranks.
    pub fn world_size(&self) -> u32 {
        self.world_size
    }

    /// Rank `r`'s events in program order.
    pub fn rank_events(&self, rank: Rank) -> &[TraceEvent] {
        let lo = self.offsets[rank.index()] as usize;
        let hi = self.offsets[rank.index() + 1] as usize;
        &self.events[lo..hi]
    }

    /// Look up an event by id.
    pub fn event(&self, id: EventId) -> &TraceEvent {
        &self.rank_events(id.rank)[id.idx as usize]
    }

    /// The interned call-path table.
    pub fn stacks(&self) -> &CallStackTable {
        &self.stacks
    }

    /// Total number of events.
    pub fn total_events(&self) -> usize {
        self.events.len()
    }

    /// Iterate over all events as `(id, event)` pairs, rank-major.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &TraceEvent)> {
        (0..self.world_size).flat_map(move |r| {
            let rank = Rank(r);
            self.rank_events(rank)
                .iter()
                .enumerate()
                .map(move |(i, e)| {
                    (
                        EventId {
                            rank,
                            idx: i as u32,
                        },
                        e,
                    )
                })
        })
    }

    /// The sequence of matched sources for each receive on `rank`, in
    /// program order — the "match order" that differs across
    /// non-deterministic runs.
    pub fn match_order(&self, rank: Rank) -> Vec<Rank> {
        self.rank_events(rank)
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Recv { src, .. } => Some(src),
                _ => None,
            })
            .collect()
    }

    /// Count of receive events that were posted with a wildcard.
    pub fn wildcard_recv_count(&self) -> usize {
        self.iter()
            .filter(|(_, e)| matches!(e.kind, EventKind::Recv { wildcard: true, .. }))
            .count()
    }

    /// Emit every event of this trace onto `tracer` as simulated-time
    /// timeline records, tagged with the campaign run index `run` (the
    /// seed is taken from [`TraceMeta`]). Matched sends and receives
    /// share an [`message_id`] derived from `(run, src, dst, channel
    /// seq)`, computable independently on either side, so exporters can
    /// draw inter-rank message arrows.
    ///
    /// This reads a *finished* trace — it runs after the simulation has
    /// completed, so tracing cannot perturb simulated time or the
    /// injection RNG by construction.
    pub fn record_into(&self, tracer: &Tracer, run: u32) {
        // When a streaming sink is attached, pump the ring every few
        // thousand records so the drain cursor keeps pace with recording
        // and a bounded ring never overflows mid-run. Recording happens
        // after the simulation finished, so pumping cannot perturb
        // simulated time.
        const PUMP_EVERY: usize = 4096;
        let mut since_pump = 0usize;
        for (id, e) in self.iter() {
            let kind = match e.kind {
                EventKind::Init => SimEventKind::Init,
                EventKind::Finalize => SimEventKind::Finalize,
                EventKind::Send { dst, seq, .. } => SimEventKind::Send {
                    msg_id: message_id(run, id.rank.0, dst.0, seq.0),
                },
                EventKind::Recv {
                    src, seq, wildcard, ..
                } => SimEventKind::Recv {
                    msg_id: message_id(run, src.0, id.rank.0, seq.0),
                    wildcard,
                },
            };
            tracer.record(TraceRecord::Sim(SimEvent {
                run,
                seed: self.meta.seed,
                rank: id.rank.0,
                idx: id.idx,
                kind,
                t_ns: e.time.nanos(),
            }));
            since_pump += 1;
            if since_pump >= PUMP_EVERY {
                since_pump = 0;
                tracer.pump();
            }
        }
        tracer.pump();
    }

    /// Check internal consistency: every receive's `send_event` must point
    /// at a send with matching destination, tag and seq. Returns the number
    /// of receive events verified.
    pub fn validate(&self) -> Result<usize, String> {
        let mut checked = 0;
        for (id, e) in self.iter() {
            if let EventKind::Recv {
                src,
                tag,
                send_event,
                seq,
                ..
            } = e.kind
            {
                if send_event.rank != src {
                    return Err(format!(
                        "recv {id:?} claims src {src} but send event is on {}",
                        send_event.rank
                    ));
                }
                let se = (send_event.rank.index() < self.world_size as usize)
                    .then(|| self.rank_events(send_event.rank))
                    .and_then(|v| v.get(send_event.idx as usize))
                    .ok_or_else(|| format!("recv {id:?} references missing send {send_event:?}"))?;
                match se.kind {
                    EventKind::Send {
                        dst,
                        tag: stag,
                        seq: sseq,
                        ..
                    } => {
                        if dst != id.rank || stag != tag || sseq != seq {
                            return Err(format!(
                                "recv {id:?} does not correspond to send {send_event:?}"
                            ));
                        }
                    }
                    _ => {
                        return Err(format!(
                            "recv {id:?} references non-send event {send_event:?}"
                        ))
                    }
                }
                checked += 1;
            }
        }
        Ok(checked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> Trace {
        // rank 0: init, send(->1), finalize ; rank 1: init, recv(<-0), finalize
        let stacks = CallStackTable::new();
        let r0 = vec![
            TraceEvent {
                kind: EventKind::Init,
                time: SimTime(0),
                stack: CallStackId::UNKNOWN,
            },
            TraceEvent {
                kind: EventKind::Send {
                    dst: Rank(1),
                    tag: Tag(0),
                    bytes: 8,
                    seq: ChannelSeq(0),
                },
                time: SimTime(10),
                stack: CallStackId::UNKNOWN,
            },
            TraceEvent {
                kind: EventKind::Finalize,
                time: SimTime(20),
                stack: CallStackId::UNKNOWN,
            },
        ];
        let r1 = vec![
            TraceEvent {
                kind: EventKind::Init,
                time: SimTime(0),
                stack: CallStackId::UNKNOWN,
            },
            TraceEvent {
                kind: EventKind::Recv {
                    src: Rank(0),
                    tag: Tag(0),
                    bytes: 8,
                    send_event: EventId::new(Rank(0), 1),
                    seq: ChannelSeq(0),
                    wildcard: true,
                    post_ordinal: 0,
                },
                time: SimTime(15),
                stack: CallStackId::UNKNOWN,
            },
            TraceEvent {
                kind: EventKind::Finalize,
                time: SimTime(25),
                stack: CallStackId::UNKNOWN,
            },
        ];
        Trace::new(
            2,
            vec![r0, r1],
            stacks,
            TraceMeta {
                seed: 0,
                nd_fraction: 0.0,
                nodes: 1,
                makespan: SimTime(25),
                messages: 1,
                unmatched_messages: 0,
            },
        )
    }

    #[test]
    fn accessors() {
        let t = tiny_trace();
        assert_eq!(t.world_size(), 2);
        assert_eq!(t.total_events(), 6);
        assert_eq!(t.rank_events(Rank(0)).len(), 3);
        assert_eq!(t.event(EventId::new(Rank(1), 1)).kind.mnemonic(), "recv");
        assert_eq!(t.wildcard_recv_count(), 1);
        assert_eq!(t.match_order(Rank(1)), vec![Rank(0)]);
        assert_eq!(t.match_order(Rank(0)), Vec::<Rank>::new());
    }

    #[test]
    fn iter_yields_ids_in_rank_major_order() {
        let t = tiny_trace();
        let ids: Vec<_> = t.iter().map(|(id, _)| (id.rank.0, id.idx)).collect();
        assert_eq!(ids, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn validate_accepts_consistent_trace() {
        assert_eq!(tiny_trace().validate(), Ok(1));
    }

    #[test]
    fn validate_rejects_wrong_linkage() {
        let mut t = tiny_trace();
        // Corrupt the recv (rank 1, idx 1 — arena slot offsets[1] + 1) to
        // point at the finalize event.
        let slot = t.offsets[1] as usize + 1;
        if let EventKind::Recv { send_event, .. } = &mut t.events[slot].kind {
            *send_event = EventId::new(Rank(0), 2);
        }
        assert!(t.validate().is_err());
    }

    #[test]
    fn record_into_emits_every_event_with_shared_message_ids() {
        let t = tiny_trace();
        let tracer = Tracer::with_capacity(64);
        t.record_into(&tracer, 3);
        let snap = tracer.snapshot();
        assert_eq!(snap.sim.len(), t.total_events());
        assert_eq!(snap.dropped, 0);
        assert!(snap.sim.iter().all(|e| e.run == 3 && e.seed == t.meta.seed));
        let send_id = snap
            .sim
            .iter()
            .find_map(|e| match e.kind {
                SimEventKind::Send { msg_id } => Some(msg_id),
                _ => None,
            })
            .expect("send recorded");
        let (recv_id, wildcard) = snap
            .sim
            .iter()
            .find_map(|e| match e.kind {
                SimEventKind::Recv { msg_id, wildcard } => Some((msg_id, wildcard)),
                _ => None,
            })
            .expect("recv recorded");
        assert_eq!(send_id, recv_id, "matched pair shares a message id");
        assert!(wildcard);
        // Simulated timestamps carry over unchanged.
        let send_ev = snap
            .sim
            .iter()
            .find(|e| matches!(e.kind, SimEventKind::Send { .. }))
            .unwrap();
        assert_eq!(send_ev.t_ns, 10);
    }

    #[test]
    fn event_kind_helpers() {
        let t = tiny_trace();
        assert!(t.event(EventId::new(Rank(0), 1)).kind.is_send());
        assert!(t.event(EventId::new(Rank(1), 1)).kind.is_recv());
        assert!(!t.event(EventId::new(Rank(0), 0)).kind.is_send());
    }
}
