//! Programs and the builder DSL used to express communication patterns.
//!
//! A [`Program`] is the static description of one MPI job: for each rank, a
//! straight-line list of [`Op`]s, plus the interned call-path table. The
//! mini-applications in `anacin-miniapps` are functions from configuration
//! to `Program`.

use crate::ops::Op;
use crate::stack::{CallStackId, CallStackTable};
use crate::types::{Rank, ReqSlot, SrcSpec, Tag, TagSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete MPI job description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    world_size: u32,
    rank_ops: Vec<Vec<Op>>,
    stacks: CallStackTable,
}

impl Program {
    /// Number of ranks in the job.
    pub fn world_size(&self) -> u32 {
        self.world_size
    }

    /// The op list of one rank.
    ///
    /// # Panics
    /// Panics when `rank` is out of range.
    pub fn ops(&self, rank: Rank) -> &[Op] {
        &self.rank_ops[rank.index()]
    }

    /// The interned call-path table.
    pub fn stacks(&self) -> &CallStackTable {
        &self.stacks
    }

    /// Total number of operations across all ranks.
    pub fn total_ops(&self) -> usize {
        self.rank_ops.iter().map(Vec::len).sum()
    }

    /// Total number of messages the program will inject.
    pub fn total_sends(&self) -> usize {
        self.rank_ops
            .iter()
            .flatten()
            .filter(|op| op.is_send())
            .count()
    }

    /// Total number of receives the program posts.
    pub fn total_receives(&self) -> usize {
        self.rank_ops
            .iter()
            .flatten()
            .filter(|op| op.is_receive())
            .count()
    }

    /// Statically check request usage: every `isend`/`irecv` request must
    /// be waited on exactly once, and waits may only reference created
    /// slots. Catches the classic student bugs (forgotten `MPI_Wait`,
    /// double wait) before a run produces a confusing trace.
    pub fn check_requests(&self) -> Result<(), RequestError> {
        for (r, ops) in self.rank_ops.iter().enumerate() {
            let rank = Rank(r as u32);
            let mut created: Vec<ReqSlot> = Vec::new();
            let mut waited: Vec<ReqSlot> = Vec::new();
            for op in ops {
                match op {
                    Op::Isend { req, .. } | Op::Irecv { req, .. } => created.push(*req),
                    Op::Wait { req, .. } => waited.push(*req),
                    Op::Waitall { reqs, .. } => waited.extend(reqs.iter().copied()),
                    _ => {}
                }
            }
            for &w in &waited {
                if !created.contains(&w) {
                    return Err(RequestError::WaitOnUnknown { rank, req: w });
                }
            }
            let mut sorted = waited.clone();
            sorted.sort_by_key(|s| s.0);
            for pair in sorted.windows(2) {
                if pair[0] == pair[1] {
                    return Err(RequestError::DoubleWait { rank, req: pair[0] });
                }
            }
            for &c in &created {
                if !waited.contains(&c) {
                    return Err(RequestError::NeverWaited { rank, req: c });
                }
            }
        }
        Ok(())
    }

    /// Check that every rank receives exactly as many messages as are sent
    /// to it. An imbalance guarantees either a deadlock (missing message)
    /// or an unmatched send, so surfacing it early gives students a much
    /// better diagnostic than a hung run.
    pub fn check_balance(&self) -> Result<(), BalanceError> {
        let n = self.world_size as usize;
        let mut inbound = vec![0i64; n];
        let mut posted = vec![0i64; n];
        for (r, ops) in self.rank_ops.iter().enumerate() {
            for op in ops {
                match op {
                    Op::Send { dst, .. } | Op::Ssend { dst, .. } | Op::Isend { dst, .. } => {
                        inbound[dst.index()] += 1;
                    }
                    Op::Recv { .. } | Op::Irecv { .. } => {
                        posted[r] += 1;
                    }
                    _ => {}
                }
            }
        }
        for r in 0..n {
            if inbound[r] != posted[r] {
                return Err(BalanceError {
                    rank: Rank(r as u32),
                    inbound: inbound[r] as u64,
                    posted: posted[r] as u64,
                });
            }
        }
        Ok(())
    }
}

/// A request-usage defect found by [`Program::check_requests`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// A wait references a slot no isend/irecv created.
    WaitOnUnknown {
        /// The offending rank.
        rank: Rank,
        /// The unknown slot.
        req: ReqSlot,
    },
    /// The same request is waited on more than once.
    DoubleWait {
        /// The offending rank.
        rank: Rank,
        /// The slot waited twice.
        req: ReqSlot,
    },
    /// A request is created but never waited on — for receives this means
    /// a matched message whose completion is never observed.
    NeverWaited {
        /// The offending rank.
        rank: Rank,
        /// The orphaned slot.
        req: ReqSlot,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::WaitOnUnknown { rank, req } => {
                write!(
                    f,
                    "{rank} waits on slot {} which no isend/irecv created",
                    req.0
                )
            }
            RequestError::DoubleWait { rank, req } => {
                write!(f, "{rank} waits on slot {} more than once", req.0)
            }
            RequestError::NeverWaited { rank, req } => {
                write!(f, "{rank} never waits on request slot {}", req.0)
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// A send/receive count mismatch detected by [`Program::check_balance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceError {
    /// The rank whose books do not balance.
    pub rank: Rank,
    /// Messages addressed to the rank.
    pub inbound: u64,
    /// Receives the rank posts.
    pub posted: u64,
}

impl fmt::Display for BalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} is sent {} message(s) but posts {} receive(s)",
            self.rank, self.inbound, self.posted
        )
    }
}

impl std::error::Error for BalanceError {}

/// Builder for [`Program`]s.
///
/// See also [`Program::check_requests`] for static request-usage checks.
///
/// ```
/// use anacin_mpisim::program::ProgramBuilder;
/// use anacin_mpisim::types::{Rank, Tag};
///
/// let mut b = ProgramBuilder::new(2);
/// b.rank(Rank(0)).send(Rank(1), Tag(0), 8);
/// b.rank(Rank(1)).recv_any(Tag(0).into());
/// let program = b.build();
/// assert_eq!(program.total_sends(), 1);
/// assert!(program.check_balance().is_ok());
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    world_size: u32,
    rank_ops: Vec<Vec<Op>>,
    stacks: CallStackTable,
    req_counters: Vec<u32>,
    contexts: Vec<Vec<String>>,
}

impl ProgramBuilder {
    /// Start a program for `world_size` ranks.
    ///
    /// # Panics
    /// Panics when `world_size` is zero.
    pub fn new(world_size: u32) -> Self {
        assert!(world_size > 0, "world_size must be positive");
        ProgramBuilder {
            world_size,
            rank_ops: vec![Vec::new(); world_size as usize],
            stacks: CallStackTable::new(),
            req_counters: vec![0; world_size as usize],
            contexts: vec![Vec::new(); world_size as usize],
        }
    }

    /// Access a per-rank builder.
    ///
    /// # Panics
    /// Panics when `rank` is out of range.
    pub fn rank(&mut self, rank: Rank) -> RankBuilder<'_> {
        assert!(
            rank.0 < self.world_size,
            "{rank} out of range for world size {}",
            self.world_size
        );
        RankBuilder {
            builder: self,
            rank,
        }
    }

    /// Iterate a closure over every rank (convenient for SPMD patterns).
    pub fn for_each_rank(&mut self, mut f: impl FnMut(RankBuilder<'_>)) {
        for r in 0..self.world_size {
            f(self.rank(Rank(r)));
        }
    }

    /// Finalize the program.
    pub fn build(self) -> Program {
        Program {
            world_size: self.world_size,
            rank_ops: self.rank_ops,
            stacks: self.stacks,
        }
    }

    fn intern_with_leaf(&mut self, rank: Rank, leaf: &str) -> CallStackId {
        let ctx = &self.contexts[rank.index()];
        let mut frames: Vec<String> = Vec::with_capacity(ctx.len() + 1);
        frames.extend(ctx.iter().cloned());
        frames.push(leaf.to_string());
        self.stacks.intern(crate::stack::CallStack::new(frames))
    }
}

/// Per-rank view into a [`ProgramBuilder`].
///
/// The builder maintains a *call-path context* per rank: frames pushed with
/// [`RankBuilder::push_frame`] prefix every subsequently issued MPI op, and
/// the MPI mnemonic is appended automatically as the leaf frame. This is
/// how mini-applications attach realistic call paths to their traffic.
pub struct RankBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    rank: Rank,
}

impl<'a> RankBuilder<'a> {
    /// The rank this builder appends to.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Push a context frame (e.g. a function name) for subsequent ops.
    pub fn push_frame(&mut self, frame: impl Into<String>) -> &mut Self {
        self.builder.contexts[self.rank.index()].push(frame.into());
        self
    }

    /// Pop the innermost context frame.
    pub fn pop_frame(&mut self) -> &mut Self {
        self.builder.contexts[self.rank.index()].pop();
        self
    }

    /// Replace the whole context.
    pub fn set_context<I, S>(&mut self, frames: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.builder.contexts[self.rank.index()] = frames.into_iter().map(Into::into).collect();
        self
    }

    /// Run `f` with `frame` pushed, popping it afterwards.
    pub fn scoped(&mut self, frame: impl Into<String>, f: impl FnOnce(&mut Self)) -> &mut Self {
        self.push_frame(frame);
        f(self);
        self.pop_frame();
        self
    }

    fn push_op(&mut self, op: Op) {
        self.builder.rank_ops[self.rank.index()].push(op);
    }

    fn alloc_req(&mut self) -> ReqSlot {
        let c = &mut self.builder.req_counters[self.rank.index()];
        let slot = ReqSlot(*c);
        *c += 1;
        slot
    }

    /// Blocking send of `bytes` bytes to `dst` with `tag`.
    pub fn send(&mut self, dst: Rank, tag: Tag, bytes: u64) -> &mut Self {
        let stack = self.builder.intern_with_leaf(self.rank, "MPI_Send");
        self.push_op(Op::Send {
            dst,
            tag,
            bytes,
            stack,
        });
        self
    }

    /// Synchronous (rendezvous) send: the op completes only once the
    /// receiver matches the message. Two ranks `ssend`-ing to each other
    /// before receiving is the textbook deadlock.
    pub fn ssend(&mut self, dst: Rank, tag: Tag, bytes: u64) -> &mut Self {
        let stack = self.builder.intern_with_leaf(self.rank, "MPI_Ssend");
        self.push_op(Op::Ssend {
            dst,
            tag,
            bytes,
            stack,
        });
        self
    }

    /// `MPI_Sendrecv` sugar: a nonblocking send and a nonblocking receive
    /// posted together and waited on jointly — the deadlock-free exchange
    /// idiom.
    pub fn sendrecv(&mut self, dst: Rank, src: Rank, tag: Tag, bytes: u64) -> &mut Self {
        let s = self.isend(dst, tag, bytes);
        let r = self.irecv(src, TagSpec::Tag(tag));
        self.waitall(vec![s, r]);
        self
    }

    /// Nonblocking send; returns the request slot to wait on.
    pub fn isend(&mut self, dst: Rank, tag: Tag, bytes: u64) -> ReqSlot {
        let stack = self.builder.intern_with_leaf(self.rank, "MPI_Isend");
        let req = self.alloc_req();
        self.push_op(Op::Isend {
            dst,
            tag,
            bytes,
            stack,
            req,
        });
        req
    }

    /// Blocking receive from a specific source.
    pub fn recv(&mut self, src: Rank, tag: TagSpec) -> &mut Self {
        let stack = self.builder.intern_with_leaf(self.rank, "MPI_Recv");
        self.push_op(Op::Recv {
            src: SrcSpec::Rank(src),
            tag,
            stack,
        });
        self
    }

    /// Blocking wildcard receive (`MPI_ANY_SOURCE`).
    pub fn recv_any(&mut self, tag: TagSpec) -> &mut Self {
        let stack = self.builder.intern_with_leaf(self.rank, "MPI_Recv");
        self.push_op(Op::Recv {
            src: SrcSpec::Any,
            tag,
            stack,
        });
        self
    }

    /// Nonblocking receive from a specific source.
    pub fn irecv(&mut self, src: Rank, tag: TagSpec) -> ReqSlot {
        let stack = self.builder.intern_with_leaf(self.rank, "MPI_Irecv");
        let req = self.alloc_req();
        self.push_op(Op::Irecv {
            src: SrcSpec::Rank(src),
            tag,
            stack,
            req,
        });
        req
    }

    /// Nonblocking wildcard receive (`MPI_ANY_SOURCE`).
    pub fn irecv_any(&mut self, tag: TagSpec) -> ReqSlot {
        let stack = self.builder.intern_with_leaf(self.rank, "MPI_Irecv");
        let req = self.alloc_req();
        self.push_op(Op::Irecv {
            src: SrcSpec::Any,
            tag,
            stack,
            req,
        });
        req
    }

    /// Block until `req` completes.
    pub fn wait(&mut self, req: ReqSlot) -> &mut Self {
        let stack = self.builder.intern_with_leaf(self.rank, "MPI_Wait");
        self.push_op(Op::Wait { req, stack });
        self
    }

    /// Block until all `reqs` complete.
    pub fn waitall(&mut self, reqs: Vec<ReqSlot>) -> &mut Self {
        let stack = self.builder.intern_with_leaf(self.rank, "MPI_Waitall");
        self.push_op(Op::Waitall { reqs, stack });
        self
    }

    /// Local computation for `duration_ns` simulated nanoseconds.
    pub fn compute(&mut self, duration_ns: u64) -> &mut Self {
        self.push_op(Op::Compute { duration_ns });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_pingpong() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0))
            .send(Rank(1), Tag(0), 4)
            .recv(Rank(1), Tag(1).into());
        b.rank(Rank(1))
            .recv(Rank(0), Tag(0).into())
            .send(Rank(0), Tag(1), 4);
        let p = b.build();
        assert_eq!(p.world_size(), 2);
        assert_eq!(p.total_ops(), 4);
        assert_eq!(p.total_sends(), 2);
        assert_eq!(p.total_receives(), 2);
        assert!(p.check_balance().is_ok());
    }

    #[test]
    fn balance_detects_missing_receive() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).send(Rank(1), Tag(0), 4);
        let p = b.build();
        let err = p.check_balance().unwrap_err();
        assert_eq!(err.rank, Rank(1));
        assert_eq!(err.inbound, 1);
        assert_eq!(err.posted, 0);
        assert!(err.to_string().contains("rank 1"));
    }

    #[test]
    fn request_slots_are_per_rank_and_sequential() {
        let mut b = ProgramBuilder::new(2);
        let r0a = b.rank(Rank(0)).isend(Rank(1), Tag(0), 1);
        let r0b = b.rank(Rank(0)).irecv(Rank(1), Tag(0).into());
        let r1a = b.rank(Rank(1)).irecv_any(TagSpec::Any);
        assert_eq!(r0a, ReqSlot(0));
        assert_eq!(r0b, ReqSlot(1));
        assert_eq!(r1a, ReqSlot(0));
    }

    #[test]
    fn context_frames_shape_call_paths() {
        let mut b = ProgramBuilder::new(1);
        {
            let mut rb = b.rank(Rank(0));
            rb.push_frame("main");
            rb.scoped("exchange_halo", |rb| {
                rb.send(Rank(0), Tag(0), 1);
            });
            rb.recv(Rank(0), Tag(0).into());
        }
        let p = b.build();
        let ops = p.ops(Rank(0));
        let send_stack = p.stacks().resolve(ops[0].stack().unwrap());
        assert_eq!(send_stack.frames(), ["main", "exchange_halo", "MPI_Send"]);
        let recv_stack = p.stacks().resolve(ops[1].stack().unwrap());
        assert_eq!(recv_stack.frames(), ["main", "MPI_Recv"]);
    }

    #[test]
    fn check_requests_accepts_clean_programs() {
        let mut b = ProgramBuilder::new(2);
        {
            let mut r0 = b.rank(Rank(0));
            let s = r0.isend(Rank(1), Tag(0), 1);
            let r = r0.irecv(Rank(1), Tag(0).into());
            r0.waitall(vec![s, r]);
        }
        b.rank(Rank(1)).sendrecv(Rank(0), Rank(0), Tag(0), 1);
        b.build().check_requests().unwrap();
    }

    #[test]
    fn check_requests_finds_forgotten_wait() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).isend(Rank(1), Tag(0), 1);
        b.rank(Rank(1)).recv(Rank(0), Tag(0).into());
        match b.build().check_requests() {
            Err(RequestError::NeverWaited { rank, req }) => {
                assert_eq!(rank, Rank(0));
                assert_eq!(req, ReqSlot(0));
            }
            other => panic!("expected NeverWaited, got {other:?}"),
        }
    }

    #[test]
    fn check_requests_finds_double_wait() {
        let mut b = ProgramBuilder::new(2);
        {
            let mut r0 = b.rank(Rank(0));
            let s = r0.isend(Rank(1), Tag(0), 1);
            r0.wait(s).wait(s);
        }
        b.rank(Rank(1)).recv(Rank(0), Tag(0).into());
        let err = b.build().check_requests().unwrap_err();
        assert!(matches!(err, RequestError::DoubleWait { .. }));
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn check_requests_finds_unknown_wait() {
        let mut b = ProgramBuilder::new(1);
        b.rank(Rank(0)).wait(ReqSlot(7));
        let err = b.build().check_requests().unwrap_err();
        assert!(matches!(err, RequestError::WaitOnUnknown { .. }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let mut b = ProgramBuilder::new(1);
        b.rank(Rank(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_world_size_panics() {
        ProgramBuilder::new(0);
    }

    #[test]
    fn for_each_rank_visits_all() {
        let mut b = ProgramBuilder::new(4);
        b.for_each_rank(|mut rb| {
            rb.compute(10);
        });
        let p = b.build();
        assert_eq!(p.total_ops(), 4);
    }
}
