//! The discrete-event execution engine.
//!
//! The engine runs a [`Program`] under a [`NetworkConfig`] and a seed, and
//! produces a [`Trace`]. Only message *arrivals* are queued events; rank
//! execution is performed inline, which is sound because a rank's behaviour
//! between blocking points depends only on already-delivered messages, and
//! MPI matching is insensitive to whether a receive is posted before or
//! after a message it does not yet see (the posted/unexpected queues
//! commute). The queue is ordered by `(time, injection seq)`, so runs are
//! bit-reproducible for a given seed.
//!
//! Non-determinism across *seeds* enters exclusively through the network
//! model's congestion delays; with `nd_fraction = 0` every seed produces
//! the identical trace (verified by tests).
//!
//! ## Event placement
//!
//! Blocking receives produce their trace event at their own program
//! position. Nonblocking receives produce their event at the `wait` that
//! completes them (in request-list order) — mirroring how real MPI tracers
//! observe completion, and, crucially, keeping the event graph acyclic:
//! placing the completion at the `irecv` post site would put a receive
//! *before* the sends of the same exchange phase in program order, which
//! combined with message edges creates cycles in all-to-all patterns.

use crate::counters::SimCounters;
use crate::matching::{InFlightMsg, MatchEngine, PostKind, PostedRecv};
use crate::network::{NetworkConfig, NetworkModel};
use crate::ops::Op;
use crate::program::Program;
use crate::replay::MatchRecord;
use crate::stack::CallStackId;
use crate::trace::{EventId, EventKind, Trace, TraceEvent, TraceMeta};
use crate::types::{ChannelSeq, Rank, ReqSlot, SimTime, Tag};
use anacin_obs::{MetricsRegistry, Tracer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Configuration of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Platform and delay model.
    pub network: NetworkConfig,
    /// RNG seed; distinct seeds model distinct "runs" of the application.
    pub seed: u64,
}

impl SimConfig {
    /// A deterministic run (nd_fraction = 0) with seed 0.
    pub fn deterministic() -> Self {
        SimConfig {
            network: NetworkConfig::deterministic(),
            seed: 0,
        }
    }

    /// A run with the given ND percentage and seed.
    pub fn with_nd_percent(percent: f64, seed: u64) -> Self {
        SimConfig {
            network: NetworkConfig::with_nd_percent(percent),
            seed,
        }
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No runnable rank and no in-flight message: classic deadlock.
    Deadlock(DeadlockReport),
    /// A wait referenced a request slot that was never created.
    UnknownRequest {
        /// The offending rank.
        rank: Rank,
        /// The unknown slot.
        req: ReqSlot,
    },
    /// A rank's trace outgrew the `u32` event-index space (or its receive
    /// ordinals did). Event ids are `(rank, u32)` pairs throughout the
    /// pipeline — past 2³² events the old `as u32` cast silently wrapped
    /// and corrupted the trace; now the run fails loudly instead.
    TraceTooLarge {
        /// The rank whose per-rank event count overflowed.
        rank: Rank,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(r) => write!(f, "deadlock: {r}"),
            SimError::UnknownRequest { rank, req } => {
                write!(f, "{rank} waited on unknown request slot {}", req.0)
            }
            SimError::TraceTooLarge { rank } => {
                write!(f, "{rank} exceeded {} trace events", u32::MAX)
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Diagnostic emitted when the job hangs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// One entry per rank that did not reach `Finalize`.
    pub blocked: Vec<BlockedRank>,
    /// Messages that arrived but were never received.
    pub unmatched_messages: u64,
}

/// One blocked rank in a [`DeadlockReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedRank {
    /// The blocked rank.
    pub rank: Rank,
    /// Index of the op it is stuck on.
    pub op_index: usize,
    /// Human-readable description of the blocking op.
    pub waiting_on: String,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rank(s) blocked ({} unmatched message(s)):",
            self.blocked.len(),
            self.unmatched_messages
        )?;
        for b in &self.blocked {
            write!(f, " [{} @op{}: {}]", b.rank, b.op_index, b.waiting_on)?;
        }
        Ok(())
    }
}

/// Details of a completed (but not yet emitted) nonblocking receive.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RecvCompletion {
    at: SimTime,
    src: Rank,
    tag: Tag,
    bytes: u64,
    send_event: EventId,
    seq: ChannelSeq,
    wildcard: bool,
    stack: CallStackId,
    ordinal: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ReqState {
    Unused,
    SendDone(SimTime),
    RecvPending {
        wildcard: bool,
        stack: CallStackId,
        ordinal: u32,
    },
    RecvDone(Box<RecvCompletion>),
    RecvEmitted(SimTime),
}

#[derive(Debug, PartialEq, Eq)]
enum Status {
    Ready,
    BlockedRecv,
    BlockedSsend,
    BlockedWait(Vec<ReqSlot>),
    Done,
}

struct RankState {
    pc: usize,
    now: SimTime,
    status: Status,
    requests: Vec<ReqState>,
    events: Vec<TraceEvent>,
    /// Next send sequence number per destination rank.
    chan_seq: Vec<u64>,
    /// Clamp: latest scheduled arrival per destination (non-overtaking).
    chan_last_arrival: Vec<SimTime>,
    /// Next receive ordinal (posting order; used by record/replay).
    recv_ordinal: u32,
}

impl RankState {
    fn new(world: usize) -> Self {
        RankState {
            pc: 0,
            now: SimTime::ZERO,
            status: Status::Ready,
            requests: Vec::new(),
            events: Vec::new(),
            chan_seq: vec![0; world],
            chan_last_arrival: vec![SimTime::ZERO; world],
            recv_ordinal: 0,
        }
    }

    fn req_mut(&mut self, slot: ReqSlot) -> &mut ReqState {
        let i = slot.index();
        if i >= self.requests.len() {
            self.requests.resize(i + 1, ReqState::Unused);
        }
        &mut self.requests[i]
    }

    fn req(&self, slot: ReqSlot) -> &ReqState {
        self.requests.get(slot.index()).unwrap_or(&ReqState::Unused)
    }

    /// Append an event, returning its rank-local index — or `None` once
    /// the index space is exhausted (the caller surfaces
    /// [`SimError::TraceTooLarge`]).
    fn emit(&mut self, kind: EventKind, time: SimTime, stack: CallStackId) -> Option<u32> {
        let idx = u32::try_from(self.events.len()).ok()?;
        self.events.push(TraceEvent { kind, time, stack });
        Some(idx)
    }

    /// Time of the most recent event (for monotone clamping of
    /// wait-emitted completions).
    fn last_event_time(&self) -> SimTime {
        self.events.last().map(|e| e.time).unwrap_or(SimTime::ZERO)
    }

    fn next_ordinal(&mut self) -> Option<u32> {
        let o = self.recv_ordinal;
        self.recv_ordinal = self.recv_ordinal.checked_add(1)?;
        Some(o)
    }
}

#[derive(PartialEq, Eq)]
struct QueuedArrival {
    time: SimTime,
    seq: u64,
    msg: InFlightMsg,
}

impl Ord for QueuedArrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for QueuedArrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Run `program` under `config` with free (MPI-standard) matching.
pub fn simulate(program: &Program, config: &SimConfig) -> Result<Trace, SimError> {
    Engine::new(program, config, None).run(None)
}

/// [`simulate`], instrumented: records the run's wall time under the span
/// `sim` and flushes execution counters (`sim/events`, `sim/messages`,
/// `sim/matched`, `sim/wildcard_matches`, `sim/delays_injected`) into
/// `metrics`. With `metrics = None` this is exactly [`simulate`] — the
/// instrumentation never touches simulated time or matching, so traces
/// are bit-identical either way.
pub fn simulate_with_metrics(
    program: &Program,
    config: &SimConfig,
    metrics: Option<&MetricsRegistry>,
) -> Result<Trace, SimError> {
    let counters = metrics.map(SimCounters::new);
    simulate_counted(program, config, metrics, counters.as_ref())
}

/// [`simulate_with_metrics`] with pre-resolved counter handles: `metrics`
/// provides only the per-run `sim` span; the six execution counters flush
/// through `counters` with lock-free atomic adds. Worker loops that
/// simulate many runs should create one [`SimCounters`] per worker and
/// call this, instead of paying six registry-map locks per run.
pub fn simulate_counted(
    program: &Program,
    config: &SimConfig,
    metrics: Option<&MetricsRegistry>,
    counters: Option<&SimCounters>,
) -> Result<Trace, SimError> {
    let _span = metrics.map(|m| m.span("sim"));
    Engine::new(program, config, None).run(counters)
}

/// [`simulate_with_metrics`], plus timeline tracing: when `tracer` is
/// given as `(tracer, run)`, every event of the finished trace is emitted
/// onto the tracer's ring as a simulated-time record tagged with `run`
/// and the config seed (see [`Trace::record_into`]).
///
/// Emission happens strictly *after* the engine has finished — the
/// simulation itself is byte-for-byte the same as [`simulate`], which is
/// the observability invariant the differential tests assert.
pub fn simulate_traced(
    program: &Program,
    config: &SimConfig,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<(&Tracer, u32)>,
) -> Result<Trace, SimError> {
    let counters = metrics.map(SimCounters::new);
    simulate_traced_counted(program, config, metrics, tracer, counters.as_ref())
}

/// [`simulate_traced`] with pre-resolved counter handles (see
/// [`simulate_counted`]): the campaign worker-pool entry point. One
/// [`SimCounters`] per worker batches counter flushes into lock-free
/// atomic adds instead of serialising every run on the registry mutex.
pub fn simulate_traced_counted(
    program: &Program,
    config: &SimConfig,
    metrics: Option<&MetricsRegistry>,
    tracer: Option<(&Tracer, u32)>,
    counters: Option<&SimCounters>,
) -> Result<Trace, SimError> {
    let trace = simulate_counted(program, config, metrics, counters)?;
    if let Some((tracer, run)) = tracer {
        trace.record_into(tracer, run);
    }
    Ok(trace)
}

/// Run `program` under `config`, forcing every wildcard receive to match
/// the message recorded in `record` (record-and-replay, à la ReMPI).
pub fn simulate_replay(
    program: &Program,
    config: &SimConfig,
    record: &MatchRecord,
) -> Result<Trace, SimError> {
    Engine::new(program, config, Some(record)).run(None)
}

struct Engine<'a> {
    program: &'a Program,
    network: NetworkModel<SmallRng>,
    config: SimConfig,
    ranks: Vec<RankState>,
    matchers: Vec<MatchEngine>,
    queue: BinaryHeap<Reverse<QueuedArrival>>,
    queue_seq: u64,
    messages: u64,
    replay: Option<&'a MatchRecord>,
}

impl<'a> Engine<'a> {
    fn new(program: &'a Program, config: &SimConfig, replay: Option<&'a MatchRecord>) -> Self {
        let world = program.world_size() as usize;
        let network = NetworkModel::new(
            config.network.clone(),
            program.world_size(),
            SmallRng::seed_from_u64(config.seed),
        );
        Engine {
            program,
            network,
            config: config.clone(),
            ranks: (0..world).map(|_| RankState::new(world)).collect(),
            matchers: (0..world).map(|_| MatchEngine::new()).collect(),
            queue: BinaryHeap::new(),
            queue_seq: 0,
            messages: 0,
            replay,
        }
    }

    fn run(mut self, counters: Option<&SimCounters>) -> Result<Trace, SimError> {
        let world = self.program.world_size();
        // Every rank calls Init at t=0 and runs to its first blocking point.
        for r in 0..world {
            let rank = Rank(r);
            self.ranks[rank.index()]
                .emit(EventKind::Init, SimTime::ZERO, CallStackId::UNKNOWN)
                .ok_or(SimError::TraceTooLarge { rank })?;
            self.run_rank(rank)?;
        }
        // Drain arrivals.
        while let Some(Reverse(QueuedArrival { msg, .. })) = self.queue.pop() {
            self.deliver(msg)?;
        }
        // Termination check.
        let blocked: Vec<BlockedRank> = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, rs)| rs.status != Status::Done)
            .map(|(r, rs)| {
                let rank = Rank(r as u32);
                let op = self.program.ops(rank).get(rs.pc.saturating_sub(1));
                BlockedRank {
                    rank,
                    op_index: rs.pc.saturating_sub(1),
                    waiting_on: op
                        .map(|o| format!("{o:?}"))
                        .unwrap_or_else(|| "<end of program>".to_string()),
                }
            })
            .collect();
        let unmatched: u64 = self
            .matchers
            .iter_mut()
            .map(|m| m.drain_unexpected().count() as u64)
            .sum();
        if !blocked.is_empty() {
            return Err(SimError::Deadlock(DeadlockReport {
                blocked,
                unmatched_messages: unmatched,
            }));
        }
        let makespan = self
            .ranks
            .iter()
            .map(|r| r.now)
            .max()
            .unwrap_or(SimTime::ZERO);
        let meta = TraceMeta {
            seed: self.config.seed,
            nd_fraction: self.config.network.nd_fraction,
            nodes: self.config.network.nodes,
            makespan,
            messages: self.messages,
            unmatched_messages: unmatched,
        };
        let events = self.ranks.into_iter().map(|r| r.events).collect();
        let trace = Trace::new(world, events, self.program.stacks().clone(), meta);
        if let Some(c) = counters {
            c.flush(&trace, self.network.delays_injected());
        }
        Ok(trace)
    }

    /// Execute `rank` from its current pc until it blocks or finishes.
    fn run_rank(&mut self, rank: Rank) -> Result<(), SimError> {
        let ops = self.program.ops(rank);
        loop {
            let pc = self.ranks[rank.index()].pc;
            let Some(op) = ops.get(pc) else {
                // Program exhausted: finalize.
                let now = self.ranks[rank.index()].now;
                self.ranks[rank.index()]
                    .emit(EventKind::Finalize, now, CallStackId::UNKNOWN)
                    .ok_or(SimError::TraceTooLarge { rank })?;
                self.ranks[rank.index()].status = Status::Done;
                return Ok(());
            };
            match op.clone() {
                Op::Send {
                    dst,
                    tag,
                    bytes,
                    stack,
                } => {
                    self.do_send(rank, dst, tag, bytes, stack, None, false)?;
                }
                Op::Ssend {
                    dst,
                    tag,
                    bytes,
                    stack,
                } => {
                    // Rendezvous: inject the message, then block until the
                    // receiver matches it (the engine wakes us from the
                    // match sites).
                    self.do_send(rank, dst, tag, bytes, stack, None, true)?;
                    self.ranks[rank.index()].status = Status::BlockedSsend;
                    self.ranks[rank.index()].pc = pc + 1;
                    return Ok(());
                }
                Op::Isend {
                    dst,
                    tag,
                    bytes,
                    stack,
                    req,
                } => {
                    self.do_send(rank, dst, tag, bytes, stack, Some(req), false)?;
                }
                Op::Recv { src, tag, stack } => {
                    let wildcard = src.is_wildcard() || tag.is_wildcard();
                    let rs = &mut self.ranks[rank.index()];
                    let ordinal = rs.next_ordinal().ok_or(SimError::TraceTooLarge { rank })?;
                    let posted_at = rs.now;
                    // Placeholder; overwritten on match.
                    let event_idx = rs
                        .emit(EventKind::Init, posted_at, stack)
                        .ok_or(SimError::TraceTooLarge { rank })?;
                    let forced = self.replay_constraint(rank, ordinal, wildcard);
                    let posted = PostedRecv {
                        src,
                        tag,
                        event_idx,
                        ordinal,
                        kind: PostKind::Blocking,
                        posted_at,
                        forced,
                    };
                    match self.matchers[rank.index()].on_post(posted) {
                        Some((recv, msg)) => {
                            self.fill_blocking_recv(rank, &recv, &msg, wildcard);
                            let completion = msg.arrival.max(recv.posted_at);
                            let rs = &mut self.ranks[rank.index()];
                            rs.now = rs
                                .now
                                .max(msg.arrival)
                                .after(self.config.network.recv_overhead_ns);
                            self.wake_sync_sender(&msg, completion)?;
                        }
                        None => {
                            self.ranks[rank.index()].status = Status::BlockedRecv;
                            self.ranks[rank.index()].pc = pc + 1;
                            return Ok(());
                        }
                    }
                }
                Op::Irecv {
                    src,
                    tag,
                    stack,
                    req,
                } => {
                    let wildcard = src.is_wildcard() || tag.is_wildcard();
                    let rs = &mut self.ranks[rank.index()];
                    let ordinal = rs.next_ordinal().ok_or(SimError::TraceTooLarge { rank })?;
                    let posted_at = rs.now;
                    *rs.req_mut(req) = ReqState::RecvPending {
                        wildcard,
                        stack,
                        ordinal,
                    };
                    let forced = self.replay_constraint(rank, ordinal, wildcard);
                    let posted = PostedRecv {
                        src,
                        tag,
                        event_idx: 0,
                        ordinal,
                        kind: PostKind::Nonblocking(req),
                        posted_at,
                        forced,
                    };
                    if let Some((recv, msg)) = self.matchers[rank.index()].on_post(posted) {
                        self.complete_nonblocking(rank, &recv, &msg);
                        let completion = msg.arrival.max(recv.posted_at);
                        self.wake_sync_sender(&msg, completion)?;
                    }
                    // Nonblocking: tiny software overhead, then continue.
                    let rs = &mut self.ranks[rank.index()];
                    rs.now = rs.now.after(self.config.network.recv_overhead_ns / 4);
                }
                Op::Wait { req, stack: _ } => {
                    if !self.try_complete_wait(rank, &[req])? {
                        self.ranks[rank.index()].status = Status::BlockedWait(vec![req]);
                        self.ranks[rank.index()].pc = pc + 1;
                        return Ok(());
                    }
                }
                Op::Waitall { reqs, stack: _ } => {
                    if !self.try_complete_wait(rank, &reqs)? {
                        self.ranks[rank.index()].status = Status::BlockedWait(reqs.clone());
                        self.ranks[rank.index()].pc = pc + 1;
                        return Ok(());
                    }
                }
                Op::Compute { duration_ns } => {
                    let rs = &mut self.ranks[rank.index()];
                    rs.now = rs.now.after(duration_ns);
                }
            }
            self.ranks[rank.index()].pc = pc + 1;
        }
    }

    /// The replay constraint for the receive with posting ordinal
    /// `ordinal` on `rank`, if replaying.
    fn replay_constraint(
        &mut self,
        rank: Rank,
        ordinal: u32,
        wildcard: bool,
    ) -> Option<(Rank, ChannelSeq)> {
        let record = self.replay?;
        if !wildcard {
            // Deterministic receives need no pinning.
            return None;
        }
        record.matched(rank, ordinal as usize)
    }

    #[allow(clippy::too_many_arguments)]
    fn do_send(
        &mut self,
        rank: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        stack: CallStackId,
        req: Option<ReqSlot>,
        sync: bool,
    ) -> Result<(), SimError> {
        let send_time = self.ranks[rank.index()].now;
        let seq = {
            let rs = &mut self.ranks[rank.index()];
            let c = &mut rs.chan_seq[dst.index()];
            let s = ChannelSeq(*c);
            *c += 1;
            s
        };
        let event_idx = self.ranks[rank.index()]
            .emit(
                EventKind::Send {
                    dst,
                    tag,
                    bytes,
                    seq,
                },
                send_time,
                stack,
            )
            .ok_or(SimError::TraceTooLarge { rank })?;
        // Delivery time, clamped per channel for non-overtaking.
        let raw = self.network.delivery_time(rank, dst, bytes, send_time);
        let arrival = {
            let rs = &mut self.ranks[rank.index()];
            let clamped = raw.max(rs.chan_last_arrival[dst.index()]);
            rs.chan_last_arrival[dst.index()] = clamped;
            clamped
        };
        let msg = InFlightMsg {
            src: rank,
            dst,
            tag,
            bytes,
            seq,
            send_event_idx: event_idx,
            arrival,
            sync,
        };
        self.queue_seq += 1;
        self.queue.push(Reverse(QueuedArrival {
            time: arrival,
            seq: self.queue_seq,
            msg,
        }));
        self.messages += 1;
        // Local completion.
        let rs = &mut self.ranks[rank.index()];
        rs.now = rs.now.after(self.config.network.send_overhead_ns);
        if let Some(slot) = req {
            *rs.req_mut(slot) = ReqState::SendDone(rs.now);
        }
        Ok(())
    }

    /// Wake the sender of a matched synchronous message. The rendezvous
    /// acknowledgement travels back over the base (deterministic) link
    /// latency; congestion is not re-drawn for acks, keeping the RNG
    /// stream identical to the non-synchronous execution.
    fn wake_sync_sender(&mut self, msg: &InFlightMsg, completion: SimTime) -> Result<(), SimError> {
        if !msg.sync {
            return Ok(());
        }
        let world = self.program.world_size();
        let net = &self.config.network;
        let same_node = net.node_of(msg.src, world) == net.node_of(msg.dst, world);
        let ack = if same_node {
            net.intra_node_latency_ns
        } else {
            net.inter_node_latency_ns
        };
        let sender = msg.src;
        debug_assert_eq!(self.ranks[sender.index()].status, Status::BlockedSsend);
        let rs = &mut self.ranks[sender.index()];
        rs.now = rs.now.max(completion.after(ack));
        rs.status = Status::Ready;
        self.run_rank(sender)
    }

    /// Fill in the trace event of a matched *blocking* receive.
    fn fill_blocking_recv(
        &mut self,
        rank: Rank,
        recv: &PostedRecv,
        msg: &InFlightMsg,
        wildcard: bool,
    ) {
        let completion = msg.arrival.max(recv.posted_at);
        let ev = &mut self.ranks[rank.index()].events[recv.event_idx as usize];
        ev.kind = EventKind::Recv {
            src: msg.src,
            tag: msg.tag,
            bytes: msg.bytes,
            send_event: EventId::new(msg.src, msg.send_event_idx),
            seq: msg.seq,
            wildcard,
            post_ordinal: recv.ordinal,
        };
        ev.time = completion;
    }

    /// Record the completion of a matched *nonblocking* receive in its
    /// request slot; the trace event is emitted by the completing wait.
    fn complete_nonblocking(&mut self, rank: Rank, recv: &PostedRecv, msg: &InFlightMsg) {
        let PostKind::Nonblocking(req) = recv.kind else {
            unreachable!("complete_nonblocking on blocking receive");
        };
        let rs = &mut self.ranks[rank.index()];
        let (wildcard, stack, ordinal) = match *rs.req(req) {
            ReqState::RecvPending {
                wildcard,
                stack,
                ordinal,
            } => (wildcard, stack, ordinal),
            ref s => unreachable!("nonblocking completion into {s:?}"),
        };
        let at = msg.arrival.max(recv.posted_at);
        *rs.req_mut(req) = ReqState::RecvDone(Box::new(RecvCompletion {
            at,
            src: msg.src,
            tag: msg.tag,
            bytes: msg.bytes,
            send_event: EventId::new(msg.src, msg.send_event_idx),
            seq: msg.seq,
            wildcard,
            stack,
            ordinal,
        }));
    }

    /// If all `reqs` are complete, emit the receive events (request-list
    /// order), advance local time past their completions, and return true.
    fn try_complete_wait(&mut self, rank: Rank, reqs: &[ReqSlot]) -> Result<bool, SimError> {
        // First pass: check completion.
        let mut latest = SimTime::ZERO;
        for &slot in reqs {
            match self.ranks[rank.index()].req(slot) {
                ReqState::Unused => {
                    return Err(SimError::UnknownRequest { rank, req: slot });
                }
                ReqState::RecvPending { .. } => return Ok(false),
                ReqState::SendDone(t) | ReqState::RecvEmitted(t) => latest = latest.max(*t),
                ReqState::RecvDone(c) => latest = latest.max(c.at),
            }
        }
        // Second pass: emit completed receives in request-list order.
        for &slot in reqs {
            let rs = &mut self.ranks[rank.index()];
            if let ReqState::RecvDone(c) = rs.req(slot) {
                let c = c.clone();
                // Clamp to keep per-rank event times monotone: the
                // completion is *observed* at the wait, after any events
                // already emitted.
                let t = c.at.max(rs.last_event_time());
                rs.emit(
                    EventKind::Recv {
                        src: c.src,
                        tag: c.tag,
                        bytes: c.bytes,
                        send_event: c.send_event,
                        seq: c.seq,
                        wildcard: c.wildcard,
                        post_ordinal: c.ordinal,
                    },
                    t,
                    c.stack,
                )
                .ok_or(SimError::TraceTooLarge { rank })?;
                *rs.req_mut(slot) = ReqState::RecvEmitted(c.at);
            }
        }
        let rs = &mut self.ranks[rank.index()];
        rs.now = rs.now.max(latest);
        Ok(true)
    }

    /// Process one arrival.
    fn deliver(&mut self, msg: InFlightMsg) -> Result<(), SimError> {
        let dst = msg.dst;
        let Some((recv, msg)) = self.matchers[dst.index()].on_arrival(msg) else {
            return Ok(());
        };
        match recv.kind {
            PostKind::Blocking => {
                debug_assert_eq!(self.ranks[dst.index()].status, Status::BlockedRecv);
                let wildcard = recv.src.is_wildcard() || recv.tag.is_wildcard();
                self.fill_blocking_recv(dst, &recv, &msg, wildcard);
                let completion = msg.arrival.max(recv.posted_at);
                let rs = &mut self.ranks[dst.index()];
                rs.now = rs
                    .now
                    .max(msg.arrival)
                    .after(self.config.network.recv_overhead_ns);
                rs.status = Status::Ready;
                self.wake_sync_sender(&msg, completion)?;
                self.run_rank(dst)?;
            }
            PostKind::Nonblocking(req) => {
                self.complete_nonblocking(dst, &recv, &msg);
                let completion = msg.arrival.max(recv.posted_at);
                self.wake_sync_sender(&msg, completion)?;
                // Wake the rank if it is blocked in a wait covering `req`.
                let should_try = matches!(
                    &self.ranks[dst.index()].status,
                    Status::BlockedWait(reqs) if reqs.contains(&req)
                );
                if should_try {
                    let reqs = match &self.ranks[dst.index()].status {
                        Status::BlockedWait(r) => r.clone(),
                        _ => unreachable!(),
                    };
                    if self.try_complete_wait(dst, &reqs)? {
                        self.ranks[dst.index()].status = Status::Ready;
                        self.run_rank(dst)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::types::{SrcSpec, TagSpec};

    fn pingpong() -> Program {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0))
            .send(Rank(1), Tag(0), 8)
            .recv(Rank(1), Tag(1).into());
        b.rank(Rank(1))
            .recv(Rank(0), Tag(0).into())
            .send(Rank(0), Tag(1), 8);
        b.build()
    }

    #[test]
    fn pingpong_completes() {
        let trace = simulate(&pingpong(), &SimConfig::deterministic()).unwrap();
        assert_eq!(trace.total_events(), 8); // init,send,recv,finalize per rank
        assert_eq!(trace.meta.messages, 2);
        assert_eq!(trace.meta.unmatched_messages, 0);
        assert!(trace.meta.makespan > SimTime::ZERO);
        trace.validate().unwrap();
    }

    #[test]
    fn deterministic_runs_are_identical_across_seeds() {
        let p = pingpong();
        let t1 = simulate(&p, &SimConfig::deterministic()).unwrap();
        let t2 = simulate(
            &p,
            &SimConfig {
                network: NetworkConfig::deterministic(),
                seed: 12345,
            },
        )
        .unwrap();
        for r in 0..2 {
            assert_eq!(t1.rank_events(Rank(r)), t2.rank_events(Rank(r)));
        }
    }

    fn message_race(n: u32) -> Program {
        // ranks 1..n send to rank 0; rank 0 posts n wildcard receives.
        let mut b = ProgramBuilder::new(n);
        for r in 1..n {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..n {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        b.build()
    }

    #[test]
    fn race_with_full_nd_produces_differing_match_orders() {
        let p = message_race(8);
        let mut orders = std::collections::HashSet::new();
        for seed in 0..20 {
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            t.validate().unwrap();
            orders.insert(t.match_order(Rank(0)));
        }
        assert!(
            orders.len() > 1,
            "100% ND must yield at least two distinct match orders over 20 seeds"
        );
    }

    #[test]
    fn race_with_zero_nd_is_deterministic() {
        let p = message_race(8);
        let base = simulate(&p, &SimConfig::deterministic())
            .unwrap()
            .match_order(Rank(0));
        for seed in 1..10 {
            let t = simulate(
                &p,
                &SimConfig {
                    network: NetworkConfig::deterministic(),
                    seed,
                },
            )
            .unwrap();
            assert_eq!(t.match_order(Rank(0)), base);
        }
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let p = message_race(8);
        let c = SimConfig::with_nd_percent(100.0, 7);
        let t1 = simulate(&p, &c).unwrap();
        let t2 = simulate(&p, &c).unwrap();
        assert_eq!(t1.match_order(Rank(0)), t2.match_order(Rank(0)));
        assert_eq!(t1.meta.makespan, t2.meta.makespan);
    }

    #[test]
    fn nonblocking_roundtrip() {
        let mut b = ProgramBuilder::new(2);
        {
            let mut r0 = b.rank(Rank(0));
            let s = r0.isend(Rank(1), Tag(0), 4);
            let r = r0.irecv(Rank(1), Tag(1).into());
            r0.waitall(vec![s, r]);
        }
        {
            let mut r1 = b.rank(Rank(1));
            let r = r1.irecv_any(TagSpec::Any);
            r1.wait(r);
            r1.send(Rank(0), Tag(1), 4);
        }
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        t.validate().unwrap();
        assert_eq!(t.meta.unmatched_messages, 0);
        assert_eq!(t.wildcard_recv_count(), 1);
    }

    #[test]
    fn nonblocking_recv_event_appears_at_wait_position() {
        // rank 1 posts an irecv, then isends, then waits: the recv event
        // must appear *after* the send in rank 1's event order.
        let mut b = ProgramBuilder::new(2);
        {
            let mut r0 = b.rank(Rank(0));
            let r = r0.irecv_any(TagSpec::Any);
            let s = r0.isend(Rank(1), Tag(0), 4);
            r0.waitall(vec![r, s]);
        }
        {
            let mut r1 = b.rank(Rank(1));
            let r = r1.irecv_any(TagSpec::Any);
            let s = r1.isend(Rank(0), Tag(0), 4);
            r1.waitall(vec![r, s]);
        }
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        for rnk in 0..2 {
            let kinds: Vec<_> = t
                .rank_events(Rank(rnk))
                .iter()
                .map(|e| e.kind.mnemonic())
                .collect();
            assert_eq!(
                kinds,
                vec!["init", "send", "recv", "finalize"],
                "rank {rnk}"
            );
        }
        t.validate().unwrap();
    }

    #[test]
    fn deadlock_is_reported() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).recv(Rank(1), Tag(0).into());
        // rank 1 never sends.
        let p = b.build();
        match simulate(&p, &SimConfig::deterministic()) {
            Err(SimError::Deadlock(r)) => {
                assert_eq!(r.blocked.len(), 1);
                assert_eq!(r.blocked[0].rank, Rank(0));
                assert!(r.to_string().contains("rank 0"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn unmatched_message_counted() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).send(Rank(1), Tag(0), 1);
        let p = b.build();
        // rank 1 finishes without receiving: no deadlock, but the message
        // is reported unmatched.
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        assert_eq!(t.meta.unmatched_messages, 1);
    }

    #[test]
    fn unknown_request_is_an_error() {
        let mut b = ProgramBuilder::new(1);
        b.rank(Rank(0)).wait(ReqSlot(3));
        let p = b.build();
        match simulate(&p, &SimConfig::deterministic()) {
            Err(SimError::UnknownRequest { rank, req }) => {
                assert_eq!(rank, Rank(0));
                assert_eq!(req, ReqSlot(3));
            }
            other => panic!("expected UnknownRequest, got {other:?}"),
        }
    }

    #[test]
    fn non_overtaking_same_channel_same_tag() {
        // Rank 0 sends two tagged messages to rank 1 under heavy ND; the
        // receives (specific source) must observe them in send order.
        for seed in 0..30 {
            let mut b = ProgramBuilder::new(2);
            b.rank(Rank(0))
                .send(Rank(1), Tag(0), 1)
                .send(Rank(1), Tag(0), 1);
            b.rank(Rank(1))
                .recv(Rank(0), Tag(0).into())
                .recv(Rank(0), Tag(0).into());
            let p = b.build();
            let t = simulate(&p, &SimConfig::with_nd_percent(100.0, seed)).unwrap();
            let seqs: Vec<u64> = t
                .rank_events(Rank(1))
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Recv { seq, .. } => Some(seq.0),
                    _ => None,
                })
                .collect();
            assert_eq!(seqs, vec![0, 1], "seed {seed} violated non-overtaking");
        }
    }

    #[test]
    fn events_are_in_program_order_per_rank() {
        let p = message_race(6);
        let t = simulate(&p, &SimConfig::with_nd_percent(100.0, 3)).unwrap();
        // Rank 0: init, then 5 recvs, then finalize.
        let kinds: Vec<_> = t
            .rank_events(Rank(0))
            .iter()
            .map(|e| e.kind.mnemonic())
            .collect();
        assert_eq!(kinds[0], "init");
        assert_eq!(kinds[kinds.len() - 1], "finalize");
        assert!(kinds[1..kinds.len() - 1].iter().all(|k| *k == "recv"));
    }

    #[test]
    fn recv_before_send_blocks_then_completes() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).recv(Rank(1), Tag(0).into());
        b.rank(Rank(1)).compute(10_000).send(Rank(0), Tag(0), 1);
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        t.validate().unwrap();
        // Recv completion must be at or after the (delayed) send.
        let recv_time = t.rank_events(Rank(0))[1].time;
        let send_time = t.rank_events(Rank(1))[1].time;
        assert!(recv_time > send_time);
    }

    #[test]
    fn specific_source_recv_ignores_other_senders() {
        let mut b = ProgramBuilder::new(3);
        b.rank(Rank(1)).send(Rank(0), Tag(0), 1);
        b.rank(Rank(2)).send(Rank(0), Tag(0), 1);
        b.rank(Rank(0))
            .recv(Rank(2), Tag(0).into())
            .recv(Rank(1), Tag(0).into());
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        assert_eq!(t.match_order(Rank(0)), vec![Rank(2), Rank(1)]);
    }

    #[test]
    fn makespan_reflects_compute() {
        let mut b = ProgramBuilder::new(1);
        b.rank(Rank(0)).compute(1_000_000);
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        assert!(t.meta.makespan >= SimTime(1_000_000));
    }

    #[test]
    fn wildcard_flag_recorded() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).send(Rank(1), Tag(0), 1);
        b.rank(Rank(1)).recv_any(TagSpec::Any);
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        match t.rank_events(Rank(1))[1].kind {
            EventKind::Recv { wildcard, .. } => assert!(wildcard),
            ref k => panic!("expected recv, got {k:?}"),
        }
        // And a specific-source recv is not flagged.
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0)).send(Rank(1), Tag(0), 1);
        b.rank(Rank(1)).recv(Rank(0), Tag(0).into());
        let t = simulate(&b.build(), &SimConfig::deterministic()).unwrap();
        match t.rank_events(Rank(1))[1].kind {
            EventKind::Recv { wildcard, .. } => assert!(!wildcard),
            ref k => panic!("expected recv, got {k:?}"),
        }
    }

    #[test]
    fn post_ordinals_count_receives_in_posting_order() {
        let mut b = ProgramBuilder::new(2);
        b.rank(Rank(0))
            .send(Rank(1), Tag(0), 1)
            .send(Rank(1), Tag(0), 1)
            .send(Rank(1), Tag(0), 1);
        {
            let mut r1 = b.rank(Rank(1));
            r1.recv_any(TagSpec::Any); // ordinal 0
            let a = r1.irecv_any(TagSpec::Any); // ordinal 1
            let c = r1.irecv_any(TagSpec::Any); // ordinal 2
            r1.waitall(vec![a, c]);
        }
        let p = b.build();
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        let ordinals: Vec<u32> = t
            .rank_events(Rank(1))
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Recv { post_ordinal, .. } => Some(post_ordinal),
                _ => None,
            })
            .collect();
        assert_eq!(ordinals, vec![0, 1, 2]);
    }

    #[test]
    fn all_to_all_event_graph_is_acyclic_shape() {
        // Regression guard for the wait-placement rule: in an all-to-all
        // phase every rank's receives must trail its sends in event order.
        let n = 4u32;
        let mut b = ProgramBuilder::new(n);
        for r in 0..n {
            let mut rb = b.rank(Rank(r));
            let mut reqs = Vec::new();
            for _ in 0..n - 1 {
                reqs.push(rb.irecv_any(TagSpec::Any));
            }
            for peer in 0..n {
                if peer != r {
                    reqs.push(rb.isend(Rank(peer), Tag(0), 1));
                }
            }
            rb.waitall(reqs);
        }
        let p = b.build();
        let t = simulate(&p, &SimConfig::with_nd_percent(100.0, 2)).unwrap();
        for r in 0..n {
            let kinds: Vec<_> = t
                .rank_events(Rank(r))
                .iter()
                .map(|e| e.kind.mnemonic())
                .collect();
            let first_recv = kinds.iter().position(|k| *k == "recv").unwrap();
            let last_send = kinds.iter().rposition(|k| *k == "send").unwrap();
            assert!(
                last_send < first_recv,
                "rank {r}: sends must precede recv completions: {kinds:?}"
            );
        }
        t.validate().unwrap();
    }

    #[test]
    fn srcspec_used_in_engine_paths() {
        // Exercise SrcSpec::Any with concrete tag through the full engine.
        let mut b = ProgramBuilder::new(3);
        b.rank(Rank(1)).send(Rank(0), Tag(9), 1);
        b.rank(Rank(2)).send(Rank(0), Tag(9), 1);
        {
            let mut r0 = b.rank(Rank(0));
            let a = r0.irecv_any(Tag(9).into());
            let c = r0.irecv_any(Tag(9).into());
            r0.waitall(vec![a, c]);
        }
        let p = b.build();
        assert_eq!(
            p.ops(Rank(0))
                .iter()
                .filter(|o| matches!(
                    o,
                    Op::Irecv {
                        src: SrcSpec::Any,
                        ..
                    }
                ))
                .count(),
            2
        );
        let t = simulate(&p, &SimConfig::deterministic()).unwrap();
        assert_eq!(t.meta.unmatched_messages, 0);
        t.validate().unwrap();
    }
}
