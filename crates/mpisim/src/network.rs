//! Network model: node topology, latency, and non-determinism injection.
//!
//! The paper defines the *percentage of non-determinism* as "the percentage
//! of messages that can suffer from congestion or contention delays and
//! thus exhibit a non-deterministic arrival pattern". This module is the
//! faithful implementation of that knob: every message pays a deterministic
//! base latency (intra- or inter-node) plus a bandwidth term, and with
//! probability `nd_fraction` an additional random congestion delay drawn
//! from a configurable distribution. At `nd_fraction = 0` the network is
//! fully deterministic and every run of a program is identical.

use crate::types::{Rank, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The distribution congestion delays are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayDistribution {
    /// Exponential with the given mean (heavy enough tail to reorder
    /// messages; the default).
    Exponential {
        /// Mean delay in nanoseconds.
        mean_ns: f64,
    },
    /// Uniform on `[lo_ns, hi_ns)`.
    Uniform {
        /// Inclusive lower bound in nanoseconds.
        lo_ns: f64,
        /// Exclusive upper bound in nanoseconds.
        hi_ns: f64,
    },
    /// Pareto with scale `xm_ns` and shape `alpha` (very heavy tail; models
    /// rare severe contention events).
    Pareto {
        /// Scale (minimum delay) in nanoseconds.
        xm_ns: f64,
        /// Shape parameter; smaller means heavier tail. Must be > 0.
        alpha: f64,
    },
}

impl DelayDistribution {
    /// Draw one delay in nanoseconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            DelayDistribution::Exponential { mean_ns } => {
                // Inverse-CDF sampling; 1-u in (0,1] avoids ln(0).
                let u: f64 = rng.gen::<f64>();
                -mean_ns * (1.0 - u).max(f64::MIN_POSITIVE).ln()
            }
            DelayDistribution::Uniform { lo_ns, hi_ns } => {
                if hi_ns <= lo_ns {
                    lo_ns
                } else {
                    rng.gen_range(lo_ns..hi_ns)
                }
            }
            DelayDistribution::Pareto { xm_ns, alpha } => {
                let u: f64 = rng.gen::<f64>();
                xm_ns / (1.0 - u).max(f64::MIN_POSITIVE).powf(1.0 / alpha)
            }
        }
    }

    /// The distribution's mean, where finite.
    pub fn mean(&self) -> f64 {
        match *self {
            DelayDistribution::Exponential { mean_ns } => mean_ns,
            DelayDistribution::Uniform { lo_ns, hi_ns } => 0.5 * (lo_ns + hi_ns),
            DelayDistribution::Pareto { xm_ns, alpha } => {
                if alpha > 1.0 {
                    alpha * xm_ns / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

impl Default for DelayDistribution {
    fn default() -> Self {
        DelayDistribution::Exponential { mean_ns: 2_000.0 }
    }
}

/// Static description of the simulated platform and its delay behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of compute nodes; ranks are distributed block-wise.
    pub nodes: u32,
    /// Latency between two ranks on the same node, in nanoseconds.
    pub intra_node_latency_ns: u64,
    /// Latency between two ranks on different nodes, in nanoseconds.
    pub inter_node_latency_ns: u64,
    /// Transfer cost per payload byte, in nanoseconds.
    pub per_byte_ns: f64,
    /// Fraction of messages eligible for a congestion delay, in `[0, 1]`.
    /// This is the paper's "percentage of non-determinism".
    pub nd_fraction: f64,
    /// Distribution of congestion delays.
    pub delay: DelayDistribution,
    /// Multiplier applied to congestion delays on inter-node messages.
    /// Values above 1 model the paper's observation that spanning multiple
    /// compute nodes increases the likelihood of non-deterministic runs.
    pub inter_node_delay_factor: f64,
    /// Fixed per-op software overheads, in nanoseconds.
    pub send_overhead_ns: u64,
    /// Receive-side matching overhead, in nanoseconds.
    pub recv_overhead_ns: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nodes: 1,
            intra_node_latency_ns: 500,
            inter_node_latency_ns: 5_000,
            per_byte_ns: 0.5,
            nd_fraction: 0.0,
            delay: DelayDistribution::default(),
            inter_node_delay_factor: 2.0,
            send_overhead_ns: 100,
            recv_overhead_ns: 100,
        }
    }
}

impl NetworkConfig {
    /// A deterministic single-node network (nd_fraction = 0).
    pub fn deterministic() -> Self {
        NetworkConfig::default()
    }

    /// A network with the given non-determinism percentage in `[0, 100]`.
    ///
    /// # Panics
    /// Panics if `percent` is outside `[0, 100]` or not finite.
    pub fn with_nd_percent(percent: f64) -> Self {
        assert!(
            percent.is_finite() && (0.0..=100.0).contains(&percent),
            "nd percent must be within [0, 100], got {percent}"
        );
        NetworkConfig {
            nd_fraction: percent / 100.0,
            ..NetworkConfig::default()
        }
    }

    /// Builder-style: set the number of compute nodes.
    pub fn nodes(mut self, nodes: u32) -> Self {
        assert!(nodes > 0, "node count must be positive");
        self.nodes = nodes;
        self
    }

    /// Builder-style: set the congestion-delay distribution.
    pub fn delay(mut self, delay: DelayDistribution) -> Self {
        self.delay = delay;
        self
    }

    /// The compute node hosting `rank` under block distribution of
    /// `world_size` ranks over `self.nodes` nodes.
    pub fn node_of(&self, rank: Rank, world_size: u32) -> u32 {
        debug_assert!(rank.0 < world_size);
        if self.nodes <= 1 {
            return 0;
        }
        // Block distribution: ceil(world/nodes) ranks per node.
        let per_node = world_size.div_ceil(self.nodes);
        (rank.0 / per_node).min(self.nodes - 1)
    }
}

/// Runtime network model: owns the RNG stream used for congestion draws.
///
/// Given the same `NetworkConfig` and the same RNG seed, delivery times are
/// bit-identical across runs — the property the record/replay module and
/// the course's "same seed, same run" exercises rely on.
#[derive(Debug)]
pub struct NetworkModel<R: Rng> {
    config: NetworkConfig,
    world_size: u32,
    rng: R,
    delays_injected: u64,
}

impl<R: Rng> NetworkModel<R> {
    /// Create a model for a `world_size`-rank job.
    pub fn new(config: NetworkConfig, world_size: u32, rng: R) -> Self {
        NetworkModel {
            config,
            world_size,
            rng,
            delays_injected: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// How many messages drew a congestion delay so far — the realised
    /// count behind the configured `nd_fraction` probability.
    pub fn delays_injected(&self) -> u64 {
        self.delays_injected
    }

    /// Compute the delivery time of a message of `bytes` bytes injected at
    /// `send_time` from `src` to `dst`.
    ///
    /// Consumes RNG draws only when `nd_fraction > 0`, so a deterministic
    /// configuration never perturbs the RNG stream.
    pub fn delivery_time(
        &mut self,
        src: Rank,
        dst: Rank,
        bytes: u64,
        send_time: SimTime,
    ) -> SimTime {
        let same_node =
            self.config.node_of(src, self.world_size) == self.config.node_of(dst, self.world_size);
        let base = if same_node {
            self.config.intra_node_latency_ns
        } else {
            self.config.inter_node_latency_ns
        };
        let bw = (bytes as f64 * self.config.per_byte_ns).round() as u64;
        let mut latency = base + bw;
        if self.config.nd_fraction > 0.0 && self.rng.gen_bool(self.config.nd_fraction.min(1.0)) {
            self.delays_injected += 1;
            let mut d = self.config.delay.sample(&mut self.rng);
            if !same_node {
                d *= self.config.inter_node_delay_factor;
            }
            latency += d.max(0.0).round() as u64;
        }
        send_time.after(latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_network_is_reproducible_and_rng_free() {
        let cfg = NetworkConfig::deterministic();
        let mut m1 = NetworkModel::new(cfg.clone(), 4, SmallRng::seed_from_u64(1));
        let mut m2 = NetworkModel::new(cfg, 4, SmallRng::seed_from_u64(999));
        for b in [0u64, 1, 100, 4096] {
            let t1 = m1.delivery_time(Rank(0), Rank(1), b, SimTime(10));
            let t2 = m2.delivery_time(Rank(0), Rank(1), b, SimTime(10));
            // Different seeds, identical results: no RNG is consumed.
            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn latency_grows_with_bytes() {
        let mut m = NetworkModel::new(
            NetworkConfig::deterministic(),
            2,
            SmallRng::seed_from_u64(0),
        );
        let small = m.delivery_time(Rank(0), Rank(1), 1, SimTime::ZERO);
        let big = m.delivery_time(Rank(0), Rank(1), 1_000_000, SimTime::ZERO);
        assert!(big > small);
    }

    #[test]
    fn inter_node_latency_exceeds_intra() {
        let cfg = NetworkConfig::deterministic().nodes(2);
        let mut m = NetworkModel::new(cfg, 4, SmallRng::seed_from_u64(0));
        // ranks 0,1 on node 0; ranks 2,3 on node 1.
        let intra = m.delivery_time(Rank(0), Rank(1), 0, SimTime::ZERO);
        let inter = m.delivery_time(Rank(0), Rank(2), 0, SimTime::ZERO);
        assert!(inter > intra);
    }

    #[test]
    fn node_assignment_is_block_wise() {
        let cfg = NetworkConfig::deterministic().nodes(2);
        assert_eq!(cfg.node_of(Rank(0), 4), 0);
        assert_eq!(cfg.node_of(Rank(1), 4), 0);
        assert_eq!(cfg.node_of(Rank(2), 4), 1);
        assert_eq!(cfg.node_of(Rank(3), 4), 1);
        // Uneven split: 5 ranks over 2 nodes -> 3 + 2.
        assert_eq!(cfg.node_of(Rank(2), 5), 0);
        assert_eq!(cfg.node_of(Rank(3), 5), 1);
        // Single node puts everything on node 0.
        let one = NetworkConfig::deterministic();
        assert_eq!(one.node_of(Rank(3), 4), 0);
    }

    #[test]
    fn nd_injection_changes_delivery_times_across_seeds() {
        let cfg = NetworkConfig::with_nd_percent(100.0);
        let mut m1 = NetworkModel::new(cfg.clone(), 2, SmallRng::seed_from_u64(1));
        let mut m2 = NetworkModel::new(cfg, 2, SmallRng::seed_from_u64(2));
        let mut differs = false;
        for _ in 0..32 {
            let t1 = m1.delivery_time(Rank(0), Rank(1), 8, SimTime::ZERO);
            let t2 = m2.delivery_time(Rank(0), Rank(1), 8, SimTime::ZERO);
            if t1 != t2 {
                differs = true;
            }
        }
        assert!(differs, "100% ND must perturb delivery times");
    }

    #[test]
    fn same_seed_same_delivery_times() {
        let cfg = NetworkConfig::with_nd_percent(75.0);
        let mut m1 = NetworkModel::new(cfg.clone(), 2, SmallRng::seed_from_u64(7));
        let mut m2 = NetworkModel::new(cfg, 2, SmallRng::seed_from_u64(7));
        for _ in 0..64 {
            assert_eq!(
                m1.delivery_time(Rank(0), Rank(1), 8, SimTime::ZERO),
                m2.delivery_time(Rank(0), Rank(1), 8, SimTime::ZERO)
            );
        }
    }

    #[test]
    fn delay_distributions_sample_nonnegative_and_mean_is_sane() {
        let mut rng = SmallRng::seed_from_u64(42);
        for d in [
            DelayDistribution::Exponential { mean_ns: 100.0 },
            DelayDistribution::Uniform {
                lo_ns: 10.0,
                hi_ns: 20.0,
            },
            DelayDistribution::Pareto {
                xm_ns: 5.0,
                alpha: 2.5,
            },
        ] {
            let mut sum = 0.0;
            for _ in 0..10_000 {
                let x = d.sample(&mut rng);
                assert!(x >= 0.0, "{d:?} sampled negative {x}");
                sum += x;
            }
            let empirical = sum / 10_000.0;
            let expected = d.mean();
            assert!(
                (empirical - expected).abs() / expected < 0.2,
                "{d:?}: empirical mean {empirical} vs expected {expected}"
            );
        }
    }

    #[test]
    fn delay_injection_counter_tracks_nd_fraction() {
        let mut det = NetworkModel::new(
            NetworkConfig::deterministic(),
            2,
            SmallRng::seed_from_u64(0),
        );
        let mut full = NetworkModel::new(
            NetworkConfig::with_nd_percent(100.0),
            2,
            SmallRng::seed_from_u64(0),
        );
        for _ in 0..50 {
            det.delivery_time(Rank(0), Rank(1), 8, SimTime::ZERO);
            full.delivery_time(Rank(0), Rank(1), 8, SimTime::ZERO);
        }
        assert_eq!(det.delays_injected(), 0);
        assert_eq!(full.delays_injected(), 50);
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = DelayDistribution::Uniform {
            lo_ns: 5.0,
            hi_ns: 5.0,
        };
        assert_eq!(d.sample(&mut rng), 5.0);
    }

    #[test]
    fn pareto_mean_infinite_for_small_alpha() {
        let d = DelayDistribution::Pareto {
            xm_ns: 1.0,
            alpha: 0.9,
        };
        assert!(d.mean().is_infinite());
    }

    #[test]
    #[should_panic(expected = "within [0, 100]")]
    fn nd_percent_out_of_range_panics() {
        NetworkConfig::with_nd_percent(120.0);
    }
}
