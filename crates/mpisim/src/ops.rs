//! The operation IR executed by the simulator.
//!
//! A rank's program is a straight-line sequence of [`Op`]s produced by the
//! builder in [`crate::program`]. The IR deliberately mirrors the MPI
//! point-to-point subset the paper's mini-applications use: blocking and
//! nonblocking send/receive, waits, and local compute.

use crate::stack::CallStackId;
use crate::types::{Rank, ReqSlot, SrcSpec, Tag, TagSpec};
use serde::{Deserialize, Serialize};

/// One operation in a rank's program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Blocking standard-mode send (modelled as buffered/eager: completes
    /// locally as soon as the message is handed to the network).
    Send {
        /// Destination rank.
        dst: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload size in bytes (drives the bandwidth term of latency).
        bytes: u64,
        /// Call path that issued the operation.
        stack: CallStackId,
    },
    /// Synchronous (rendezvous) send: completes only when the receiver has
    /// matched the message. `MPI_Ssend` is the send mode that can deadlock
    /// head-to-head — included for the course's deadlock exercises.
    Ssend {
        /// Destination rank.
        dst: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload size in bytes.
        bytes: u64,
        /// Call path that issued the operation.
        stack: CallStackId,
    },
    /// Nonblocking send; completes at the matching [`Op::Wait`].
    Isend {
        /// Destination rank.
        dst: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload size in bytes.
        bytes: u64,
        /// Call path that issued the operation.
        stack: CallStackId,
        /// Request slot the operation completes into.
        req: ReqSlot,
    },
    /// Blocking receive; blocks until a matching message is delivered.
    Recv {
        /// Source specification (may be `MPI_ANY_SOURCE`).
        src: SrcSpec,
        /// Tag specification (may be `MPI_ANY_TAG`).
        tag: TagSpec,
        /// Call path that issued the operation.
        stack: CallStackId,
    },
    /// Nonblocking receive; posts the receive and continues.
    Irecv {
        /// Source specification (may be `MPI_ANY_SOURCE`).
        src: SrcSpec,
        /// Tag specification (may be `MPI_ANY_TAG`).
        tag: TagSpec,
        /// Call path that issued the operation.
        stack: CallStackId,
        /// Request slot the operation completes into.
        req: ReqSlot,
    },
    /// Block until one nonblocking request completes.
    Wait {
        /// The request to wait on.
        req: ReqSlot,
        /// Call path that issued the operation.
        stack: CallStackId,
    },
    /// Block until all listed nonblocking requests complete.
    Waitall {
        /// The requests to wait on.
        reqs: Vec<ReqSlot>,
        /// Call path that issued the operation.
        stack: CallStackId,
    },
    /// Local computation for a fixed number of simulated nanoseconds.
    Compute {
        /// Duration of the computation.
        duration_ns: u64,
    },
}

impl Op {
    /// The call path attributed to this op, if it is an MPI operation.
    pub fn stack(&self) -> Option<CallStackId> {
        match self {
            Op::Send { stack, .. }
            | Op::Ssend { stack, .. }
            | Op::Isend { stack, .. }
            | Op::Recv { stack, .. }
            | Op::Irecv { stack, .. }
            | Op::Wait { stack, .. }
            | Op::Waitall { stack, .. } => Some(*stack),
            Op::Compute { .. } => None,
        }
    }

    /// True for operations that post a receive (blocking or not).
    pub fn is_receive(&self) -> bool {
        matches!(self, Op::Recv { .. } | Op::Irecv { .. })
    }

    /// True for operations that inject a message (blocking or not).
    pub fn is_send(&self) -> bool {
        matches!(self, Op::Send { .. } | Op::Ssend { .. } | Op::Isend { .. })
    }

    /// True for a receive whose source or tag is a wildcard — the op class
    /// that admits message races.
    pub fn is_wildcard_receive(&self) -> bool {
        match self {
            Op::Recv { src, tag, .. } | Op::Irecv { src, tag, .. } => {
                src.is_wildcard() || tag.is_wildcard()
            }
            _ => false,
        }
    }

    /// A short MPI-style mnemonic for the op ("MPI_Send", …).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Send { .. } => "MPI_Send",
            Op::Ssend { .. } => "MPI_Ssend",
            Op::Isend { .. } => "MPI_Isend",
            Op::Recv { .. } => "MPI_Recv",
            Op::Irecv { .. } => "MPI_Irecv",
            Op::Wait { .. } => "MPI_Wait",
            Op::Waitall { .. } => "MPI_Waitall",
            Op::Compute { .. } => "compute",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send() -> Op {
        Op::Send {
            dst: Rank(1),
            tag: Tag(0),
            bytes: 8,
            stack: CallStackId::UNKNOWN,
        }
    }

    #[test]
    fn classification() {
        assert!(send().is_send());
        assert!(!send().is_receive());
        let r = Op::Recv {
            src: SrcSpec::Any,
            tag: TagSpec::Tag(Tag(0)),
            stack: CallStackId::UNKNOWN,
        };
        assert!(r.is_receive());
        assert!(r.is_wildcard_receive());
        let r2 = Op::Recv {
            src: SrcSpec::Rank(Rank(0)),
            tag: TagSpec::Tag(Tag(0)),
            stack: CallStackId::UNKNOWN,
        };
        assert!(!r2.is_wildcard_receive());
        assert!(!send().is_wildcard_receive());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(send().mnemonic(), "MPI_Send");
        assert_eq!(Op::Compute { duration_ns: 5 }.mnemonic(), "compute");
        assert_eq!(
            Op::Waitall {
                reqs: vec![],
                stack: CallStackId::UNKNOWN
            }
            .mnemonic(),
            "MPI_Waitall"
        );
    }

    #[test]
    fn stack_attribution() {
        assert_eq!(send().stack(), Some(CallStackId::UNKNOWN));
        assert_eq!(Op::Compute { duration_ns: 1 }.stack(), None);
    }
}
