//! Call-path (callstack) representation and interning.
//!
//! ANACIN-X attributes every MPI event to the call path that issued it;
//! root-cause analysis later ranks call paths by how often they appear in
//! highly non-deterministic regions of the event graph. Real ANACIN-X
//! captures native stacks with sst-dumpi; here mini-applications attach
//! synthetic-but-realistic call paths to each operation.
//!
//! Call paths are interned: a [`CallStackTable`] maps each distinct path to
//! a small dense [`CallStackId`] so traces store one `u32` per event.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned call path. `CallStackId::UNKNOWN` (id 0) is
/// reserved for events with no attributed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CallStackId(pub u32);

impl CallStackId {
    /// The reserved "no call path recorded" id.
    pub const UNKNOWN: CallStackId = CallStackId(0);

    /// The id as a `usize`, for indexing the table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A call path: outermost frame first, innermost (the MPI call) last.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CallStack {
    frames: Vec<String>,
}

impl CallStack {
    /// Build a call path from outermost to innermost frame.
    pub fn new<I, S>(frames: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        CallStack {
            frames: frames.into_iter().map(Into::into).collect(),
        }
    }

    /// The reserved empty path used for [`CallStackId::UNKNOWN`].
    pub fn unknown() -> Self {
        CallStack { frames: Vec::new() }
    }

    /// Frames from outermost to innermost.
    pub fn frames(&self) -> &[String] {
        &self.frames
    }

    /// The innermost frame (usually the MPI function), if any.
    pub fn leaf(&self) -> Option<&str> {
        self.frames.last().map(String::as_str)
    }

    /// Depth of the path in frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True for the reserved empty path.
    pub fn is_unknown(&self) -> bool {
        self.frames.is_empty()
    }
}

impl fmt::Display for CallStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.frames.is_empty() {
            return write!(f, "<unknown>");
        }
        write!(f, "{}", self.frames.join(" > "))
    }
}

/// Interner mapping call paths to dense [`CallStackId`]s.
///
/// Id 0 is always the empty/unknown path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CallStackTable {
    stacks: Vec<CallStack>,
    #[serde(skip)]
    index: HashMap<CallStack, CallStackId>,
}

impl Default for CallStackTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for CallStackTable {
    /// Equality over the interned paths only: the lookup index is a
    /// derived cache (serde skips it) and must not affect comparison.
    fn eq(&self, other: &Self) -> bool {
        self.stacks == other.stacks
    }
}

impl Eq for CallStackTable {}

impl CallStackTable {
    /// A table containing only the reserved unknown path.
    pub fn new() -> Self {
        let mut t = CallStackTable {
            stacks: Vec::new(),
            index: HashMap::new(),
        };
        let id = t.intern(CallStack::unknown());
        debug_assert_eq!(id, CallStackId::UNKNOWN);
        t
    }

    /// Intern a path, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, stack: CallStack) -> CallStackId {
        if let Some(&id) = self.index.get(&stack) {
            return id;
        }
        let id = CallStackId(
            u32::try_from(self.stacks.len()).expect("call-stack table exceeds u32 id space"),
        );
        self.index.insert(stack.clone(), id);
        self.stacks.push(stack);
        id
    }

    /// Convenience: intern a path given as frame strings.
    pub fn intern_frames<I, S>(&mut self, frames: I) -> CallStackId
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.intern(CallStack::new(frames))
    }

    /// Resolve an id back to its path.
    ///
    /// # Panics
    /// Panics if the id was not produced by this table.
    pub fn resolve(&self, id: CallStackId) -> &CallStack {
        &self.stacks[id.index()]
    }

    /// Resolve an id, returning `None` for foreign ids.
    pub fn get(&self, id: CallStackId) -> Option<&CallStack> {
        self.stacks.get(id.index())
    }

    /// Number of interned paths (including the reserved unknown path).
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Always false: the unknown path is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over `(id, path)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CallStackId, &CallStack)> {
        self.stacks
            .iter()
            .enumerate()
            .map(|(i, s)| (CallStackId(i as u32), s))
    }

    /// Rebuild the lookup index after deserialization (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .stacks
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), CallStackId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_is_id_zero() {
        let t = CallStackTable::new();
        assert_eq!(t.len(), 1);
        assert!(t.resolve(CallStackId::UNKNOWN).is_unknown());
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = CallStackTable::new();
        let a = t.intern_frames(["main", "solve", "MPI_Send"]);
        let b = t.intern_frames(["main", "solve", "MPI_Send"]);
        let c = t.intern_frames(["main", "solve", "MPI_Recv"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = CallStackTable::new();
        let id = t.intern_frames(["main", "exchange", "MPI_Irecv"]);
        let s = t.resolve(id);
        assert_eq!(s.leaf(), Some("MPI_Irecv"));
        assert_eq!(s.depth(), 3);
        assert_eq!(s.to_string(), "main > exchange > MPI_Irecv");
    }

    #[test]
    fn display_unknown() {
        assert_eq!(CallStack::unknown().to_string(), "<unknown>");
    }

    #[test]
    fn iter_covers_all() {
        let mut t = CallStackTable::new();
        t.intern_frames(["a"]);
        t.intern_frames(["b"]);
        let ids: Vec<_> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn rebuild_index_preserves_ids() {
        let mut t = CallStackTable::new();
        let a = t.intern_frames(["x", "y"]);
        let json = serde_json_roundtrip(&t);
        let mut t2 = json;
        t2.rebuild_index();
        assert_eq!(t2.intern_frames(["x", "y"]), a);
    }

    fn serde_json_roundtrip(t: &CallStackTable) -> CallStackTable {
        // Manual round trip through the serde data model without a JSON dep
        // in this crate: clone and clear the index to mimic deserialization.
        let mut c = t.clone();
        c.index.clear();
        c
    }
}
