//! Batched simulator counters.
//!
//! `MetricsRegistry::counter(name)` locks the registry's counter map to
//! resolve the name. The engine flushes six counters per run, so resolving
//! them inside the engine put six map locks on every simulated run — fine
//! for a handful of runs, but a store-backed campaign resume can replay
//! thousands of runs across worker threads, all serialising on that one
//! mutex. [`SimCounters`] hoists the name resolution: a worker creates one
//! instance up front (six locks, once) and every subsequent flush is six
//! lock-free relaxed atomic adds.

use crate::trace::Trace;
use anacin_obs::{Counter, MetricsRegistry};

/// Pre-resolved handles for the simulator's per-run counters
/// (`sim/runs`, `sim/events`, `sim/messages`, `sim/matched`,
/// `sim/wildcard_matches`, `sim/delays_injected`).
///
/// Create one per worker thread and pass it to
/// [`crate::engine::simulate_counted`] for every run that worker
/// executes.
#[derive(Clone)]
pub struct SimCounters {
    runs: Counter,
    events: Counter,
    messages: Counter,
    matched: Counter,
    wildcard_matches: Counter,
    delays_injected: Counter,
}

impl SimCounters {
    /// Resolve the six counter handles against `metrics` (locks the
    /// registry map once per counter — do this outside run loops).
    pub fn new(metrics: &MetricsRegistry) -> Self {
        SimCounters {
            runs: metrics.counter("sim/runs"),
            events: metrics.counter("sim/events"),
            messages: metrics.counter("sim/messages"),
            matched: metrics.counter("sim/matched"),
            wildcard_matches: metrics.counter("sim/wildcard_matches"),
            delays_injected: metrics.counter("sim/delays_injected"),
        }
    }

    /// Flush one finished run: lock-free atomic adds only.
    pub fn flush(&self, trace: &Trace, delays_injected: u64) {
        self.runs.inc();
        self.events.add(trace.total_events() as u64);
        self.messages.add(trace.meta.messages);
        self.matched
            .add(trace.meta.messages - trace.meta.unmatched_messages);
        self.wildcard_matches
            .add(trace.wildcard_recv_count() as u64);
        self.delays_injected.add(delays_injected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_counted, SimConfig};
    use crate::program::ProgramBuilder;
    use crate::types::{Rank, Tag, TagSpec};

    fn race() -> crate::program::Program {
        let mut b = ProgramBuilder::new(4);
        for r in 1..4 {
            b.rank(Rank(r)).send(Rank(0), Tag(0), 1);
        }
        for _ in 1..4 {
            b.rank(Rank(0)).recv_any(TagSpec::Tag(Tag(0)));
        }
        b.build()
    }

    #[test]
    fn batched_flush_matches_per_run_registry_flush() {
        let p = race();
        let batched = MetricsRegistry::new();
        let counters = SimCounters::new(&batched);
        for seed in 0..5 {
            let c = SimConfig::with_nd_percent(100.0, seed);
            simulate_counted(&p, &c, None, Some(&counters)).unwrap();
        }
        let per_run = MetricsRegistry::new();
        for seed in 0..5 {
            let c = SimConfig::with_nd_percent(100.0, seed);
            crate::engine::simulate_with_metrics(&p, &c, Some(&per_run)).unwrap();
        }
        let a = batched.report();
        let b = per_run.report();
        for name in [
            "sim/runs",
            "sim/events",
            "sim/messages",
            "sim/matched",
            "sim/wildcard_matches",
            "sim/delays_injected",
        ] {
            assert_eq!(a.counter(name), b.counter(name), "{name}");
        }
    }

    #[test]
    fn shared_handles_accumulate_across_workers() {
        let p = race();
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (m, p) = (m.clone(), &p);
                s.spawn(move || {
                    let counters = SimCounters::new(&m);
                    for seed in 0..3 {
                        let c = SimConfig::with_nd_percent(100.0, seed);
                        simulate_counted(p, &c, None, Some(&counters)).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.report().counter("sim/runs"), Some(12));
    }
}
